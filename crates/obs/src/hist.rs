//! Fixed-bucket power-of-two histograms.
//!
//! The obs layer records latencies and occupancies on hot paths, so the
//! histogram must be allocation-free, bounded, and mergeable. Buckets are
//! powers of two: bucket 0 holds exactly the value `0`, bucket `i`
//! (1 ≤ i ≤ [`LAST_BUCKET`]) holds values in `[2^(i-1), 2^i - 1]`, and the
//! last bucket additionally absorbs everything beyond its range (overflow
//! clamps, it never panics or drops a sample). With 41 buckets the range
//! covers 1 ns up to ~18 minutes before clamping — wider than any latency
//! this engine can legitimately produce.
//!
//! All arithmetic saturates: a histogram fed garbage (or fed forever)
//! degrades to pegged counters instead of wrapping or aborting.

use bytes::BytesMut;
use tart_codec::{Decode, DecodeError, Encode, Reader};

/// Total bucket count: 1 zero bucket + 40 power-of-two ranges.
pub const NUM_BUCKETS: usize = 41;

/// Index of the final bucket, which also absorbs overflow.
pub const LAST_BUCKET: usize = NUM_BUCKETS - 1;

/// Returns the bucket index for a value: 0 for zero, otherwise
/// `floor(log2(v)) + 1`, clamped to [`LAST_BUCKET`].
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(LAST_BUCKET)
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the overflow bucket).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= LAST_BUCKET {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A fixed-size power-of-two histogram with saturating totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. Never fails: overflow values clamp into the last
    /// bucket and totals saturate at `u64::MAX`.
    pub fn record(&mut self, v: u64) {
        let b = bucket_index(v);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one (saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (i, *n))
            .collect()
    }
}

impl Encode for Histogram {
    fn encode(&self, buf: &mut BytesMut) {
        // Sparse encoding: only non-empty buckets, sorted by index — short
        // and canonical (the index order is fixed by construction).
        let sparse: Vec<(u64, u64)> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, n)| (i as u64, n))
            .collect();
        sparse.encode(buf);
        self.count.encode(buf);
        self.sum.encode(buf);
        self.max.encode(buf);
    }
}

impl Decode for Histogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let sparse: Vec<(u64, u64)> = Vec::decode(r)?;
        let mut counts = [0u64; NUM_BUCKETS];
        let mut prev: Option<u64> = None;
        for (i, n) in sparse {
            let idx = usize::try_from(i).map_err(|_| DecodeError::VarintOverflow)?;
            // Canonical form: strictly ascending indexes, no empty entries.
            if idx >= NUM_BUCKETS || n == 0 || prev.is_some_and(|p| p >= i) {
                return Err(DecodeError::InvalidTag {
                    tag: idx.min(255) as u8,
                    type_name: "Histogram",
                });
            }
            counts[idx] = n;
            prev = Some(i);
        }
        Ok(Histogram {
            counts,
            count: u64::decode(r)?,
            sum: u64::decode(r)?,
            max: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn power_of_two_edges_land_in_ascending_buckets() {
        // 1 → bucket 1; 2..=3 → bucket 2; 4..=7 → bucket 3; …
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for i in 1..LAST_BUCKET {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
        }
    }

    #[test]
    fn overflow_clamps_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        assert_eq!(h.bucket(LAST_BUCKET), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(bucket_upper_bound(LAST_BUCKET), u64::MAX);
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.count(), 2);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_adds_bucket_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.bucket(bucket_index(5)), 2);
        assert_eq!(a.bucket(bucket_index(100)), 1);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 110);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn codec_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 3, 61_827, u64::MAX] {
            h.record(v);
        }
        let bytes = h.to_bytes();
        let back = Histogram::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn decode_rejects_non_canonical_buckets() {
        // Out-of-range index.
        let mut h = Histogram::new();
        h.record(7);
        let mut bytes = BytesMut::new();
        vec![(NUM_BUCKETS as u64, 1u64)].encode(&mut bytes);
        0u64.encode(&mut bytes);
        0u64.encode(&mut bytes);
        0u64.encode(&mut bytes);
        assert!(Histogram::from_bytes(&bytes).is_err());
        // Unsorted indexes.
        let mut bytes = BytesMut::new();
        vec![(3u64, 1u64), (1u64, 1u64)].encode(&mut bytes);
        2u64.encode(&mut bytes);
        0u64.encode(&mut bytes);
        0u64.encode(&mut bytes);
        assert!(Histogram::from_bytes(&bytes).is_err());
    }
}
