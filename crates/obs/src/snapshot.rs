//! `ObsSnapshot`: the exported obs report, canonical in two forms.
//!
//! A snapshot is a point-in-time copy of everything the hub has measured.
//! It serializes two ways, both canonical:
//!
//! * **binary** via `tart-codec` ([`tart_codec::Encode`]/[`Decode`]) — the
//!   same varint/sorted-map discipline as checkpoints, so a snapshot can be
//!   embedded in durable artifacts and byte-compared;
//! * **JSON** via [`ObsSnapshot::to_json`] — the `obs-report.json` format
//!   emitted by the chaos soak, the cold-restart drill and the throughput
//!   bench, validated in CI by `tart-obs --check-report`.
//!
//! Field order is fixed (declaration order) in both encodings; re-encoding
//! a decoded snapshot reproduces the input byte-for-byte (see the proptest
//! in `tests/roundtrip.rs`).

use std::collections::BTreeMap;

use bytes::BytesMut;
use tart_codec::{Decode, DecodeError, Encode, Reader};

use crate::hist::{bucket_upper_bound, Histogram};
use crate::json::{self, Json, JsonWriter};
use crate::recorder::ObsEvent;

/// Current report schema version.
///
/// v2 added the verified-replay counters (`state_hashes_computed`,
/// `divergences_detected`); v3 added the warm-standby counters
/// (`standby_applied`, `standby_demotions`, `warm_promotions`,
/// `cold_promotions`) and histograms (`standby_lag_ticks`,
/// `promotion_latency_ns`); v4 added the per-tier WAL fsync-latency
/// histograms (`wal_fsync_strict_ns`, `wal_fsync_buffered_ns`).
pub const SNAPSHOT_VERSION: u32 = 4;

/// Point-in-time export of every obs metric plus the flight-recorder
/// timeline. See the module docs for the serialization contract.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ObsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Messages that left the pessimistic gate and ran their handler.
    pub delivered: u64,
    /// Silence adverts transmitted (probe answers + broadcasts).
    pub silence_adverts: u64,
    /// Curiosity probes sent.
    pub probes: u64,
    /// Replay requests sent after gap detection.
    pub replay_requests: u64,
    /// Replica promotions (supervisor- or operator-driven).
    pub failovers: u64,
    /// Determinism faults: estimator recalibrations scheduled.
    pub recalibrations: u64,
    /// WAL fsync windows closed (group commits).
    pub wal_syncs: u64,
    /// Checkpoints persisted to the durable store.
    pub checkpoint_persists: u64,
    /// Deterministic state hashes computed by verified replay (per-component
    /// digests plus combined engine digests).
    pub state_hashes_computed: u64,
    /// State divergences detected: recomputed hashes that did not match the
    /// digest recorded at checkpoint time. Zero in any clean run.
    pub divergences_detected: u64,
    /// Checkpoints the warm standby pre-applied (and hash-verified) in the
    /// background.
    pub standby_applied: u64,
    /// Warm standbys demoted to cold-replay mode after a streamed
    /// checkpoint failed hash verification.
    pub standby_demotions: u64,
    /// Promotions that started from the standby's pre-applied state.
    pub warm_promotions: u64,
    /// Promotions that replayed the full chain (no usable standby).
    pub cold_promotions: u64,
    /// Flight-recorder events evicted to stay within the ring cap.
    pub events_dropped: u64,
    /// Wall time a message sat released-but-blocked on silence, ns.
    pub pessimism_wait_ns: Histogram,
    /// |estimated − measured| handler cost, ns (estimate in vt ticks ≡ ns).
    pub estimator_residual_ns: Histogram,
    /// Records per WAL group-commit window at fsync time.
    pub wal_group_occupancy: Histogram,
    /// Wall-clock latency of WAL fsyncs forced by Strict-tier appends, ns.
    pub wal_fsync_strict_ns: Histogram,
    /// Wall-clock latency of every other WAL fsync (flush-window deadlines,
    /// record caps, legacy policies), ns.
    pub wal_fsync_buffered_ns: Histogram,
    /// Wall-clock latency of `CheckpointStore::persist`, ns.
    pub checkpoint_persist_ns: Histogram,
    /// Standby replication lag at each background apply: how far the
    /// applied checkpoint trailed the primary's head, in vt ticks.
    pub standby_lag_ticks: Histogram,
    /// Wall-clock promotion latency (kill acknowledged → restored engine
    /// running), ns; warm and cold promotions both record here.
    pub promotion_latency_ns: Histogram,
    /// Silence adverts per raw wire id.
    pub silence_per_wire: BTreeMap<u32, u64>,
    /// Flight-recorder timeline, oldest first.
    pub events: Vec<ObsEvent>,
}

impl Encode for ObsSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.version.encode(buf);
        self.delivered.encode(buf);
        self.silence_adverts.encode(buf);
        self.probes.encode(buf);
        self.replay_requests.encode(buf);
        self.failovers.encode(buf);
        self.recalibrations.encode(buf);
        self.wal_syncs.encode(buf);
        self.checkpoint_persists.encode(buf);
        self.state_hashes_computed.encode(buf);
        self.divergences_detected.encode(buf);
        self.standby_applied.encode(buf);
        self.standby_demotions.encode(buf);
        self.warm_promotions.encode(buf);
        self.cold_promotions.encode(buf);
        self.events_dropped.encode(buf);
        self.pessimism_wait_ns.encode(buf);
        self.estimator_residual_ns.encode(buf);
        self.wal_group_occupancy.encode(buf);
        self.wal_fsync_strict_ns.encode(buf);
        self.wal_fsync_buffered_ns.encode(buf);
        self.checkpoint_persist_ns.encode(buf);
        self.standby_lag_ticks.encode(buf);
        self.promotion_latency_ns.encode(buf);
        self.silence_per_wire.encode(buf);
        self.events.encode(buf);
    }
}

impl Decode for ObsSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ObsSnapshot {
            version: u32::decode(r)?,
            delivered: u64::decode(r)?,
            silence_adverts: u64::decode(r)?,
            probes: u64::decode(r)?,
            replay_requests: u64::decode(r)?,
            failovers: u64::decode(r)?,
            recalibrations: u64::decode(r)?,
            wal_syncs: u64::decode(r)?,
            checkpoint_persists: u64::decode(r)?,
            state_hashes_computed: u64::decode(r)?,
            divergences_detected: u64::decode(r)?,
            standby_applied: u64::decode(r)?,
            standby_demotions: u64::decode(r)?,
            warm_promotions: u64::decode(r)?,
            cold_promotions: u64::decode(r)?,
            events_dropped: u64::decode(r)?,
            pessimism_wait_ns: Histogram::decode(r)?,
            estimator_residual_ns: Histogram::decode(r)?,
            wal_group_occupancy: Histogram::decode(r)?,
            wal_fsync_strict_ns: Histogram::decode(r)?,
            wal_fsync_buffered_ns: Histogram::decode(r)?,
            checkpoint_persist_ns: Histogram::decode(r)?,
            standby_lag_ticks: Histogram::decode(r)?,
            promotion_latency_ns: Histogram::decode(r)?,
            silence_per_wire: BTreeMap::decode(r)?,
            events: Vec::decode(r)?,
        })
    }
}

fn write_hist(w: &mut JsonWriter, key: &str, h: &Histogram) {
    w.key(key);
    w.begin_obj();
    w.field_u64("count", h.count());
    w.field_u64("sum", h.sum());
    w.field_u64("max", h.max());
    w.key("buckets");
    w.begin_arr();
    for (i, n) in h.nonzero_buckets() {
        w.arr_item(|w| {
            w.begin_obj();
            w.field_u64("le", bucket_upper_bound(i));
            w.field_u64("n", n);
            w.end_obj();
        });
    }
    w.end_arr();
    w.end_obj();
}

impl ObsSnapshot {
    /// Renders the canonical `obs-report.json` document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("version", u64::from(self.version));
        w.field_u64("delivered", self.delivered);
        w.field_u64("silence_adverts", self.silence_adverts);
        w.field_u64("probes", self.probes);
        w.field_u64("replay_requests", self.replay_requests);
        w.field_u64("failovers", self.failovers);
        w.field_u64("recalibrations", self.recalibrations);
        w.field_u64("wal_syncs", self.wal_syncs);
        w.field_u64("checkpoint_persists", self.checkpoint_persists);
        w.field_u64("state_hashes_computed", self.state_hashes_computed);
        w.field_u64("divergences_detected", self.divergences_detected);
        w.field_u64("standby_applied", self.standby_applied);
        w.field_u64("standby_demotions", self.standby_demotions);
        w.field_u64("warm_promotions", self.warm_promotions);
        w.field_u64("cold_promotions", self.cold_promotions);
        w.field_u64("events_dropped", self.events_dropped);
        write_hist(&mut w, "pessimism_wait_ns", &self.pessimism_wait_ns);
        write_hist(&mut w, "estimator_residual_ns", &self.estimator_residual_ns);
        write_hist(&mut w, "wal_group_occupancy", &self.wal_group_occupancy);
        write_hist(&mut w, "wal_fsync_strict_ns", &self.wal_fsync_strict_ns);
        write_hist(&mut w, "wal_fsync_buffered_ns", &self.wal_fsync_buffered_ns);
        write_hist(&mut w, "checkpoint_persist_ns", &self.checkpoint_persist_ns);
        write_hist(&mut w, "standby_lag_ticks", &self.standby_lag_ticks);
        write_hist(&mut w, "promotion_latency_ns", &self.promotion_latency_ns);
        w.key("silence_per_wire");
        w.begin_obj();
        for (wire, n) in &self.silence_per_wire {
            w.field_u64(&wire.to_string(), *n);
        }
        w.end_obj();
        w.key("events");
        w.begin_arr();
        for e in &self.events {
            w.arr_item(|w| e.write_json(w));
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

/// Extra requirements `check_report` can enforce beyond the base schema.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReportRequirements {
    /// Require evidence of ≥ 1 promotion: a nonzero `failovers` counter or
    /// a `failover_promotion` event in the timeline. (The counter is
    /// authoritative — the bounded event ring may have evicted the event
    /// under heavy probe/silence traffic.)
    pub failover_event: bool,
    /// Require a nonzero pessimism-wait histogram.
    pub pessimism_samples: bool,
    /// Require at least one per-wire silence total.
    pub silence_totals: bool,
    /// Require `divergences_detected` to be exactly zero: verified replay
    /// recomputed state hashes and every one matched its recorded digest.
    /// Clean soaks and gates set this; corruption drills must NOT.
    pub zero_divergence: bool,
}

/// Top-level keys every report must carry.
const REQUIRED_KEYS: &[&str] = &[
    "version",
    "delivered",
    "silence_adverts",
    "probes",
    "replay_requests",
    "failovers",
    "recalibrations",
    "wal_syncs",
    "checkpoint_persists",
    "state_hashes_computed",
    "divergences_detected",
    "standby_applied",
    "standby_demotions",
    "warm_promotions",
    "cold_promotions",
    "events_dropped",
    "pessimism_wait_ns",
    "estimator_residual_ns",
    "wal_group_occupancy",
    "wal_fsync_strict_ns",
    "wal_fsync_buffered_ns",
    "checkpoint_persist_ns",
    "standby_lag_ticks",
    "promotion_latency_ns",
    "silence_per_wire",
    "events",
];

const HIST_KEYS: &[&str] = &["count", "sum", "max", "buckets"];

/// Validates an `obs-report.json` document: schema keys, a nonzero
/// delivered count, and any extra [`ReportRequirements`].
///
/// # Errors
///
/// Returns every violation found, one message per line's worth.
pub fn check_report(text: &str, req: ReportRequirements) -> Result<(), Vec<String>> {
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let mut problems = Vec::new();
    if doc.as_obj().is_none() {
        return Err(vec!["top level is not an object".into()]);
    }
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            problems.push(format!("missing required key '{key}'"));
        }
    }
    for key in [
        "pessimism_wait_ns",
        "estimator_residual_ns",
        "wal_group_occupancy",
        "wal_fsync_strict_ns",
        "wal_fsync_buffered_ns",
        "checkpoint_persist_ns",
        "standby_lag_ticks",
        "promotion_latency_ns",
    ] {
        if let Some(hist) = doc.get(key) {
            for sub in HIST_KEYS {
                if hist.get(sub).is_none() {
                    problems.push(format!("histogram '{key}' missing '{sub}'"));
                }
            }
        }
    }
    match doc.get("version").and_then(Json::as_u64) {
        Some(v) if v == u64::from(SNAPSHOT_VERSION) => {}
        Some(v) => problems.push(format!(
            "unsupported report version {v} (expected {SNAPSHOT_VERSION})"
        )),
        None => {}
    }
    if doc.get("delivered").and_then(Json::as_u64) == Some(0) {
        problems.push("zero delivered messages: the run measured nothing".into());
    }
    if req.failover_event {
        let counted = doc.get("failovers").and_then(Json::as_u64).unwrap_or(0) > 0;
        let in_timeline = doc
            .get("events")
            .and_then(Json::as_arr)
            .is_some_and(|events| {
                events
                    .iter()
                    .any(|e| e.get("kind").and_then(Json::as_str) == Some("failover_promotion"))
            });
        if !counted && !in_timeline {
            problems.push("no failover promotion recorded (counter or timeline)".into());
        }
    }
    if req.pessimism_samples
        && doc
            .get("pessimism_wait_ns")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            == 0
    {
        problems.push("pessimism_wait_ns histogram is empty".into());
    }
    if req.silence_totals
        && doc
            .get("silence_per_wire")
            .and_then(Json::as_obj)
            .is_none_or(<[(String, Json)]>::is_empty)
    {
        problems.push("silence_per_wire has no totals".into());
    }
    if req.zero_divergence {
        match doc.get("divergences_detected").and_then(Json::as_u64) {
            Some(0) => {}
            Some(n) => problems.push(format!(
                "{n} state divergence(s) detected: replay did not reconverge"
            )),
            None => problems.push("divergences_detected is missing or not a number".into()),
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::ObsEventKind;

    fn sample() -> ObsSnapshot {
        let mut snap = ObsSnapshot {
            version: SNAPSHOT_VERSION,
            delivered: 10,
            silence_adverts: 4,
            probes: 2,
            replay_requests: 1,
            failovers: 1,
            recalibrations: 0,
            wal_syncs: 3,
            checkpoint_persists: 5,
            state_hashes_computed: 20,
            divergences_detected: 0,
            standby_applied: 6,
            standby_demotions: 0,
            warm_promotions: 1,
            cold_promotions: 1,
            events_dropped: 0,
            ..ObsSnapshot::default()
        };
        snap.pessimism_wait_ns.record(1_500);
        snap.estimator_residual_ns.record(0);
        snap.wal_group_occupancy.record(64);
        snap.wal_fsync_strict_ns.record(900_000);
        snap.wal_fsync_buffered_ns.record(400_000);
        snap.checkpoint_persist_ns.record(80_000);
        snap.standby_lag_ticks.record(120_000_000);
        snap.promotion_latency_ns.record(2_000_000);
        snap.silence_per_wire.insert(0, 3);
        snap.silence_per_wire.insert(4, 1);
        snap.events.push(ObsEvent {
            at_ns: 10,
            engine: 1,
            kind: ObsEventKind::FailoverPromotion,
        });
        snap
    }

    #[test]
    fn codec_round_trip_is_byte_identical() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = ObsSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.to_json(), snap.to_json());
    }

    #[test]
    fn valid_report_passes_all_requirements() {
        let json = sample().to_json();
        let req = ReportRequirements {
            failover_event: true,
            pessimism_samples: true,
            silence_totals: true,
            zero_divergence: true,
        };
        assert_eq!(check_report(&json, req), Ok(()));
    }

    #[test]
    fn missing_keys_and_zero_delivered_fail() {
        let errs = check_report("{}", ReportRequirements::default()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing required key")));

        let mut snap = sample();
        snap.delivered = 0;
        let errs = check_report(&snap.to_json(), ReportRequirements::default()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("zero delivered")));
    }

    #[test]
    fn chaos_requirements_catch_thin_reports() {
        let mut snap = sample();
        snap.events.clear();
        snap.failovers = 0;
        snap.pessimism_wait_ns = Histogram::new();
        snap.silence_per_wire.clear();
        let req = ReportRequirements {
            failover_event: true,
            pessimism_samples: true,
            silence_totals: true,
            zero_divergence: false,
        };
        let errs = check_report(&snap.to_json(), req).unwrap_err();
        assert_eq!(errs.len(), 3, "{errs:?}");
    }

    #[test]
    fn zero_divergence_requirement_rejects_divergent_runs() {
        let mut snap = sample();
        let req = ReportRequirements {
            zero_divergence: true,
            ..ReportRequirements::default()
        };
        assert_eq!(check_report(&snap.to_json(), req), Ok(()));
        snap.divergences_detected = 2;
        let errs = check_report(&snap.to_json(), req).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("2 state divergence")),
            "{errs:?}"
        );
        // A report predating the counters cannot satisfy the requirement.
        let errs = check_report("{\"delivered\": 1}", req).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("divergences_detected is missing")),
            "{errs:?}"
        );
    }

    #[test]
    fn failover_counter_satisfies_requirement_when_event_was_evicted() {
        // A long soak's probe/silence ping-pong can push the promotion
        // event out of the bounded ring; the counter must still count.
        let mut snap = sample();
        snap.events.clear();
        snap.events_dropped = 30_000;
        let req = ReportRequirements {
            failover_event: true,
            ..ReportRequirements::default()
        };
        assert_eq!(check_report(&snap.to_json(), req), Ok(()));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(check_report("not json", ReportRequirements::default()).is_err());
        assert!(check_report("[1,2]", ReportRequirements::default()).is_err());
    }
}
