//! `tart-obs` — obs-report tooling for CI.
//!
//! ```text
//! tart-obs --check-report <path> [--require-failover] [--require-pessimism]
//!          [--require-silence] [--require-zero-divergence]
//! ```
//!
//! Validates an `obs-report.json` produced by the chaos soak, the
//! cold-restart drill or the throughput bench: the full key schema, a
//! nonzero delivered count, and optionally the chaos-specific requirements
//! (a recorded failover promotion, pessimism-wait samples, per-wire
//! silence totals, zero verified-replay divergences). Exit code 0 on a
//! valid report, 1 on violations (each printed on its own line), 2 on
//! usage errors.

use std::process::ExitCode;

use tart_obs::{check_report, ReportRequirements};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tart-obs --check-report <path> \
         [--require-failover] [--require-pessimism] [--require-silence] \
         [--require-zero-divergence]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut req = ReportRequirements::default();
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("--check-report") => {}
        _ => return usage(),
    }
    for arg in iter {
        match arg.as_str() {
            "--require-failover" => req.failover_event = true,
            "--require-pessimism" => req.pessimism_samples = true,
            "--require-silence" => req.silence_totals = true,
            "--require-zero-divergence" => req.zero_divergence = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(path) = path else { return usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tart-obs: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_report(&text, req) {
        Ok(()) => {
            println!("tart-obs: {path} is a valid obs report");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("tart-obs: {path}: {p}");
            }
            eprintln!("tart-obs: {} problem(s) found", problems.len());
            ExitCode::FAILURE
        }
    }
}
