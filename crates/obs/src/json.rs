//! Canonical JSON rendering and a minimal parser for report validation.
//!
//! The obs report must be *canonical*: the same [`crate::ObsSnapshot`]
//! always renders to the same bytes, so CI can diff reports and the
//! round-trip property (decode → re-render → identical) is testable. The
//! writer therefore emits no whitespace, fixed field order (callers write
//! fields in declaration order), and RFC 8259 escapes with a fixed
//! lowercase `\u00xx` form for control characters.
//!
//! The parser exists so `tart-obs --check-report` can validate a report
//! with zero dependencies; it accepts standard JSON (it is *not* limited to
//! the canonical subset the writer emits).

/// Incremental canonical-JSON string builder.
///
/// Structure (`begin_obj`/`end_obj`, `begin_arr`/`end_arr`) is driven by
/// the caller; commas are inserted automatically by [`JsonWriter::key`] and
/// [`JsonWriter::arr_item`].
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    has_items: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Consumes the writer and returns the rendered JSON.
    pub fn finish(self) -> String {
        self.out
    }

    /// Opens an object (`{`). Use after [`JsonWriter::key`] /
    /// [`JsonWriter::arr_item`] when nested.
    pub fn begin_obj(&mut self) {
        self.out.push('{');
        self.has_items.push(false);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        self.has_items.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.out.push('[');
        self.has_items.push(false);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        self.has_items.pop();
        self.out.push(']');
    }

    fn comma(&mut self) {
        if let Some(has) = self.has_items.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Writes `"key":`, inserting the separating comma when needed.
    pub fn key(&mut self, key: &str) {
        self.comma();
        escape_into(&mut self.out, key);
        self.out.push(':');
    }

    /// Writes one array element via `f`, inserting the comma when needed.
    pub fn arr_item(&mut self, f: impl FnOnce(&mut JsonWriter)) {
        self.comma();
        f(self);
    }

    /// Writes a bare unsigned integer value.
    pub fn val_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a bare string value.
    pub fn val_str(&mut self, v: &str) {
        escape_into(&mut self.out, v);
    }

    /// `"key":123`
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.val_u64(v);
    }

    /// `"key":"value"`
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.val_str(v);
    }
}

/// Appends `s` as a quoted, RFC 8259-escaped JSON string.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers above 2^53 lose precision,
    /// which is acceptable for validation).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling: combine when a high
                            // surrogate is followed by `\uXXXX` low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; find the char at this offset).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at offset {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_compact_json() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("a", 1);
        w.field_str("b", "x\"y\n");
        w.key("c");
        w.begin_arr();
        w.arr_item(|w| w.val_u64(2));
        w.arr_item(|w| w.val_u64(3));
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":1,"b":"x\"y\n","c":[2,3]}"#);
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("count", 61_827);
        w.field_str("name", "tab\there \u{1} and \u{1F600}");
        w.key("empty");
        w.begin_arr();
        w.end_arr();
        w.end_obj();
        let text = w.finish();
        let v = parse(&text).expect("parses");
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(61_827));
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("tab\there \u{1} and \u{1F600}")
        );
        assert_eq!(
            v.get("empty").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = parse(" { \"a\" : [ 1 , -2.5 , true , null , \"\\u0041\\ud83d\\ude00\" ] } ")
            .expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Json::Num(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("A😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"\\q\"").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth limit");
    }
}
