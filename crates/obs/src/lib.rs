//! TART observability: telemetry *about* the deterministic core, never
//! state *inside* it.
//!
//! The paper's evaluation (§II.H, §IV) is phrased in quantities the engine
//! historically could not report: how long each message sat
//! released-but-blocked on silence (pessimism delay), how many silence
//! adverts each wire carried, how far the estimator's prediction was from
//! the measured handler cost, and what actually happened — in order — when
//! a replica was promoted. `tart-obs` provides those as:
//!
//! * a **metrics registry** ([`ObsHub`]): atomic counters plus fixed-bucket
//!   [`Histogram`]s, cheap enough for the delivery hot path;
//! * a **flight recorder** ([`FlightRecorder`]): a bounded ring of
//!   structured [`ObsEvent`]s dumped as JSON on panic, on crash drills and
//!   on failover promotions;
//! * a **snapshot export** ([`ObsSnapshot`]): the canonical
//!   `obs-report.json` consumed by the `observability-gate` CI job via
//!   `tart-obs --check-report`.
//!
//! # Determinism contract
//!
//! This crate is **Ops tier** in the lint manifest: it reads the wall clock
//! (that is its purpose) behind two annotated sites, and nothing in it may
//! ever flow back into checkpointed component state, virtual time, or any
//! replayed decision. The engine core only calls opaque recording methods
//! on [`EngineObs`]; a detached hub (the default in unit tests) records
//! into private state and changes nothing observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tart_vtime::{ComponentId, EngineId, VirtualTime, WireId};

pub mod hist;
pub mod json;
pub mod recorder;
pub mod snapshot;

pub use hist::{Histogram, LAST_BUCKET, NUM_BUCKETS};
pub use recorder::{FlightRecorder, ObsEvent, ObsEventKind};
pub use snapshot::{check_report, ObsSnapshot, ReportRequirements, SNAPSHOT_VERSION};

/// Flight-recorder capacity: enough for the full timeline of a CI soak,
/// bounded against unbounded growth in long benches.
const RECORDER_CAP: usize = 4096;

/// Cap on outstanding arrival stamps per (engine, wire): a wire that never
/// delivers (severed, or a baseline-mode path that bypasses the gate) must
/// not grow the map without bound.
const PENDING_CAP: usize = 8192;

/// Engine id used for cluster-level events recorded outside any engine.
const NO_ENGINE: u32 = u32::MAX;

#[derive(Default)]
struct Counters {
    delivered: AtomicU64,
    silence_adverts: AtomicU64,
    probes: AtomicU64,
    replay_requests: AtomicU64,
    failovers: AtomicU64,
    recalibrations: AtomicU64,
    wal_syncs: AtomicU64,
    checkpoint_persists: AtomicU64,
    state_hashes_computed: AtomicU64,
    divergences_detected: AtomicU64,
    standby_applied: AtomicU64,
    standby_demotions: AtomicU64,
    warm_promotions: AtomicU64,
    cold_promotions: AtomicU64,
}

#[derive(Default)]
struct Inner {
    wal_group_occupancy: Histogram,
    wal_fsync_strict_ns: Histogram,
    wal_fsync_buffered_ns: Histogram,
    checkpoint_persist_ns: Histogram,
    standby_lag_ticks: Histogram,
    promotion_latency_ns: Histogram,
}

/// Hot-path recording state, sharded per engine so the per-delivery path
/// (arrival stamp, pessimism match, timeline event, residual) takes one
/// mutex that only its own engine thread contends on. The cluster-wide
/// `Inner` mutex is reserved for cold paths (WAL, checkpoints, standby).
#[derive(Default)]
struct Shard {
    pessimism_wait_ns: Histogram,
    estimator_residual_ns: Histogram,
    silence_per_wire: BTreeMap<u32, u64>,
    /// wire → vt ticks → arrival stamp (ns since hub epoch).
    pending: BTreeMap<u32, BTreeMap<u64, u64>>,
    /// Per-engine slice of the flight-recorder timeline, bounded at
    /// [`RECORDER_CAP`] events like the cluster-level ring.
    events: std::collections::VecDeque<ObsEvent>,
    events_dropped: u64,
}

impl Shard {
    fn push_event(&mut self, event: ObsEvent) {
        if self.events.len() == RECORDER_CAP {
            self.events.pop_front();
            self.events_dropped = self.events_dropped.saturating_add(1);
        }
        self.events.push_back(event);
    }
}

/// The shared metrics registry + flight recorder. One hub serves a whole
/// cluster; engines record through per-engine [`EngineObs`] handles.
pub struct ObsHub {
    epoch: Instant,
    counters: Counters,
    inner: Mutex<Inner>,
    shards: Mutex<Vec<(u32, Arc<Mutex<Shard>>)>>,
    recorder: FlightRecorder,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new()
    }
}

impl ObsHub {
    /// A fresh hub. The creation instant becomes the zero point for every
    /// event stamp.
    #[allow(clippy::disallowed_methods)]
    pub fn new() -> Self {
        ObsHub {
            epoch: Instant::now(),
            counters: Counters::default(),
            inner: Mutex::new(Inner::default()),
            shards: Mutex::new(Vec::new()),
            recorder: FlightRecorder::new(RECORDER_CAP),
        }
    }

    /// Nanoseconds since the hub was created.
    #[allow(clippy::disallowed_methods)]
    fn now_ns(&self) -> u64 {
        let elapsed = Instant::now().saturating_duration_since(self.epoch);
        u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
    }

    /// A recording handle bound to one engine. Handles for the same engine
    /// id share one hot-path shard.
    pub fn engine(self: &Arc<Self>, id: EngineId) -> EngineObs {
        let shard = {
            let mut shards = self.shards.lock().expect("obs shards poisoned");
            match shards.iter().find(|(e, _)| *e == id.raw()) {
                Some((_, shard)) => Arc::clone(shard),
                None => {
                    let shard = Arc::new(Mutex::new(Shard::default()));
                    shards.push((id.raw(), Arc::clone(&shard)));
                    shard
                }
            }
        };
        EngineObs {
            hub: Arc::clone(self),
            engine: id.raw(),
            shard,
        }
    }

    /// The full timeline — cluster-level ring plus every engine shard's
    /// slice — merged in stamp order, with the total evicted-event count.
    fn merged_events(&self) -> (Vec<ObsEvent>, u64) {
        let mut events = self.recorder.events();
        let mut dropped = self.recorder.dropped();
        for (_, shard) in self.shards.lock().expect("obs shards poisoned").iter() {
            let shard = shard.lock().expect("obs shard poisoned");
            events.extend(shard.events.iter().cloned());
            dropped = dropped.saturating_add(shard.events_dropped);
        }
        events.sort_by_key(|e| e.at_ns);
        (events, dropped)
    }

    fn push_event(&self, engine: u32, kind: ObsEventKind) {
        self.recorder.push(ObsEvent {
            at_ns: self.now_ns(),
            engine,
            kind,
        });
    }

    /// Records a replica promotion (supervisor- or operator-driven).
    pub fn failover(&self, engine: EngineId) {
        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        self.push_event(engine.raw(), ObsEventKind::FailoverPromotion);
    }

    /// Records one checkpoint the warm standby pre-applied (and hash-
    /// verified) in the background, with its replication lag behind the
    /// primary's head in virtual-time ticks.
    pub fn standby_applied(&self, lag_ticks: u64) {
        self.counters
            .standby_applied
            .fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        inner.standby_lag_ticks.record(lag_ticks);
    }

    /// Records a warm standby demoting itself to cold-replay mode after a
    /// streamed checkpoint failed hash verification at `vt`.
    pub fn standby_demotion(&self, engine: EngineId, vt: VirtualTime) {
        self.counters
            .standby_demotions
            .fetch_add(1, Ordering::Relaxed);
        self.push_event(
            engine.raw(),
            ObsEventKind::StandbyDemotion { vt: vt.as_ticks() },
        );
    }

    /// Records a completed promotion: `warm` when it started from the
    /// standby's pre-applied state, with its wall latency.
    pub fn promotion_complete(&self, engine: EngineId, warm: bool, latency_ns: u64) {
        let counter = if warm {
            &self.counters.warm_promotions
        } else {
            &self.counters.cold_promotions
        };
        counter.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.lock();
            inner.promotion_latency_ns.record(latency_ns);
        }
        self.push_event(
            engine.raw(),
            ObsEventKind::PromotionComplete { warm, latency_ns },
        );
    }

    /// Records one WAL group-commit window closing with `occupancy`
    /// records in it.
    pub fn wal_group_commit(&self, occupancy: u64) {
        self.counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        inner.wal_group_occupancy.record(occupancy);
    }

    /// Records one WAL fsync's wall latency, split by durability lane:
    /// `strict` when a Strict-tier append forced the window closed,
    /// buffered otherwise (flush-window deadlines, record caps, legacy
    /// policies). The per-tier p50/p99 in `BENCH_durability.json` come from
    /// these histograms.
    pub fn wal_fsync_ns(&self, strict: bool, ns: u64) {
        let mut inner = self.lock();
        if strict {
            inner.wal_fsync_strict_ns.record(ns);
        } else {
            inner.wal_fsync_buffered_ns.record(ns);
        }
    }

    /// Records `n` deterministic state hashes computed by verified replay
    /// (per-component digests plus the combined engine digest).
    pub fn state_hashes_computed(&self, n: u64) {
        self.counters
            .state_hashes_computed
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records a detected state divergence: a recomputed state hash that
    /// did not match the digest recorded at checkpoint time. `component`
    /// is `None` when engine-level bookkeeping (not any one component's
    /// state) diverged.
    pub fn divergence(&self, engine: EngineId, component: Option<ComponentId>, vt: VirtualTime) {
        self.counters
            .divergences_detected
            .fetch_add(1, Ordering::Relaxed);
        self.push_event(
            engine.raw(),
            ObsEventKind::Divergence {
                component: component.map_or(u32::MAX, |c| c.raw()),
                vt: vt.as_ticks(),
            },
        );
    }

    /// Records one durable checkpoint persist and its wall latency.
    pub fn checkpoint_persisted(&self, elapsed_ns: u64) {
        self.counters
            .checkpoint_persists
            .fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        inner.checkpoint_persist_ns.record(elapsed_ns);
    }

    /// The flight-recorder dump (`{"events_dropped":…,"events":[…]}`),
    /// emitted on panics, crash drills and promotions.
    pub fn dump_events_json(&self) -> String {
        self.dump_events_json_tail(usize::MAX)
    }

    /// Like [`ObsHub::dump_events_json`] but bounded to the newest `limit`
    /// events (older ones fold into the dump's `events_dropped`).
    pub fn dump_events_json_tail(&self, limit: usize) -> String {
        let (events, dropped) = self.merged_events();
        recorder::render_dump(&events, dropped, limit)
    }

    /// Copies every metric and the event timeline into an [`ObsSnapshot`].
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut pessimism_wait_ns = Histogram::new();
        let mut estimator_residual_ns = Histogram::new();
        let mut silence_per_wire: BTreeMap<u32, u64> = BTreeMap::new();
        for (_, shard) in self.shards.lock().expect("obs shards poisoned").iter() {
            let shard = shard.lock().expect("obs shard poisoned");
            pessimism_wait_ns.merge(&shard.pessimism_wait_ns);
            estimator_residual_ns.merge(&shard.estimator_residual_ns);
            for (wire, n) in &shard.silence_per_wire {
                *silence_per_wire.entry(*wire).or_insert(0) += n;
            }
        }
        let (events, events_dropped) = self.merged_events();
        let inner = self.lock();
        ObsSnapshot {
            version: SNAPSHOT_VERSION,
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            silence_adverts: self.counters.silence_adverts.load(Ordering::Relaxed),
            probes: self.counters.probes.load(Ordering::Relaxed),
            replay_requests: self.counters.replay_requests.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            recalibrations: self.counters.recalibrations.load(Ordering::Relaxed),
            wal_syncs: self.counters.wal_syncs.load(Ordering::Relaxed),
            checkpoint_persists: self.counters.checkpoint_persists.load(Ordering::Relaxed),
            state_hashes_computed: self.counters.state_hashes_computed.load(Ordering::Relaxed),
            divergences_detected: self.counters.divergences_detected.load(Ordering::Relaxed),
            standby_applied: self.counters.standby_applied.load(Ordering::Relaxed),
            standby_demotions: self.counters.standby_demotions.load(Ordering::Relaxed),
            warm_promotions: self.counters.warm_promotions.load(Ordering::Relaxed),
            cold_promotions: self.counters.cold_promotions.load(Ordering::Relaxed),
            events_dropped,
            pessimism_wait_ns,
            estimator_residual_ns,
            wal_group_occupancy: inner.wal_group_occupancy.clone(),
            wal_fsync_strict_ns: inner.wal_fsync_strict_ns.clone(),
            wal_fsync_buffered_ns: inner.wal_fsync_buffered_ns.clone(),
            checkpoint_persist_ns: inner.checkpoint_persist_ns.clone(),
            standby_lag_ticks: inner.standby_lag_ticks.clone(),
            promotion_latency_ns: inner.promotion_latency_ns.clone(),
            silence_per_wire,
            events,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("obs hub poisoned")
    }
}

/// Per-engine recording handle: a cheap `Arc` wrapper the engine core calls
/// through. Every method is opaque to the core — no wall-clock value ever
/// crosses back over this boundary.
#[derive(Clone)]
pub struct EngineObs {
    hub: Arc<ObsHub>,
    engine: u32,
    /// This engine's hot-path shard: the per-delivery recording path locks
    /// only this, never the cluster-wide hub mutex.
    shard: Arc<Mutex<Shard>>,
}

impl EngineObs {
    /// A handle recording into its own private hub. Used as the default in
    /// directly-constructed engines (unit tests) so recording is always
    /// safe; a cluster replaces it via `EngineCore::set_obs`.
    pub fn detached(id: EngineId) -> EngineObs {
        Arc::new(ObsHub::new()).engine(id)
    }

    /// The hub this handle records into.
    pub fn hub(&self) -> &Arc<ObsHub> {
        &self.hub
    }

    fn shard_lock(&self) -> std::sync::MutexGuard<'_, Shard> {
        self.shard.lock().expect("obs shard poisoned")
    }

    /// Stamps a message's arrival at the pessimistic gate. The stamp is
    /// matched (by wire and vt) when the message is delivered; the
    /// difference is its pessimism wait.
    pub fn message_arrived(&self, wire: WireId, vt: VirtualTime) {
        let now = self.hub.now_ns();
        let mut shard = self.shard_lock();
        let pending = shard.pending.entry(wire.raw()).or_default();
        if pending.len() >= PENDING_CAP {
            pending.pop_first();
        }
        pending.insert(vt.as_ticks(), now);
    }

    /// Records a delivery: counts it, appends a timeline event, and — when
    /// the arrival was stamped — records the pessimism wait.
    pub fn message_delivered(&self, wire: WireId, vt: VirtualTime) {
        self.hub.counters.delivered.fetch_add(1, Ordering::Relaxed);
        let now = self.hub.now_ns();
        let mut shard = self.shard_lock();
        if let Some(arrived) = shard
            .pending
            .get_mut(&wire.raw())
            .and_then(|p| p.remove(&vt.as_ticks()))
        {
            let wait = now.saturating_sub(arrived);
            shard.pessimism_wait_ns.record(wait);
        }
        shard.push_event(ObsEvent {
            at_ns: now,
            engine: self.engine,
            kind: ObsEventKind::Delivery {
                wire: wire.raw(),
                vt: vt.as_ticks(),
            },
        });
    }

    /// Records a silence advert for `wire` advancing its watermark
    /// `through` the given virtual time.
    pub fn silence_sent(&self, wire: WireId, through: VirtualTime) {
        self.hub
            .counters
            .silence_adverts
            .fetch_add(1, Ordering::Relaxed);
        let now = self.hub.now_ns();
        let mut shard = self.shard_lock();
        *shard.silence_per_wire.entry(wire.raw()).or_insert(0) += 1;
        shard.push_event(ObsEvent {
            at_ns: now,
            engine: self.engine,
            kind: ObsEventKind::SilenceAdvance {
                wire: wire.raw(),
                through: through.as_ticks(),
            },
        });
    }

    /// Records a curiosity probe asking for silence through `needed`.
    pub fn probe_sent(&self, wire: WireId, needed: VirtualTime) {
        self.hub.counters.probes.fetch_add(1, Ordering::Relaxed);
        let now = self.hub.now_ns();
        self.shard_lock().push_event(ObsEvent {
            at_ns: now,
            engine: self.engine,
            kind: ObsEventKind::Probe {
                wire: wire.raw(),
                needed: needed.as_ticks(),
            },
        });
    }

    /// Records a replay request for the gap starting after `from`.
    pub fn replay_requested(&self, wire: WireId, from: VirtualTime) {
        self.hub
            .counters
            .replay_requests
            .fetch_add(1, Ordering::Relaxed);
        let now = self.hub.now_ns();
        self.shard_lock().push_event(ObsEvent {
            at_ns: now,
            engine: self.engine,
            kind: ObsEventKind::ReplayRequest {
                wire: wire.raw(),
                from: from.as_ticks(),
            },
        });
    }

    /// Records the estimator residual for one handler run: the estimate in
    /// vt ticks (≡ ns) against the measured wall cost in ns.
    pub fn estimator_residual(&self, estimated_ns: u64, measured_ns: u64) {
        self.shard_lock()
            .estimator_residual_ns
            .record(estimated_ns.abs_diff(measured_ns));
    }

    /// Records `n` deterministic state hashes computed on this engine.
    pub fn state_hashes_computed(&self, n: u64) {
        self.hub.state_hashes_computed(n);
    }

    /// Records a detected state divergence on this engine (see
    /// [`ObsHub::divergence`]).
    pub fn divergence(&self, component: Option<ComponentId>, vt: VirtualTime) {
        self.hub
            .divergence(EngineId::new(self.engine), component, vt);
    }

    /// Records a determinism fault: a recalibrated estimator scheduled for
    /// `component` effective at `vt`.
    pub fn recalibration(&self, component: ComponentId, vt: VirtualTime) {
        self.hub
            .counters
            .recalibrations
            .fetch_add(1, Ordering::Relaxed);
        self.hub.push_event(
            self.engine,
            ObsEventKind::RecalibrationFault {
                component: component.raw(),
                vt: vt.as_ticks(),
            },
        );
    }
}

/// Records an event not attributable to any engine (reserved for future
/// cluster-level timeline entries).
pub fn cluster_event(hub: &ObsHub, kind: ObsEventKind) {
    hub.push_event(NO_ENGINE, kind);
}

/// Where `obs-report.json` goes: `$TART_OBS_REPORT` when set, otherwise
/// `obs-report.json` in the current directory.
pub fn report_path() -> PathBuf {
    std::env::var_os("TART_OBS_REPORT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("obs-report.json"))
}

/// Writes the canonical JSON report to [`report_path`] and returns the
/// path written.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_report(snapshot: &ObsSnapshot) -> std::io::Result<PathBuf> {
    let path = report_path();
    let mut body = snapshot.to_json();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(n: u32) -> WireId {
        WireId::new(n)
    }

    #[test]
    fn pessimism_wait_is_measured_between_arrival_and_delivery() {
        let hub = Arc::new(ObsHub::new());
        let obs = hub.engine(EngineId::new(0));
        obs.message_arrived(wire(1), VirtualTime::from_ticks(100));
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.message_delivered(wire(1), VirtualTime::from_ticks(100));
        let snap = hub.snapshot();
        assert_eq!(snap.delivered, 1);
        assert_eq!(snap.pessimism_wait_ns.count(), 1);
        assert!(
            snap.pessimism_wait_ns.max() >= 1_000_000,
            "a 2ms hold must register at least 1ms of wait, got {}ns",
            snap.pessimism_wait_ns.max()
        );
    }

    #[test]
    fn unstamped_delivery_still_counts() {
        let hub = Arc::new(ObsHub::new());
        let obs = hub.engine(EngineId::new(0));
        obs.message_delivered(wire(9), VirtualTime::from_ticks(5));
        let snap = hub.snapshot();
        assert_eq!(snap.delivered, 1);
        assert_eq!(snap.pessimism_wait_ns.count(), 0);
    }

    #[test]
    fn per_wire_silence_totals_accumulate() {
        let hub = Arc::new(ObsHub::new());
        let obs = hub.engine(EngineId::new(1));
        obs.silence_sent(wire(0), VirtualTime::from_ticks(10));
        obs.silence_sent(wire(0), VirtualTime::from_ticks(20));
        obs.silence_sent(wire(3), VirtualTime::from_ticks(20));
        let snap = hub.snapshot();
        assert_eq!(snap.silence_adverts, 3);
        assert_eq!(snap.silence_per_wire.get(&0), Some(&2));
        assert_eq!(snap.silence_per_wire.get(&3), Some(&1));
    }

    #[test]
    fn pending_stamps_are_bounded() {
        let hub = Arc::new(ObsHub::new());
        let obs = hub.engine(EngineId::new(0));
        for vt in 0..(PENDING_CAP as u64 + 10) {
            obs.message_arrived(wire(0), VirtualTime::from_ticks(vt));
        }
        let shard = obs.shard_lock();
        assert_eq!(shard.pending[&0].len(), PENDING_CAP);
    }

    #[test]
    fn snapshot_round_trips_through_codec_and_json() {
        let hub = Arc::new(ObsHub::new());
        let obs = hub.engine(EngineId::new(2));
        obs.message_arrived(wire(1), VirtualTime::from_ticks(7));
        obs.message_delivered(wire(1), VirtualTime::from_ticks(7));
        obs.probe_sent(wire(1), VirtualTime::from_ticks(9));
        obs.replay_requested(wire(1), VirtualTime::from_ticks(0));
        obs.recalibration(ComponentId::new(4), VirtualTime::from_ticks(11));
        hub.failover(EngineId::new(2));
        hub.wal_group_commit(64);
        hub.checkpoint_persisted(5_000);
        let snap = hub.snapshot();
        use tart_codec::{Decode, Encode};
        let bytes = snap.to_bytes();
        let back = ObsSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(
            check_report(&snap.to_json(), ReportRequirements::default()),
            Ok(())
        );
    }

    #[test]
    fn dump_contains_failover_timeline() {
        let hub = Arc::new(ObsHub::new());
        hub.failover(EngineId::new(1));
        let dump = hub.dump_events_json();
        assert!(dump.contains("failover_promotion"), "{dump}");
    }
}
