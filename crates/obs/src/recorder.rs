//! The flight recorder: a bounded ring of structured engine events.
//!
//! Chaos-soak failures used to come with a bare output diff; the flight
//! recorder attaches a causal timeline — what was delivered, which silence
//! adverts moved the watermark, which probes fired, which replays ran and
//! which engines were promoted — so a diverging run can be read like a
//! black-box transcript. The ring is bounded ([`FlightRecorder::new`] takes
//! the capacity): old events are evicted, never allocated past the cap, and
//! the eviction count is reported so a truncated timeline is visible as
//! such.
//!
//! Events carry a wall-clock offset in nanoseconds since the owning hub was
//! created. That stamp is *telemetry about* the run, taken on the ops
//! plane; it never feeds back into virtual time or checkpointed state.

use std::collections::VecDeque;
use std::sync::Mutex;

use bytes::BytesMut;
use tart_codec::{Decode, DecodeError, Encode, Reader};

use crate::json::{self, JsonWriter};

/// What happened. Field meanings follow the engine wire protocol: `wire` is
/// the raw `WireId`, `vt`/`through`/`needed`/`from` are virtual-time ticks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A message left the pessimistic gate and ran its handler.
    Delivery {
        /// Raw wire id the message arrived on.
        wire: u32,
        /// Virtual timestamp of the message.
        vt: u64,
    },
    /// A silence advert moved a wire's watermark forward.
    SilenceAdvance {
        /// Raw wire id the advert covers.
        wire: u32,
        /// Silence watermark in ticks: no message at or before this vt.
        through: u64,
    },
    /// A curiosity probe asked an upstream engine for silence.
    Probe {
        /// Raw wire id being probed.
        wire: u32,
        /// The vt the prober needs silence through.
        needed: u64,
    },
    /// A replay of logged messages was requested after a gap was detected.
    ReplayRequest {
        /// Raw wire id with the gap.
        wire: u32,
        /// First missing vt (exclusive predecessor), in ticks.
        from: u64,
    },
    /// A replica was promoted to primary (supervisor- or operator-driven).
    FailoverPromotion,
    /// A determinism fault: an estimator recalibration was scheduled.
    RecalibrationFault {
        /// Raw component id whose estimator misbehaved.
        component: u32,
        /// Virtual time the new estimator takes effect, in ticks.
        vt: u64,
    },
    /// Verified replay caught a state divergence: a recomputed state hash
    /// did not match the one recorded at checkpoint time.
    Divergence {
        /// Raw component id whose state diverged (`u32::MAX` when the
        /// mismatch is in engine-level bookkeeping, not any one component).
        component: u32,
        /// Virtual time of the divergent replay horizon, in ticks.
        vt: u64,
    },
    /// A warm standby demoted itself to cold-replay mode: a streamed
    /// checkpoint failed hash verification (or broke the seal chain), so
    /// the standby's pre-applied state can no longer be trusted.
    StandbyDemotion {
        /// Virtual time of the checkpoint that failed verification, in
        /// ticks.
        vt: u64,
    },
    /// A replica promotion completed, warm (standby pre-applied state plus
    /// tail replay) or cold (full chain replay).
    PromotionComplete {
        /// `true` when the promotion started from the standby's
        /// pre-applied state.
        warm: bool,
        /// Wall-clock promotion latency (kill acknowledged → restored
        /// engine running), in nanoseconds.
        latency_ns: u64,
    },
}

impl ObsEventKind {
    fn tag(&self) -> u8 {
        match self {
            ObsEventKind::Delivery { .. } => 0,
            ObsEventKind::SilenceAdvance { .. } => 1,
            ObsEventKind::Probe { .. } => 2,
            ObsEventKind::ReplayRequest { .. } => 3,
            ObsEventKind::FailoverPromotion => 4,
            ObsEventKind::RecalibrationFault { .. } => 5,
            ObsEventKind::Divergence { .. } => 6,
            ObsEventKind::StandbyDemotion { .. } => 7,
            ObsEventKind::PromotionComplete { .. } => 8,
        }
    }

    /// Stable snake_case name used in the JSON report.
    pub fn name(&self) -> &'static str {
        match self {
            ObsEventKind::Delivery { .. } => "delivery",
            ObsEventKind::SilenceAdvance { .. } => "silence_advance",
            ObsEventKind::Probe { .. } => "probe",
            ObsEventKind::ReplayRequest { .. } => "replay_request",
            ObsEventKind::FailoverPromotion => "failover_promotion",
            ObsEventKind::RecalibrationFault { .. } => "recalibration_fault",
            ObsEventKind::Divergence { .. } => "divergence",
            ObsEventKind::StandbyDemotion { .. } => "standby_demotion",
            ObsEventKind::PromotionComplete { .. } => "promotion_complete",
        }
    }
}

/// One flight-recorder entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Nanoseconds since the owning [`crate::ObsHub`] was created.
    pub at_ns: u64,
    /// Raw id of the engine the event happened on (`u32::MAX` for
    /// cluster-level events recorded outside any engine).
    pub engine: u32,
    /// What happened.
    pub kind: ObsEventKind,
}

impl ObsEvent {
    /// Appends this event as one canonical JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.field_u64("at_ns", self.at_ns);
        w.field_u64("engine", u64::from(self.engine));
        w.field_str("kind", self.kind.name());
        match &self.kind {
            ObsEventKind::Delivery { wire, vt } => {
                w.field_u64("wire", u64::from(*wire));
                w.field_u64("vt", *vt);
            }
            ObsEventKind::SilenceAdvance { wire, through } => {
                w.field_u64("wire", u64::from(*wire));
                w.field_u64("through", *through);
            }
            ObsEventKind::Probe { wire, needed } => {
                w.field_u64("wire", u64::from(*wire));
                w.field_u64("needed", *needed);
            }
            ObsEventKind::ReplayRequest { wire, from } => {
                w.field_u64("wire", u64::from(*wire));
                w.field_u64("from", *from);
            }
            ObsEventKind::FailoverPromotion => {}
            ObsEventKind::RecalibrationFault { component, vt } => {
                w.field_u64("component", u64::from(*component));
                w.field_u64("vt", *vt);
            }
            ObsEventKind::Divergence { component, vt } => {
                w.field_u64("component", u64::from(*component));
                w.field_u64("vt", *vt);
            }
            ObsEventKind::StandbyDemotion { vt } => {
                w.field_u64("vt", *vt);
            }
            ObsEventKind::PromotionComplete { warm, latency_ns } => {
                w.field_str("mode", if *warm { "warm" } else { "cold" });
                w.field_u64("latency_ns", *latency_ns);
            }
        }
        w.end_obj();
    }
}

impl Encode for ObsEvent {
    fn encode(&self, buf: &mut BytesMut) {
        self.at_ns.encode(buf);
        self.engine.encode(buf);
        buf.extend_from_slice(&[self.kind.tag()]);
        match &self.kind {
            ObsEventKind::Delivery { wire, vt } => {
                wire.encode(buf);
                vt.encode(buf);
            }
            ObsEventKind::SilenceAdvance { wire, through } => {
                wire.encode(buf);
                through.encode(buf);
            }
            ObsEventKind::Probe { wire, needed } => {
                wire.encode(buf);
                needed.encode(buf);
            }
            ObsEventKind::ReplayRequest { wire, from } => {
                wire.encode(buf);
                from.encode(buf);
            }
            ObsEventKind::FailoverPromotion => {}
            ObsEventKind::RecalibrationFault { component, vt } => {
                component.encode(buf);
                vt.encode(buf);
            }
            ObsEventKind::Divergence { component, vt } => {
                component.encode(buf);
                vt.encode(buf);
            }
            ObsEventKind::StandbyDemotion { vt } => {
                vt.encode(buf);
            }
            ObsEventKind::PromotionComplete { warm, latency_ns } => {
                buf.extend_from_slice(&[u8::from(*warm)]);
                latency_ns.encode(buf);
            }
        }
    }
}

impl Decode for ObsEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at_ns = u64::decode(r)?;
        let engine = u32::decode(r)?;
        let kind = match r.read_u8()? {
            0 => ObsEventKind::Delivery {
                wire: u32::decode(r)?,
                vt: u64::decode(r)?,
            },
            1 => ObsEventKind::SilenceAdvance {
                wire: u32::decode(r)?,
                through: u64::decode(r)?,
            },
            2 => ObsEventKind::Probe {
                wire: u32::decode(r)?,
                needed: u64::decode(r)?,
            },
            3 => ObsEventKind::ReplayRequest {
                wire: u32::decode(r)?,
                from: u64::decode(r)?,
            },
            4 => ObsEventKind::FailoverPromotion,
            5 => ObsEventKind::RecalibrationFault {
                component: u32::decode(r)?,
                vt: u64::decode(r)?,
            },
            6 => ObsEventKind::Divergence {
                component: u32::decode(r)?,
                vt: u64::decode(r)?,
            },
            7 => ObsEventKind::StandbyDemotion {
                vt: u64::decode(r)?,
            },
            8 => ObsEventKind::PromotionComplete {
                warm: r.read_u8()? != 0,
                latency_ns: u64::decode(r)?,
            },
            tag => {
                return Err(DecodeError::InvalidTag {
                    tag,
                    type_name: "ObsEventKind",
                })
            }
        };
        Ok(ObsEvent {
            at_ns,
            engine,
            kind,
        })
    }
}

struct RecorderInner {
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

/// Bounded ring buffer of [`ObsEvent`]s, safe to push from any thread.
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            inner: Mutex::new(RecorderInner {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: ObsEvent) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        if inner.events.len() == self.cap {
            inner.events.pop_front();
            inner.dropped = inner.dropped.saturating_add(1);
        }
        inner.events.push_back(event);
    }

    /// Copies out the current timeline, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        inner.events.iter().cloned().collect()
    }

    /// How many events have been evicted to stay within the cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").dropped
    }

    /// Renders the timeline as one canonical JSON object
    /// (`{"events_dropped":…,"events":[…]}`), the dump format used on
    /// panics, crashes and promotions.
    pub fn dump_json(&self) -> String {
        self.dump_json_tail(usize::MAX)
    }

    /// Like [`FlightRecorder::dump_json`], but keeps only the newest
    /// `limit` events; everything older is folded into `events_dropped`.
    /// Used where a full ring would drown the log (the stderr fallback).
    pub fn dump_json_tail(&self, limit: usize) -> String {
        let (events, dropped) = {
            let inner = self.inner.lock().expect("flight recorder poisoned");
            (
                inner.events.iter().cloned().collect::<Vec<_>>(),
                inner.dropped,
            )
        };
        render_dump(&events, dropped, limit)
    }
}

/// Renders an event timeline as the canonical dump object
/// (`{"events_dropped":…,"events":[…]}`), keeping only the newest `limit`
/// events and folding everything older into `events_dropped`.
pub fn render_dump(events: &[ObsEvent], dropped: u64, limit: usize) -> String {
    let skip = events.len().saturating_sub(limit);
    let dropped = dropped.saturating_add(skip as u64);
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_u64("events_dropped", dropped);
    w.key("events");
    w.begin_arr();
    for e in &events[skip..] {
        w.arr_item(|w| e.write_json(w));
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Convenience used by tests: parse a dump back into a JSON value.
pub fn parse_dump(dump: &str) -> Result<json::Json, String> {
    json::parse(dump)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> ObsEvent {
        ObsEvent {
            at_ns: at,
            engine: 0,
            kind: ObsEventKind::Delivery { wire: 1, vt: at },
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.push(ev(i));
        }
        let events: Vec<u64> = rec.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(events, vec![2, 3, 4]);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn all_event_kinds_round_trip() {
        let kinds = [
            ObsEventKind::Delivery {
                wire: 3,
                vt: 61_827,
            },
            ObsEventKind::SilenceAdvance {
                wire: 0,
                through: 99,
            },
            ObsEventKind::Probe { wire: 7, needed: 1 },
            ObsEventKind::ReplayRequest { wire: 2, from: 0 },
            ObsEventKind::FailoverPromotion,
            ObsEventKind::RecalibrationFault {
                component: 4,
                vt: u64::MAX,
            },
            ObsEventKind::Divergence {
                component: u32::MAX,
                vt: 42,
            },
            ObsEventKind::StandbyDemotion { vt: 9_000 },
            ObsEventKind::PromotionComplete {
                warm: true,
                latency_ns: 1_500_000,
            },
            ObsEventKind::PromotionComplete {
                warm: false,
                latency_ns: 80_000_000,
            },
        ];
        for kind in kinds {
            let event = ObsEvent {
                at_ns: 5,
                engine: 1,
                kind,
            };
            let bytes = event.to_bytes();
            assert_eq!(ObsEvent::from_bytes(&bytes).unwrap(), event);
        }
    }

    #[test]
    fn tail_dump_folds_older_events_into_the_drop_count() {
        let rec = FlightRecorder::new(8);
        for i in 0..6 {
            rec.push(ev(i));
        }
        let dump = rec.dump_json_tail(2);
        let parsed = parse_dump(&dump).expect("valid json");
        let events = parsed.get("events").and_then(json::Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("at_ns").and_then(json::Json::as_u64), Some(4));
        assert_eq!(
            parsed.get("events_dropped").and_then(json::Json::as_u64),
            Some(4),
            "the four skipped events count as dropped"
        );
    }

    #[test]
    fn dump_is_parseable_json() {
        let rec = FlightRecorder::new(8);
        rec.push(ev(1));
        rec.push(ObsEvent {
            at_ns: 2,
            engine: 9,
            kind: ObsEventKind::FailoverPromotion,
        });
        let dump = rec.dump_json();
        let parsed = parse_dump(&dump).expect("valid json");
        let events = parsed.get("events").and_then(json::Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].get("kind").and_then(json::Json::as_str),
            Some("failover_promotion")
        );
    }
}
