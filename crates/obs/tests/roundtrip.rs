//! Property tests: `ObsSnapshot` is canonical in both encodings.
//!
//! The obs report is diffed byte-for-byte in CI, so the serialization must
//! be canonical: decode(encode(x)) == x, re-encoding a decoded snapshot
//! reproduces the exact bytes, and the JSON projection of a decoded
//! snapshot matches the original's.

use proptest::prelude::*;
use tart_codec::{Decode, Encode};
use tart_obs::{Histogram, ObsEvent, ObsEventKind, ObsSnapshot, SNAPSHOT_VERSION};

fn arb_kind() -> impl Strategy<Value = ObsEventKind> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(wire, vt)| ObsEventKind::Delivery { wire, vt }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(wire, through)| ObsEventKind::SilenceAdvance { wire, through }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(wire, needed)| ObsEventKind::Probe { wire, needed }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(wire, from)| ObsEventKind::ReplayRequest { wire, from }),
        Just(ObsEventKind::FailoverPromotion),
        (any::<u32>(), any::<u64>())
            .prop_map(|(component, vt)| ObsEventKind::RecalibrationFault { component, vt }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(component, vt)| ObsEventKind::Divergence { component, vt }),
        any::<u64>().prop_map(|vt| ObsEventKind::StandbyDemotion { vt }),
        (any::<bool>(), any::<u64>())
            .prop_map(|(warm, latency_ns)| ObsEventKind::PromotionComplete { warm, latency_ns }),
    ]
}

fn arb_event() -> impl Strategy<Value = ObsEvent> {
    (any::<u64>(), any::<u32>(), arb_kind()).prop_map(|(at_ns, engine, kind)| ObsEvent {
        at_ns,
        engine,
        kind,
    })
}

fn arb_hist() -> impl Strategy<Value = Histogram> {
    proptest::collection::vec(any::<u64>(), 0..32).prop_map(|samples| {
        let mut h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        h
    })
}

fn arb_snapshot() -> impl Strategy<Value = ObsSnapshot> {
    (
        proptest::collection::vec(any::<u64>(), 15),
        // Two nested 4-tuples: the proptest shim implements `Strategy` for
        // tuples of limited arity, so eight histograms ride as 4 + 4.
        (
            (arb_hist(), arb_hist(), arb_hist(), arb_hist()),
            (arb_hist(), arb_hist(), arb_hist(), arb_hist()),
        ),
        proptest::collection::btree_map(any::<u32>(), any::<u64>(), 0..16),
        proptest::collection::vec(arb_event(), 0..24),
    )
        .prop_map(|(counters, hists, silence_per_wire, events)| {
            let (
                (pessimism, residual, occupancy, fsync_strict),
                (fsync_buffered, persist, lag, promotion),
            ) = hists;
            ObsSnapshot {
                version: SNAPSHOT_VERSION,
                delivered: counters[0],
                silence_adverts: counters[1],
                probes: counters[2],
                replay_requests: counters[3],
                failovers: counters[4],
                recalibrations: counters[5],
                wal_syncs: counters[6],
                checkpoint_persists: counters[7],
                state_hashes_computed: counters[8],
                divergences_detected: counters[9],
                standby_applied: counters[10],
                standby_demotions: counters[11],
                warm_promotions: counters[12],
                cold_promotions: counters[13],
                events_dropped: counters[14],
                pessimism_wait_ns: pessimism,
                estimator_residual_ns: residual,
                wal_group_occupancy: occupancy,
                wal_fsync_strict_ns: fsync_strict,
                wal_fsync_buffered_ns: fsync_buffered,
                checkpoint_persist_ns: persist,
                standby_lag_ticks: lag,
                promotion_latency_ns: promotion,
                silence_per_wire,
                events,
            }
        })
}

proptest! {
    #[test]
    fn snapshot_codec_roundtrip_is_byte_identical(snap in arb_snapshot()) {
        let bytes = snap.to_bytes();
        let back = ObsSnapshot::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn snapshot_json_is_canonical_across_roundtrip(snap in arb_snapshot()) {
        let json = snap.to_json();
        let back = ObsSnapshot::from_bytes(&snap.to_bytes()).expect("decodes");
        prop_assert_eq!(back.to_json(), json, "JSON projection must survive the codec");
        // And the JSON itself must parse with the bundled parser.
        tart_obs::json::parse(&json).expect("report parses");
    }
}
