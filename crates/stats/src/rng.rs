//! Seed-stable deterministic random number generator.

use rand::RngCore;

/// A deterministic xoshiro256++ generator with SplitMix64 seeding.
///
/// The exact output stream for a given seed is part of this crate's public
/// contract: experiment harnesses and replay tests rely on bit-identical
/// randomness across runs and across releases. (The `rand` crate's own
/// `StdRng` explicitly reserves the right to change algorithms, which is why
/// TART carries its own generator; `rand::RngCore` is implemented for
/// interoperability.)
///
/// # Example
///
/// ```
/// use tart_stats::DetRng;
///
/// let mut a = DetRng::seed_from(7);
/// let mut b = DetRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        DetRng { s }
    }

    /// Produces the next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in the open interval `(0, 1]`, safe to pass to `ln()`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform integer in `[lo, hi]` (inclusive), rejection-sampled to
    /// avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Rejection zone to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated entity its own stream so adding one entity does not perturb
    /// another's randomness.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::seed_from(self.next_u64() ^ stream.wrapping_mul(0xa076_1d64_78bd_642f))
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_stable_contract() {
        // These exact values are part of the crate contract; if this test
        // fails, replay compatibility with recorded experiments is broken.
        let mut r = DetRng::seed_from(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(123);
        let mut b = DetRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let o = r.next_f64_open();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut r = DetRng::seed_from(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range_u64(1, 19);
            assert!((1..=19).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 19;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.gen_range_u64(5, 5), 5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = DetRng::seed_from(11);
        let n = 190_000;
        let mut counts = [0u32; 19];
        for _ in 0..n {
            counts[(r.gen_range_u64(1, 19) - 1) as usize] += 1;
        }
        let expect = n as f64 / 19.0;
        for c in counts {
            assert!(
                (f64::from(c) - expect).abs() < expect * 0.05,
                "count {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_inverted() {
        DetRng::seed_from(0).gen_range_u64(10, 9);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::seed_from(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        let mut r = DetRng::seed_from(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        assert!(r.try_fill_bytes(&mut buf).is_ok());
        let _ = r.next_u32();
    }
}
