//! Streaming summaries and histograms.

use std::fmt;

/// Streaming moments (Welford's algorithm): count, mean, variance, skewness,
/// extrema — without storing samples.
///
/// # Example
///
/// ```
/// use tart_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_sd() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (Bessel-corrected; 0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population standard deviation (divides by `n`).
    pub fn population_sd(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Sample skewness (0 when undefined).
    ///
    /// Positive values indicate a right-skewed distribution, as the paper
    /// reports for execution-time residuals (§II.H).
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        let m2 = self.m2 + other.m2 + delta * delta * n1 * n2 / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n;
        self.mean += delta * n2 / n;
        self.m2 = m2;
        self.m3 = m3;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.sd(),
            self.min,
            self.max
        )
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets,
/// plus exact percentile queries over retained samples.
///
/// # Example
///
/// ```
/// use tart_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// for v in 0..100 {
///     h.record(f64::from(v));
/// }
/// assert_eq!(h.bucket_count(0), 10); // [0,10)
/// assert_eq!(h.percentile(50.0), 50.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((v - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
        self.samples.push(v);
        self.sorted = false;
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Exact percentile (nearest-rank) over all recorded samples.
    ///
    /// # Panics
    ///
    /// Panics if no samples have been recorded or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty histogram");
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank]
    }

    /// Renders a compact ASCII bar chart, one line per bucket.
    pub fn render(&self) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let bar_len = (c * 40 / max) as usize;
            let lo = self.lo + width * i as f64;
            out.push_str(&format!(
                "{:>10.1}..{:<10.1} {:>8} {}\n",
                lo,
                lo + width,
                c,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_defined() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.population_sd(), 0.0);
        assert_eq!(s.skewness(), 0.0);
    }

    #[test]
    fn welford_matches_naive_computation() {
        let data = [61.0, 62.5, 59.8, 61.2, 63.0, 60.4, 61.9];
        let mut s = OnlineStats::new();
        for v in data {
            s.push(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 59.8);
        assert_eq!(s.max(), 63.0);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn skewness_sign_is_correct() {
        let mut right = OnlineStats::new();
        for v in [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 10.0] {
            right.push(v);
        }
        assert!(right.skewness() > 0.0);
        let mut left = OnlineStats::new();
        for v in [10.0, 10.0, 10.0, 10.0, 9.0, 9.0, 1.0] {
            left.push(v);
        }
        assert!(left.skewness() < 0.0);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let a_data = [1.0, 5.0, 9.0, 2.0];
        let b_data = [100.0, 50.0, 25.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut both = OnlineStats::new();
        for v in a_data {
            a.push(v);
            both.push(v);
        }
        for v in b_data {
            b.push(v);
            both.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert!((a.mean() - both.mean()).abs() < 1e-9);
        assert!((a.variance() - both.variance()).abs() < 1e-9);
        assert!((a.skewness() - both.skewness()).abs() < 1e-9);
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());

        // Merging into or from an empty accumulator is the identity.
        let mut empty = OnlineStats::new();
        empty.merge(&both);
        assert_eq!(empty.count(), both.count());
        both.merge(&OnlineStats::new());
        assert_eq!(both.count(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        assert!(format!("{s}").contains("n=1"));
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 11.0] {
            h.record(v);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket_count(0), 2); // 0.0 and 1.9
        assert_eq!(h.bucket_count(1), 1); // 2.0
        assert_eq!(h.bucket_count(4), 1); // 9.9
        assert_eq!(h.total(), 7);
        assert_eq!(h.num_buckets(), 5);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert!((h.percentile(50.0) - 50.0).abs() <= 1.0);
        assert!((h.percentile(99.0) - 99.0).abs() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn percentile_of_empty_panics() {
        Histogram::new(0.0, 1.0, 1).percentile(50.0);
    }

    #[test]
    fn render_produces_one_line_per_bucket() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(1.0);
        h.record(1.5);
        h.record(3.0);
        let s = h.render();
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }
}
