//! Statistics substrate for the TART reproduction.
//!
//! Everything in TART that looks random must actually be *reproducible*:
//! simulation studies are re-run with identical seeds, and estimator
//! calibration must fit identical coefficients on identical samples. This
//! crate provides:
//!
//! * [`DetRng`] — a seed-stable xoshiro256++ generator whose stream is
//!   guaranteed never to change between versions of this workspace (unlike
//!   `rand::rngs::StdRng`, which documents no such stability);
//! * distributions ([`Normal`], [`Exponential`], [`LogNormal`], [`Uniform`],
//!   [`Empirical`]) and a [`PoissonProcess`] arrival generator, as used by
//!   the paper's simulation studies (§III.A, §III.B);
//! * [`regression`] — least-squares fits including the through-origin fit
//!   the paper uses for its estimator (τ = 61.827·ξ₁, R² = 0.9154, Fig 2);
//! * [`OnlineStats`] / [`Histogram`] — streaming summaries for the
//!   measurement harnesses.
//!
//! # Example
//!
//! ```
//! use tart_stats::{DetRng, Normal, Sample};
//!
//! let mut rng = DetRng::seed_from(42);
//! let jitter = Normal::new(1.0, 0.1);
//! let a: Vec<f64> = (0..3).map(|_| jitter.sample(&mut rng)).collect();
//! let mut rng2 = DetRng::seed_from(42);
//! let b: Vec<f64> = (0..3).map(|_| jitter.sample(&mut rng2)).collect();
//! assert_eq!(a, b); // same seed, same stream — always
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
pub mod regression;
mod rng;
mod summary;

pub use dist::{
    Empirical, Exponential, LogNormal, Normal, PoissonProcess, Sample, Uniform, UniformInt,
};
pub use regression::{fit_multiple, fit_simple, fit_through_origin, Fit, MultiFit, MultiFitError};
pub use rng::DetRng;
pub use summary::{Histogram, OnlineStats};
