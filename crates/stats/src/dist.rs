//! Sampling distributions used by the simulation studies.

use crate::DetRng;

/// A distribution from which `f64` samples can be drawn.
pub trait Sample {
    /// Draws one sample using `rng`.
    fn sample(&self, rng: &mut DetRng) -> f64;
}

/// Continuous uniform distribution over `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// Discrete uniform distribution over the inclusive integer range `[lo, hi]`.
///
/// This is the paper's sentence-length workload: "random numbers of
/// iterations between 1 and 19" with mean 10 (§II.H, §III.A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformInt {
    lo: u64,
    hi: u64,
}

impl UniformInt {
    /// Creates a discrete uniform distribution over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "invalid integer range [{lo}, {hi}]");
        UniformInt { lo, hi }
    }

    /// Draws one integer sample.
    pub fn sample_int(&self, rng: &mut DetRng) -> u64 {
        rng.gen_range_u64(self.lo, self.hi)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }
}

impl Sample for UniformInt {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.sample_int(rng) as f64
    }
}

/// Normal (Gaussian) distribution, sampled with the Marsaglia polar method.
///
/// §III.A models per-tick execution jitter as "a normal distribution with
/// mean of one tick and a standard deviation of 0.1 ticks".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative or either parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            mean.is_finite() && sd.is_finite() && sd >= 0.0,
            "invalid normal parameters ({mean}, {sd})"
        );
        Normal { mean, sd }
    }

    /// Draws one standard-normal variate.
    fn standard(rng: &mut DetRng) -> f64 {
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.mean + self.sd * Normal::standard(rng)
    }
}

/// Exponential distribution with the given mean (`1/λ`).
///
/// Inter-arrival times of a Poisson process are exponential; the paper's
/// external clients "fed messages … via a Poisson process with average
/// inter-arrival time of 1 msg/1000 µs" (§III.A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "invalid exponential mean {mean}"
        );
        Exponential { mean }
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        -self.mean * rng.next_f64_open().ln()
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
///
/// Used to synthesize the *right-skewed* execution-time residuals the paper
/// observes on real hardware ("the distribution of the residuals is highly
/// right-skewed", §II.H) for hosts where a measured corpus is unavailable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid log-normal parameters ({mu}, {sigma})"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with a target mean and standard deviation of the
    /// log-normal variate itself (moment matching).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `sd >= 0`.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Self {
        assert!(
            mean > 0.0 && sd >= 0.0,
            "invalid log-normal moments ({mean}, {sd})"
        );
        let cv2 = (sd / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

/// An empirical distribution that resamples from measured values.
///
/// §III.B: "we took measurements of an actual run … We imported 10000 of
/// these execution time measurements into our simulation", then drew "a
/// random measurement from our imported set having the same iteration
/// count". [`Empirical`] is that imported set for one iteration count.
#[derive(Clone, Debug, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from measured samples.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            !values.is_empty(),
            "empirical distribution needs at least one sample"
        );
        Empirical { values }
    }

    /// Number of stored measurements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no measurements are stored (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let idx = rng.gen_range_u64(0, self.values.len() as u64 - 1) as usize;
        self.values[idx]
    }
}

/// A Poisson arrival process: a stream of event times with exponential
/// inter-arrival gaps.
///
/// # Example
///
/// ```
/// use tart_stats::{DetRng, PoissonProcess};
///
/// let mut rng = DetRng::seed_from(1);
/// let mut arrivals = PoissonProcess::new(1000.0); // mean gap 1000 µs
/// let t1 = arrivals.next_arrival(&mut rng);
/// let t2 = arrivals.next_arrival(&mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PoissonProcess {
    gap: Exponential,
    now: f64,
}

impl PoissonProcess {
    /// Creates a process with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival` is not positive and finite.
    pub fn new(mean_interarrival: f64) -> Self {
        PoissonProcess {
            gap: Exponential::new(mean_interarrival),
            now: 0.0,
        }
    }

    /// Advances to and returns the next arrival time.
    pub fn next_arrival(&mut self, rng: &mut DetRng) -> f64 {
        self.now += self.gap.sample(rng);
        self.now
    }

    /// The time of the most recent arrival (0 before the first).
    pub fn current_time(&self) -> f64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnlineStats;

    fn stats_of(dist: &impl Sample, n: usize, seed: u64) -> OnlineStats {
        let mut rng = DetRng::seed_from(seed);
        let mut s = OnlineStats::new();
        for _ in 0..n {
            s.push(dist.sample(&mut rng));
        }
        s
    }

    #[test]
    fn uniform_moments() {
        let s = stats_of(&Uniform::new(0.0, 10.0), 100_000, 1);
        assert!((s.mean() - 5.0).abs() < 0.05);
        assert!((s.sd() - (100.0f64 / 12.0).sqrt()).abs() < 0.05);
    }

    #[test]
    fn uniform_int_matches_paper_workload() {
        let d = UniformInt::new(1, 19);
        assert_eq!(d.mean(), 10.0);
        let s = stats_of(&d, 100_000, 2);
        assert!((s.mean() - 10.0).abs() < 0.05);
        // SD of discrete uniform over 1..=19: sqrt((19^2-1)/12) ≈ 5.477.
        assert!((s.sd() - 5.477).abs() < 0.05);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(1.0, 0.1); // §III.A jitter model
        let s = stats_of(&d, 200_000, 3);
        assert!((s.mean() - 1.0).abs() < 0.002);
        assert!((s.sd() - 0.1).abs() < 0.002);
        assert!(
            s.skewness().abs() < 0.05,
            "normal is symmetric, got {}",
            s.skewness()
        );
    }

    #[test]
    fn normal_with_zero_sd_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut rng = DetRng::seed_from(4);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(1000.0);
        let s = stats_of(&d, 200_000, 5);
        assert!((s.mean() - 1000.0).abs() < 10.0);
        assert!((s.sd() - 1000.0).abs() < 15.0);
        assert!(s.min() > 0.0);
    }

    #[test]
    fn lognormal_is_right_skewed() {
        let d = LogNormal::from_mean_sd(100.0, 40.0);
        let s = stats_of(&d, 200_000, 6);
        assert!((s.mean() - 100.0).abs() < 1.0);
        assert!((s.sd() - 40.0).abs() < 1.5);
        assert!(
            s.skewness() > 0.5,
            "log-normal must be right-skewed, got {}",
            s.skewness()
        );
        assert!(s.min() > 0.0);
    }

    #[test]
    fn empirical_resamples_only_measured_values() {
        let d = Empirical::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        let mut rng = DetRng::seed_from(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!([10.0, 20.0, 30.0].contains(&v));
            seen.insert(v as u64);
        }
        assert_eq!(seen.len(), 3, "all values eventually drawn");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empirical_rejects_empty() {
        let _ = Empirical::new(vec![]);
    }

    #[test]
    fn poisson_process_is_monotonic_with_correct_rate() {
        let mut rng = DetRng::seed_from(8);
        let mut p = PoissonProcess::new(1000.0);
        assert_eq!(p.current_time(), 0.0);
        let mut last = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let t = p.next_arrival(&mut rng);
            assert!(t > last);
            last = t;
        }
        let observed_mean_gap = last / n as f64;
        assert!((observed_mean_gap - 1000.0).abs() < 15.0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_inverted() {
        let _ = Uniform::new(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid normal parameters")]
    fn normal_rejects_negative_sd() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "invalid exponential mean")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::new(0.0);
    }
}
