//! Least-squares regression for estimator calibration.
//!
//! The paper calibrates compute-time estimators by fitting
//! τ = β₀ + β₁ξ₁ + β₂ξ₂ (Eq. 1) over measured samples, and in practice fits
//! the single through-origin coefficient τ = 61.827·ξ₁ µs with R² = 0.9154
//! (Eq. 2 / Fig 2). This module provides both fits plus the residual
//! diagnostics the paper reports (right-skew, residual–regressor
//! correlation).

use crate::OnlineStats;

/// The result of a least-squares fit.
#[derive(Clone, Debug, PartialEq)]
pub struct Fit {
    /// Intercept β₀ (zero for through-origin fits).
    pub intercept: f64,
    /// Slope β₁.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Summary statistics of the residuals (y − ŷ).
    pub residuals: OnlineStats,
    /// Pearson correlation between the regressor and the residuals.
    ///
    /// Near zero indicates a good linear fit ("close to zero correlation
    /// between the number of iterations and the residuals", §II.H).
    pub residual_correlation: f64,
}

impl Fit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = β·x` (no intercept) by least squares, as the paper does for
/// Code Body 1 where "the conditional and send statement contributed so
/// little … we fitted only the single coefficient" (§II.H).
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `x` is all zeros.
///
/// # Example
///
/// ```
/// use tart_stats::fit_through_origin;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [62.0, 123.0, 186.0, 247.0];
/// let fit = fit_through_origin(&x, &y);
/// assert!((fit.slope - 61.8).abs() < 0.5);
/// assert!(fit.r_squared > 0.99);
/// ```
pub fn fit_through_origin(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len(), "regressor and response lengths differ");
    assert!(!x.is_empty(), "regression needs at least one sample");
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    assert!(sxx > 0.0, "regressor is identically zero");
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let slope = sxy / sxx;
    finish_fit(0.0, slope, x, y)
}

/// Fits `y = β₀ + β₁·x` by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two samples, or
/// `x` has zero variance.
pub fn fit_simple(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len(), "regressor and response lengths differ");
    assert!(x.len() >= 2, "simple regression needs at least two samples");
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n; // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
    let mean_y = y.iter().sum::<f64>() / n; // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
    let sxx: f64 = x.iter().map(|v| (v - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "regressor has zero variance");
    let sxy: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - mean_x) * (b - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    finish_fit(intercept, slope, x, y)
}

fn finish_fit(intercept: f64, slope: f64, x: &[f64], y: &[f64]) -> Fit {
    let n = x.len() as f64;
    let mean_y = y.iter().sum::<f64>() / n; // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut residuals = OnlineStats::new();
    let mut resid_vec = Vec::with_capacity(x.len());
    for (&xi, &yi) in x.iter().zip(y) {
        let r = yi - (intercept + slope * xi);
        ss_res += r * r;
        ss_tot += (yi - mean_y).powi(2);
        residuals.push(r);
        resid_vec.push(r);
    }
    let r_squared = if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit {
        intercept,
        slope,
        r_squared,
        residuals,
        residual_correlation: pearson(x, &resid_vec),
    }
}

/// Pearson correlation coefficient between two equal-length samples
/// (0 when either has zero variance).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation inputs differ in length");
    assert!(!x.is_empty(), "correlation of empty samples");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n; // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
    let my = y.iter().sum::<f64>() / n; // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetRng, LogNormal, Sample, UniformInt};

    #[test]
    fn exact_line_through_origin() {
        let x = [1.0, 2.0, 3.0];
        let y = [61.0, 122.0, 183.0];
        let fit = fit_through_origin(&x, &y);
        assert!((fit.slope - 61.0).abs() < 1e-12);
        assert_eq!(fit.intercept, 0.0);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.residuals.sd() < 1e-9);
        assert!((fit.predict(10.0) - 610.0).abs() < 1e-9);
    }

    #[test]
    fn exact_affine_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        let fit = fit_simple(&x, &y);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_shaped_fit_recovers_coefficient() {
        // Synthesize Fig 2: iterations uniform 1..=19, service time
        // right-skewed around 61.827 µs/iteration. The through-origin fit
        // should recover the coefficient and a high (but not perfect) R².
        let mut rng = DetRng::seed_from(2009);
        let iters = UniformInt::new(1, 19);
        // Multiplicative right-skewed noise with mean 1.
        let noise = LogNormal::from_mean_sd(1.0, 0.18);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..10_000 {
            let k = iters.sample(&mut rng);
            x.push(k);
            y.push(61.827 * k * noise.sample(&mut rng));
        }
        let fit = fit_through_origin(&x, &y);
        assert!((fit.slope - 61.827).abs() < 1.0, "slope {}", fit.slope);
        assert!(
            fit.r_squared > 0.80 && fit.r_squared < 0.99,
            "R² {}",
            fit.r_squared
        );
        assert!(fit.residuals.skewness() > 0.5, "residuals right-skewed");
    }

    #[test]
    fn noisy_fit_has_near_zero_residual_correlation() {
        let mut rng = DetRng::seed_from(77);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..2000 {
            let xi = f64::from(i % 20) + 1.0;
            x.push(xi);
            y.push(3.0 * xi + 10.0 * (rng.next_f64() - 0.5));
        }
        let fit = fit_simple(&x, &y);
        assert!(fit.residual_correlation.abs() < 0.05);
    }

    #[test]
    fn r_squared_degrades_with_noise() {
        let mut rng = DetRng::seed_from(3);
        let gen_fit = |noise_scale: f64, rng: &mut DetRng| {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for i in 0..1000 {
                let xi = f64::from(i % 10) + 1.0;
                x.push(xi);
                y.push(5.0 * xi + noise_scale * (rng.next_f64() - 0.5));
            }
            fit_through_origin(&x, &y).r_squared
        };
        let clean = gen_fit(0.1, &mut rng);
        let noisy = gen_fit(20.0, &mut rng);
        assert!(clean > noisy);
    }

    #[test]
    fn constant_response_r_squared() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 4.0, 4.0];
        // Through-origin fit of a constant is imperfect; ss_tot is zero so
        // the convention returns 0 for an imperfect fit.
        let fit = fit_through_origin(&x, &y);
        assert_eq!(fit.r_squared, 0.0);
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = fit_through_origin(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "identically zero")]
    fn all_zero_regressor_panics() {
        let _ = fit_through_origin(&[0.0, 0.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn simple_fit_needs_two_points() {
        let _ = fit_simple(&[1.0], &[1.0]);
    }
}

/// The result of a multiple-regression fit `y = β₀ + Σᵢ βᵢ·xᵢ`.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiFit {
    /// Intercept β₀.
    pub intercept: f64,
    /// Per-regressor coefficients, in input column order.
    pub slopes: Vec<f64>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Summary statistics of the residuals.
    pub residuals: OnlineStats,
}

impl MultiFit {
    /// Predicted value for one row of regressors.
    ///
    /// # Panics
    ///
    /// Panics if `xs` has a different length than the fitted columns.
    pub fn predict(&self, xs: &[f64]) -> f64 {
        assert_eq!(xs.len(), self.slopes.len(), "regressor count mismatch");
        // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
        self.intercept + self.slopes.iter().zip(xs).map(|(b, x)| b * x).sum::<f64>()
    }
}

/// Errors from [`fit_multiple`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiFitError {
    /// Fewer samples than coefficients to estimate.
    TooFewSamples,
    /// The normal-equation system is singular (collinear or constant
    /// regressors).
    Singular,
}

impl std::fmt::Display for MultiFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiFitError::TooFewSamples => write!(f, "not enough samples for the regressor count"),
            MultiFitError::Singular => write!(f, "regressors are collinear or constant"),
        }
    }
}

impl std::error::Error for MultiFitError {}

/// Ordinary least squares for the paper's full Eq. 1 form
/// `τ = β₀ + β₁ξ₁ + … + βₖξₖ`, solved by the normal equations with
/// Gaussian elimination and partial pivoting.
///
/// `rows` holds one regressor vector per sample (all the same length `k`);
/// `y` holds the responses.
///
/// # Errors
///
/// * [`MultiFitError::TooFewSamples`] with fewer than `k + 1` samples;
/// * [`MultiFitError::Singular`] if regressors are collinear.
///
/// # Panics
///
/// Panics if row lengths are inconsistent or `rows` and `y` differ in
/// length.
///
/// # Example
///
/// ```
/// use tart_stats::regression::fit_multiple;
///
/// // y = 5 + 2·x₁ + 3·x₂ exactly.
/// let rows = vec![
///     vec![1.0, 1.0],
///     vec![2.0, 1.0],
///     vec![1.0, 2.0],
///     vec![3.0, 5.0],
/// ];
/// let y = vec![10.0, 12.0, 13.0, 26.0];
/// let fit = fit_multiple(&rows, &y)?;
/// assert!((fit.intercept - 5.0).abs() < 1e-9);
/// assert!((fit.slopes[0] - 2.0).abs() < 1e-9);
/// assert!((fit.slopes[1] - 3.0).abs() < 1e-9);
/// # Ok::<(), tart_stats::regression::MultiFitError>(())
/// ```
#[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
pub fn fit_multiple(rows: &[Vec<f64>], y: &[f64]) -> Result<MultiFit, MultiFitError> {
    assert_eq!(rows.len(), y.len(), "row and response counts differ");
    let n = rows.len();
    let k = rows.first().map_or(0, Vec::len);
    for r in rows {
        assert_eq!(r.len(), k, "inconsistent regressor row length");
    }
    let p = k + 1; // + intercept column
    if n < p {
        return Err(MultiFitError::TooFewSamples);
    }
    // Normal equations: (XᵀX) β = Xᵀy with X = [1 | rows].
    let mut xtx = vec![vec![0.0f64; p]; p];
    let mut xty = vec![0.0f64; p];
    let x_at = |row: usize, col: usize| -> f64 {
        if col == 0 {
            1.0
        } else {
            rows[row][col - 1]
        }
    };
    for row in 0..n {
        for i in 0..p {
            xty[i] += x_at(row, i) * y[row];
            for j in 0..p {
                xtx[i][j] += x_at(row, i) * x_at(row, j);
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut a = xtx;
    let mut b = xty;
    for col in 0..p {
        let pivot = (col..p)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if a[pivot][col].abs() < 1e-10 {
            return Err(MultiFitError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in 0..p {
            if row == col {
                continue;
            }
            let factor = a[row][col] / a[col][col];
            for j in col..p {
                a[row][j] -= factor * a[col][j];
            }
            b[row] -= factor * b[col];
        }
    }
    let beta: Vec<f64> = (0..p).map(|i| b[i] / a[i][i]).collect();

    // Diagnostics.
    let mean_y = y.iter().sum::<f64>() / n as f64; // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut residuals = OnlineStats::new();
    for row in 0..n {
        let pred = beta[0]
            + rows[row]
                .iter()
                .zip(&beta[1..])
                .map(|(x, b)| x * b)
                .sum::<f64>(); // tart-lint: allow(FLOAT-ACCUM) -- input is a slice; summation order is fixed by construction
        let r = y[row] - pred;
        ss_res += r * r;
        ss_tot += (y[row] - mean_y).powi(2);
        residuals.push(r);
    }
    let r_squared = if ss_tot == 0.0 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(MultiFit {
        intercept: beta[0],
        slopes: beta[1..].to_vec(),
        r_squared,
        residuals,
    })
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use crate::{DetRng, Sample, UniformInt};

    #[test]
    fn exact_plane_recovered() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i % 5), f64::from(i % 7)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 4.0 + 2.5 * r[0] - 1.5 * r[1]).collect();
        let fit = fit_multiple(&rows, &y).unwrap();
        assert!((fit.intercept - 4.0).abs() < 1e-8);
        assert!((fit.slopes[0] - 2.5).abs() < 1e-8);
        assert!((fit.slopes[1] + 1.5).abs() < 1e-8);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(&[2.0, 3.0]) - (4.0 + 5.0 - 4.5)).abs() < 1e-8);
    }

    #[test]
    fn eq1_shape_two_blocks() {
        // The paper's Eq. 1: τ = β₀ + β₁ξ₁ + β₂ξ₂ with noise — ξ₁ the loop
        // count, ξ₂ the conditional count.
        let mut rng = DetRng::seed_from(11);
        let loops = UniformInt::new(1, 19);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..2_000 {
            let x1 = loops.sample(&mut rng);
            let x2 = (x1 * rng.next_f64()).floor();
            let noise = (rng.next_f64() - 0.5) * 2_000.0;
            rows.push(vec![x1, x2]);
            y.push(500.0 + 61_000.0 * x1 + 2_000.0 * x2 + noise);
        }
        let fit = fit_multiple(&rows, &y).unwrap();
        assert!(
            (fit.slopes[0] - 61_000.0).abs() < 200.0,
            "β₁ {}",
            fit.slopes[0]
        );
        assert!(
            (fit.slopes[1] - 2_000.0).abs() < 200.0,
            "β₂ {}",
            fit.slopes[1]
        );
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn singular_and_underdetermined_rejected() {
        // Collinear: x₂ = 2·x₁.
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![f64::from(i), f64::from(2 * i)])
            .collect();
        let y: Vec<f64> = (0..10).map(f64::from).collect();
        assert_eq!(
            fit_multiple(&rows, &y).unwrap_err(),
            MultiFitError::Singular
        );
        // Underdetermined: 2 samples, 2 regressors + intercept.
        let rows = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let y = vec![1.0, 2.0];
        assert_eq!(
            fit_multiple(&rows, &y).unwrap_err(),
            MultiFitError::TooFewSamples
        );
    }

    #[test]
    fn zero_regressors_fits_the_mean() {
        let rows = vec![vec![], vec![], vec![]];
        let y = vec![2.0, 4.0, 6.0];
        let fit = fit_multiple(&rows, &y).unwrap();
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert!(fit.slopes.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(!MultiFitError::TooFewSamples.to_string().is_empty());
        assert!(!MultiFitError::Singular.to_string().is_empty());
    }
}
