//! Concurrency discipline: two rules encoding lessons this codebase
//! already paid for.
//!
//! **LOCK-ACROSS-SEND** (Deterministic tier): a `let`-bound mutex guard
//! held live across a send or blocking-I/O call. In the replayable core,
//! delivery order *is* the logged order — blocking inside a critical
//! section can invert it under contention (and invites lock-ordering
//! deadlocks with the router's own internals). The tracker is lexical:
//! `let g = x.lock()…;` starts liveness, `drop(g)` or the end of the
//! binding's block ends it, and temporaries (`x.lock().field += 1;`)
//! never start it — they die at the statement's semicolon.
//!
//! **SEQLOCK-MISUSE** (everywhere): PR 5 fixed torn `LinkHealth` reads by
//! bracketing related writes in `LinkState::update()` groups; PR 8 makes
//! the bracket a rule. Any struct with a `seq: Atomic*` field is treated
//! as a seqlock; atomic writes (`store` / `fetch_*` / `swap` / CAS) to its
//! fields in the defining file are only legal inside the `update` method
//! itself or lexically inside an `update(…)` call's argument list. A bare
//! `state.connected.store(…)` outside a group is exactly the torn-read
//! bug coming back.

use crate::lexer::{Token, TokenKind};
use crate::manifest::Tier;
use crate::rules::{PassHit, RuleId};
use crate::symbols::{FileUnit, SymbolGraph};

/// Calls that move data out of the component (or block on I/O). Holding a
/// lock across any of these in deterministic code is the hazard.
const SEND_NAMES: &[&str] = &[
    "send",
    "try_send",
    "send_timeout",
    "broadcast",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
];

/// Atomic mutating methods that constitute a seqlock "write".
const ATOMIC_WRITES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Runs both concurrency rules over the workspace.
pub fn concurrency_pass(units: &[FileUnit], graph: &SymbolGraph) -> Vec<PassHit> {
    let mut out = Vec::new();
    for unit in units {
        if unit.tier == Tier::Deterministic {
            lock_across_send(unit, &mut out);
        }
        seqlock_misuse(unit, graph, &mut out);
    }
    out
}

/// One live `let`-bound guard.
struct Guard {
    name: String,
    /// Brace depth at the `let`; the guard dies when depth drops below it.
    depth: usize,
    line: u32,
}

fn lock_across_send(unit: &FileUnit, out: &mut Vec<PassHit>) {
    let toks = &unit.lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                i += 1;
            }
            TokenKind::Ident(s) if s == "let" => {
                let (next, bound) = parse_let(toks, i, depth);
                if let Some(g) = bound {
                    guards.retain(|held| held.name != g.name); // shadowing rebinds
                    guards.push(g);
                }
                i = next;
            }
            TokenKind::Ident(s) if s == "drop" => {
                // `drop(name)` explicitly ends a guard's liveness.
                if toks
                    .get(i + 1)
                    .map(|t| t.kind.is_punct('('))
                    .unwrap_or(false)
                {
                    if let Some(name) = toks.get(i + 2).and_then(|t| t.kind.as_ident()) {
                        if toks
                            .get(i + 3)
                            .map(|t| t.kind.is_punct(')'))
                            .unwrap_or(false)
                        {
                            guards.retain(|g| g.name != name);
                        }
                    }
                }
                i += 1;
            }
            TokenKind::Ident(s)
                if SEND_NAMES.contains(&s.as_str())
                    && toks
                        .get(i + 1)
                        .map(|t| t.kind.is_punct('('))
                        .unwrap_or(false)
                    && !guards.is_empty()
                    && !unit.is_test_line(toks[i].line) =>
            {
                let g = guards.last().unwrap();
                out.push(PassHit {
                    file: unit.rel.clone(),
                    line: toks[i].line,
                    rule: RuleId::LockAcrossSend,
                    message: format!(
                        "`{}()` called while mutex guard `{}` (bound at line {}) \
                         is live: blocking or sending inside a critical section \
                         can invert delivery order under contention. Drop the \
                         guard first (`drop({})`) or narrow its scope.",
                        s, g.name, g.line, g.name
                    ),
                    path: Vec::new(),
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parses a `let` statement starting at `i`. Returns the index to resume
/// at (just past the `let` keyword — the statement body is re-scanned by
/// the main loop so nested sends/braces are still seen) and, if the
/// statement binds the result of a `.lock()` / `.try_lock()` call to a
/// simple identifier, the resulting guard.
fn parse_let(toks: &[Token], i: usize, depth: usize) -> (usize, Option<Guard>) {
    let mut j = i + 1;
    if toks.get(j).and_then(|t| t.kind.as_ident()) == Some("mut") {
        j += 1;
    }
    let Some(name) = toks.get(j).and_then(|t| t.kind.as_ident()) else {
        return (i + 1, None); // destructuring patterns: not a guard binding
    };
    let name = name.to_string();
    if name == "_" {
        return (i + 1, None);
    }
    // Only a plain binding (`let g = …`, optionally `let g: T = …`) can
    // name a guard. `let Some(x) = …` / `if let` patterns bind through a
    // constructor and are skipped — treating `Some` as a guard name made
    // the pass scan past the pattern into unrelated statements.
    let mut j = j + 1;
    if toks.get(j).map(|t| t.kind.is_punct(':')).unwrap_or(false)
        && toks
            .get(j + 1)
            .map(|t| t.kind.is_punct(':'))
            .unwrap_or(false)
    {
        return (i + 1, None); // `let Enum::Variant(..) = …` — a pattern
    }
    if toks.get(j).map(|t| t.kind.is_punct(':')).unwrap_or(false) {
        let mut angle = 0i32;
        loop {
            j += 1;
            match toks.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct('<')) => angle += 1,
                Some(TokenKind::Punct('>')) => angle -= 1,
                Some(TokenKind::Punct('=')) if angle <= 0 => break,
                Some(TokenKind::Punct(';')) | None => return (j, None),
                _ => {}
            }
        }
    }
    if !toks.get(j).map(|t| t.kind.is_punct('=')).unwrap_or(false) {
        return (i + 1, None);
    }
    // Scan the initializer to the statement's terminating `;` (at zero
    // relative bracket depth), looking for `lock(` / `try_lock(`.
    let mut k = j + 1;
    let mut rel = 0i32;
    let mut has_lock = false;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => rel += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                if rel == 0 {
                    break; // malformed / end of enclosing block
                }
                rel -= 1;
            }
            TokenKind::Punct(';') if rel == 0 => break,
            TokenKind::Ident(s)
                if (s == "lock" || s == "try_lock")
                    && toks
                        .get(k + 1)
                        .map(|t| t.kind.is_punct('('))
                        .unwrap_or(false) =>
            {
                has_lock = true;
            }
            _ => {}
        }
        k += 1;
    }
    let guard = has_lock.then(|| Guard {
        name,
        depth,
        line: toks[i].line,
    });
    (i + 1, guard)
}

fn seqlock_misuse(unit: &FileUnit, graph: &SymbolGraph, out: &mut Vec<PassHit>) {
    // Seqlock structs defined in this file: a `seq: Atomic*` field marks
    // the discipline; every atomic field of such a struct is protected.
    let mut protected: Vec<(&str, &str)> = Vec::new(); // (field, struct)
    for s in graph.structs.iter().filter(|s| s.file == unit.rel) {
        let atomic = |t: &[String]| t.first().is_some_and(|t| t.starts_with("Atomic"));
        let is_seqlock = s.fields.iter().any(|(n, t)| n == "seq" && atomic(t));
        if is_seqlock {
            for (n, t) in &s.fields {
                if atomic(t) {
                    protected.push((n, &s.name));
                }
            }
        }
    }
    if protected.is_empty() {
        return;
    }

    let toks = &unit.lexed.tokens;
    // Paren-depth tracking plus a stack of depths at which an `update(`
    // call opened; writes inside any such span are bracketed.
    let mut paren = 0usize;
    let mut update_spans: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => {
                paren = paren.saturating_sub(1);
                while update_spans.last().map(|d| *d >= paren).unwrap_or(false) {
                    update_spans.pop();
                }
            }
            TokenKind::Ident(s)
                if s == "update"
                    && toks
                        .get(i + 1)
                        .map(|t| t.kind.is_punct('('))
                        .unwrap_or(false) =>
            {
                update_spans.push(paren);
            }
            TokenKind::Ident(field) => {
                // Pattern: `. field . WRITE (`
                let hit = i > 0
                    && toks[i - 1].kind.is_punct('.')
                    && toks
                        .get(i + 1)
                        .map(|t| t.kind.is_punct('.'))
                        .unwrap_or(false)
                    && toks
                        .get(i + 2)
                        .and_then(|t| t.kind.as_ident())
                        .map(|m| ATOMIC_WRITES.contains(&m))
                        .unwrap_or(false)
                    && toks
                        .get(i + 3)
                        .map(|t| t.kind.is_punct('('))
                        .unwrap_or(false);
                if hit {
                    if let Some((_, owner)) = protected.iter().find(|(n, _)| n == field) {
                        let line = toks[i].line;
                        let in_update_method = graph
                            .fn_at(&unit.rel, line)
                            .map(|f| graph.fns[f].name == "update")
                            .unwrap_or(false);
                        if update_spans.is_empty() && !in_update_method && !unit.is_test_line(line)
                        {
                            out.push(PassHit {
                                file: unit.rel.clone(),
                                line,
                                rule: RuleId::SeqlockMisuse,
                                message: format!(
                                    "write to seqlock-guarded field `{field}` of \
                                     `{owner}` outside an `update()` group: a \
                                     concurrent snapshot can tear. Wrap the write \
                                     in `update(|s| …)`."
                                ),
                                path: Vec::new(),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::test_ranges;
    use crate::lexer::lex;
    use crate::manifest::tier_for;

    fn run(files: &[(&str, &str)]) -> Vec<PassHit> {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let excluded = test_ranges(&lexed.tokens);
                FileUnit {
                    rel: rel.to_string(),
                    tier: tier_for(rel),
                    lexed,
                    excluded,
                }
            })
            .collect();
        let graph = SymbolGraph::build(&units);
        concurrency_pass(&units, &graph)
    }

    #[test]
    fn send_under_live_guard_fires_in_det_tier() {
        let hits = run(&[(
            "crates/engine/src/core.rs",
            "fn f(&self) {\n    let m = self.metrics.lock();\n    self.router.send(1);\n}\n",
        )]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RuleId::LockAcrossSend);
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn dropped_guard_before_send_is_clean() {
        let hits = run(&[(
            "crates/engine/src/core.rs",
            "fn f(&self) {\n    let mut m = self.metrics.lock();\n    m.x += 1;\n    drop(m);\n    self.router.send(1);\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn scoped_guard_is_clean_and_temporaries_never_bind() {
        let hits = run(&[(
            "crates/engine/src/core.rs",
            "fn f(&self) {\n    { let m = self.metrics.lock(); let _ = m; }\n    self.metrics.lock().x += 1;\n    self.router.send(1);\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn ops_tier_is_exempt_from_lock_across_send() {
        let hits = run(&[(
            "crates/engine/src/net.rs",
            "fn f(&self) {\n    let m = self.state.lock();\n    tx.send(1);\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    const SEQLOCK: &str = "struct LinkState { seq: AtomicU64, connected: AtomicBool, epoch: AtomicU64 }\n\
         impl LinkState {\n    fn update(&self, g: impl FnOnce(&Self)) {\n        self.seq.fetch_add(1, O);\n        g(self);\n        self.seq.fetch_add(1, O);\n    }\n}\n";

    #[test]
    fn bare_store_outside_update_fires() {
        let hits = run(&[(
            "crates/engine/src/net.rs",
            &format!(
                "{SEQLOCK}fn init(state: &LinkState) {{\n    state.connected.store(true, O);\n}}\n"
            ),
        )]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RuleId::SeqlockMisuse);
        assert!(hits[0].message.contains("connected"));
    }

    #[test]
    fn writes_inside_update_group_or_method_are_clean() {
        let hits = run(&[(
            "crates/engine/src/net.rs",
            &format!(
                "{SEQLOCK}fn reconnect(state: &LinkState) {{\n    state.update(|st| {{\n        st.connected.store(true, O);\n        st.epoch.fetch_add(1, O);\n    }});\n}}\n"
            ),
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unrelated_atomics_in_same_file_are_fine() {
        let hits = run(&[(
            "crates/engine/src/net.rs",
            &format!("{SEQLOCK}fn halt(stop: &AtomicBool) {{\n    stop.store(true, O);\n}}\n"),
        )]);
        // `stop` is not a LinkState field; and the bare `stop.store` has no
        // leading `.` receiver-field shape.
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn loads_are_not_writes() {
        let hits = run(&[(
            "crates/engine/src/net.rs",
            &format!(
                "{SEQLOCK}fn read(state: &LinkState) -> bool {{\n    state.connected.load(O)\n}}\n"
            ),
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
