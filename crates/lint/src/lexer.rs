//! A small, string- and comment-aware Rust lexer.
//!
//! The auditor's rules match on *code* tokens only. Getting that right is
//! the whole game: `"Instant::now"` inside a doc comment, a test-fixture
//! string, or a `r#"raw string"#` must never fire a diagnostic. This lexer
//! is not a full Rust grammar — it only needs to classify characters into
//! code, comments, and literals, and to hand rules a token stream with line
//! numbers.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw (and byte/raw-byte) strings with any
//! `#` count, char literals vs. lifetimes, and numeric literals (kept as
//! tokens so float-accumulation heuristics can see them).

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub kind: TokenKind,
}

/// Classified token payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Instant`, `unsafe`, `fold`, ...).
    Ident(String),
    /// A single punctuation character (`:`, `{`, `#`, ...).
    Punct(char),
    /// Numeric literal, verbatim (`1_000u64`, `0.5`, `1e-9`).
    Num(String),
    /// A lifetime (`'a`); kept distinct so it is never confused with code.
    Lifetime(String),
}

/// A line comment's text (leading `//` stripped) with its 1-based line.
/// Used to parse `tart-lint: allow(...)` directives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommentLine {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the code-token stream plus every line comment.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<CommentLine>,
}

/// Tokenizes `src`, discarding string/char literal *contents* and comments
/// from the token stream (comments are returned separately for directive
/// parsing).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == b'\n' {
                line += 1;
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments).
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(CommentLine {
                    line,
                    text: src[start..j].to_string(),
                });
                i = j; // newline handled on next loop iteration
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        bump_line!(bytes[j]);
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` followed by an
                // ident with no closing quote right after one char.
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j].is_ascii_alphabetic() || bytes[j] == b'_') {
                    // Peek past the ident run.
                    let ident_start = j;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'\'' && j - ident_start == 1 {
                        // 'a' — a one-char char literal.
                        i = j + 1;
                    } else if j < bytes.len() && bytes[j] == b'\'' {
                        // 'abc' is not valid Rust, but consume defensively.
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Lifetime(src[ident_start..j].to_string()),
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '\u{1F600}', '+'.
                    while j < bytes.len() {
                        if bytes[j] == b'\\' {
                            j += 2;
                        } else if bytes[j] == b'\'' {
                            j += 1;
                            break;
                        } else {
                            bump_line!(bytes[j]);
                            j += 1;
                        }
                    }
                    i = j;
                }
            }
            b'r' | b'b' => {
                // Possible raw/byte string prefix: r"", r#""#, b"", br#""#.
                if let Some(next) = raw_or_byte_string(bytes, i, &mut line) {
                    i = next;
                } else {
                    i = lex_ident(src, bytes, i, line, &mut out);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                i = lex_ident(src, bytes, i, line, &mut out);
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits, `_`, `.` (if followed by a digit),
                // exponent markers, radix prefixes, type suffixes.
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j];
                    let dot_in_float = d == b'.'
                        && bytes
                            .get(j + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false);
                    let exponent_sign = (d == b'+' || d == b'-')
                        && matches!(bytes[j - 1], b'e' | b'E')
                        && bytes[start..j]
                            .iter()
                            .any(|b| *b == b'.' || *b == b'e' || *b == b'E');
                    if d.is_ascii_alphanumeric() || d == b'_' || dot_in_float || exponent_sign {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Num(src[start..j].to_string()),
                });
                i = j;
            }
            _ => {
                if c.is_ascii() {
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Punct(c as char),
                    });
                    i += 1;
                } else {
                    // Skip over a multi-byte UTF-8 scalar.
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j] & 0b1100_0000) == 0b1000_0000 {
                        j += 1;
                    }
                    i = j;
                }
            }
        }
    }
    out
}

fn lex_ident(src: &str, bytes: &[u8], i: usize, line: u32, out: &mut Lexed) -> usize {
    let start = i;
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    out.tokens.push(Token {
        line,
        kind: TokenKind::Ident(src[start..j].to_string()),
    });
    j
}

/// Consumes a normal `"..."` string starting at `i` (which must point at the
/// opening quote); returns the index just past the closing quote.
fn skip_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            c => {
                if c == b'\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

/// If `i` starts a raw or byte string (`r"`, `r#"`, `b"`, `br"`, `rb"`...),
/// consumes it and returns the index past the close; otherwise `None`.
fn raw_or_byte_string(bytes: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    // Consume up to two prefix letters (r, b, br, rb).
    let mut saw_r = false;
    for _ in 0..2 {
        match bytes.get(j) {
            Some(b'r') => {
                saw_r = true;
                j += 1;
            }
            Some(b'b') => j += 1,
            _ => break,
        }
    }
    if saw_r {
        // Raw string: count hashes then expect a quote.
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if bytes.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hash marks.
        while j < bytes.len() {
            if bytes[j] == b'"' {
                let mut k = 0usize;
                while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
            }
            if bytes[j] == b'\n' {
                *line += 1;
            }
            j += 1;
        }
        Some(j)
    } else if j > i && bytes.get(j) == Some(&b'"') {
        // Byte string b"..." — same escape rules as a normal string.
        Some(skip_string(bytes, j, line))
    } else {
        None
    }
}

impl TokenKind {
    /// The identifier text, if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // Instant::now in a comment
            /// doc: SystemTime
            /* block HashMap */
            /* nested /* thread_rng */ still comment */
            let a = "Instant::now";
            let b = r#"SystemTime::now"#;
            let c = b"HashMap";
            let actual = foo();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "Instant"));
        assert!(!ids.iter().any(|s| s == "SystemTime"));
        assert!(!ids.iter().any(|s| s == "HashMap"));
        assert!(!ids.iter().any(|s| s == "thread_rng"));
        assert!(ids.contains(&"actual".to_string()));
        assert!(ids.contains(&"foo".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1;\n// tart-lint: allow(WALLCLOCK) -- reason\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(WALLCLOCK)"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'q'; let n = '\\n'; x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        // The char literal contents never become identifiers.
        assert!(!idents(src).iter().any(|s| s == "q"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line1\nline2\";\nInstant::now();\n";
        let lexed = lex(src);
        let inst = lexed
            .tokens
            .iter()
            .find(|t| t.kind.as_ident() == Some("Instant"))
            .expect("Instant token");
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let src = "let a = 1_000u64; let b = 0.5; let c = 1e-9; let d = 2.5f64;";
        let nums: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Num(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1_000u64", "0.5", "1e-9", "2.5f64"]);
    }

    #[test]
    fn raw_identifier_prefix_chars_still_lex_as_idents() {
        // `r` and `b` as plain identifiers must not be eaten as string prefixes.
        let ids = idents("let r = b + rb_thing;");
        assert_eq!(ids, vec!["let", "r", "b", "rb_thing"]);
    }
}
