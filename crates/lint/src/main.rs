//! The `tart-lint` CLI.
//!
//! ```text
//! tart-lint [--root PATH] [--format text|json] [--deny] [--quiet]
//! ```
//!
//! Exit status: 0 when clean (or when only reporting), 1 under `--deny`
//! when any error-severity finding survives suppression, 2 on usage or I/O
//! errors. Warnings never fail the build.

use std::path::PathBuf;
use std::process::ExitCode;

use tart_lint::{audit_workspace, find_workspace_root, render_json, render_text};

struct Args {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        deny: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--deny" => args.deny = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: tart-lint [--root PATH] [--format text|json] [--deny] [--quiet]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = args.root.unwrap_or_else(|| find_workspace_root(&cwd));
    let audit = match audit_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tart-lint: failed to audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if audit.files_scanned == 0 {
        // A fence that scanned nothing proves nothing — refuse rather than
        // let a mistyped --root pass --deny vacuously.
        eprintln!(
            "tart-lint: no source files found under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::from(2);
    }
    if args.json {
        println!("{}", render_json(&audit));
    } else if !args.quiet || audit.errors() > 0 {
        print!("{}", render_text(&audit));
    }
    if args.deny && audit.errors() > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
