//! The `tart-lint` CLI.
//!
//! ```text
//! tart-lint [--root PATH] [--format text|json] [--deny] [--quiet]
//!           [--symbols PATH]
//! ```
//!
//! Exit status discipline (greppable in CI logs):
//!
//! - `0` — audit ran and is clean (or findings were only reported).
//! - `1` — `--deny` and at least one error-severity finding survived
//!   suppression. The last line on stderr is a one-line summary count.
//! - `2` — the audit itself failed: bad usage, I/O errors, an empty file
//!   set (a fence that scanned nothing proves nothing), or a `--symbols`
//!   write failure. Never used for findings.

use std::path::PathBuf;
use std::process::ExitCode;

use tart_lint::{
    audit_workspace, build_graph, collect_workspace_sources, find_workspace_root, render_json,
    render_text, SymbolGraph,
};

struct Args {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    quiet: bool,
    symbols: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        deny: false,
        quiet: false,
        symbols: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--deny" => args.deny = true,
            "--quiet" => args.quiet = true,
            "--symbols" => {
                let v = it.next().ok_or("--symbols requires a path")?;
                args.symbols = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: tart-lint [--root PATH] [--format text|json] [--deny] [--quiet] \
                     [--symbols PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = args.root.unwrap_or_else(|| find_workspace_root(&cwd));
    let audit = match audit_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tart-lint: failed to audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if audit.files_scanned == 0 {
        // A fence that scanned nothing proves nothing — refuse rather than
        // let a mistyped --root pass --deny vacuously.
        eprintln!(
            "tart-lint: no source files found under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::from(2);
    }
    if let Some(path) = &args.symbols {
        let graph: SymbolGraph = match collect_workspace_sources(&root) {
            Ok(sources) => build_graph(&sources),
            Err(e) => {
                eprintln!("tart-lint: failed to re-read sources for --symbols: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, graph.render_json()) {
            eprintln!("tart-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", render_json(&audit));
    } else if !args.quiet || audit.errors() > 0 {
        print!("{}", render_text(&audit));
    }
    if args.deny {
        // One greppable line, win or lose, on stderr so it survives
        // `--format json` on stdout.
        eprintln!(
            "tart-lint: deny: {} error(s), {} warning(s) across {} file(s)",
            audit.errors(),
            audit.warnings(),
            audit.files_scanned
        );
        if audit.errors() > 0 {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
