//! The analysis engine: walks the workspace, excludes test code, applies
//! rules per tier, and reconciles findings against in-source suppressions.
//!
//! Suppression syntax (line comments only):
//!
//! ```text
//! // tart-lint: allow(WALLCLOCK) -- phi-accrual needs real inter-arrival times
//! let now = Instant::now();
//! ```
//!
//! A directive suppresses matching findings on its own line (trailing
//! comment) or the line directly below. The `-- reason` is mandatory:
//! a reasonless allow is itself an error (`UNDOC-ALLOW`), and an allow that
//! suppressed nothing is flagged (`UNUSED-ALLOW`) so stale fences get
//! cleaned up instead of silently widening.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::concurrency::concurrency_pass;
use crate::lexer::{lex, CommentLine, Token, TokenKind};
use crate::manifest::{tier_for, unsafe_allowed, Tier};
use crate::protocol::protocol_pass;
use crate::rules::{scan, RuleId, Severity};
use crate::symbols::{FileUnit, SymbolGraph};
use crate::taint::taint_pass;

/// One diagnostic, post-suppression.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub severity: Severity,
    pub message: String,
    /// Witness for interprocedural findings (call path down to the raw
    /// hazard, outermost frame first); empty for single-line rules.
    pub path: Vec<String>,
}

/// One parsed `tart-lint: allow(...)` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub file: String,
    pub line: u32,
    pub rules: Vec<RuleId>,
    pub reason: Option<String>,
    /// How many findings this directive silenced.
    pub hits: u32,
}

/// The full audit result for a workspace.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
    pub files_scanned: usize,
}

impl Audit {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    pub fn suppressed(&self) -> u32 {
        self.suppressions.iter().map(|s| s.hits).sum()
    }
}

/// Audits every production source file under `root` (a workspace root).
///
/// Scanned: `src/**/*.rs` and `crates/*/src/**/*.rs`. Excluded: `target/`,
/// `shims/` (third-party API stand-ins), `tests/`, `benches/`, `examples/`,
/// and fixture directories — the fence guards production code; test code
/// may freely use wall clocks and hash maps.
pub fn audit_workspace(root: &Path) -> io::Result<Audit> {
    Ok(audit_sources(&collect_workspace_sources(root)?))
}

/// Reads every production source file under `root` as `(relative path,
/// source)` pairs, in sorted order — the input shape of [`audit_sources`]
/// and [`build_graph`].
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(file)?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// Builds the workspace symbol graph for a set of sources without running
/// the audit (used by `--symbols` and the self-inspection tests).
pub fn build_graph(files: &[(String, String)]) -> SymbolGraph {
    let units: Vec<FileUnit> = files
        .iter()
        .filter(|(rel, _)| tier_for(rel) != Tier::Exempt)
        .map(|(rel, src)| make_unit(rel, src))
        .collect();
    SymbolGraph::build(&units)
}

fn make_unit(rel: &str, src: &str) -> FileUnit {
    let lexed = lex(src);
    let excluded = test_ranges(&lexed.tokens);
    FileUnit {
        rel: rel.to_string(),
        tier: tier_for(rel),
        lexed,
        excluded,
    }
}

/// Audits a set of `(workspace-relative path, source)` pairs as one
/// workspace: per-file lexical rules plus the cross-file passes (taint,
/// protocol exhaustiveness, concurrency discipline), all reconciled
/// against the same in-source suppressions. This is the engine behind
/// [`audit_workspace`]; fixture tests call it directly to exercise
/// multi-file scenarios without a filesystem layout.
pub fn audit_sources(files: &[(String, String)]) -> Audit {
    let mut audit = Audit {
        files_scanned: files.len(),
        ..Audit::default()
    };

    // Phase 1: per-file preparation. Exempt files flush their directive
    // hygiene immediately and do not join the workspace graph.
    let mut units: Vec<FileUnit> = Vec::new();
    let mut directives: Vec<Vec<Suppression>> = Vec::new();
    for (rel, src) in files {
        let tier = tier_for(rel);
        let lexed = lex(src);
        let parsed = parse_directives(rel, &lexed.comments);
        if tier == Tier::Exempt {
            flush_directives(rel, parsed, false, &mut audit);
            continue;
        }
        let unit = make_unit(rel, src);
        let mut parsed = parsed;
        parsed.retain(|d| !unit.excluded.iter().any(|r| r.contains(&d.line)));
        units.push(unit);
        directives.push(parsed);
    }

    // Phase 2: per-file lexical rules.
    for (unit, dirs) in units.iter().zip(directives.iter_mut()) {
        let hits = scan(&unit.lexed.tokens, unit.tier, unsafe_allowed(&unit.rel));
        for hit in hits {
            if unit.is_test_line(hit.line) {
                continue;
            }
            let severity = hit
                .rule
                .severity_in(unit.tier)
                .expect("scan only emits applicable rules");
            reconcile(
                &unit.rel,
                hit.line,
                hit.rule,
                severity,
                hit.message,
                Vec::new(),
                dirs,
                &mut audit,
            );
        }
    }

    // Phase 3: workspace passes over the symbol graph.
    let graph = SymbolGraph::build(&units);
    let mut pass_hits = taint_pass(&units, &graph);
    pass_hits.extend(protocol_pass(&units, &graph));
    pass_hits.extend(concurrency_pass(&units, &graph));
    for hit in pass_hits {
        let Some(idx) = units.iter().position(|u| u.rel == hit.file) else {
            continue;
        };
        let Some(severity) = hit.rule.severity_in(units[idx].tier) else {
            continue;
        };
        reconcile(
            &hit.file.clone(),
            hit.line,
            hit.rule,
            severity,
            hit.message,
            hit.path,
            &mut directives[idx],
            &mut audit,
        );
    }

    // Phase 4: directive hygiene, after every pass had its chance to
    // consume an allow.
    for (unit, dirs) in units.into_iter().zip(directives) {
        flush_directives(&unit.rel, dirs, true, &mut audit);
    }

    // Deterministic report order (the auditor practices what it preaches).
    audit.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule.as_str()).cmp(&(&b.file, b.line, b.rule.as_str()))
    });
    audit
}

/// Matches one pre-suppression hit against a file's directives: a
/// directive on the hit's line or the line directly above consumes it;
/// otherwise it becomes a finding.
#[allow(clippy::too_many_arguments)]
fn reconcile(
    file: &str,
    line: u32,
    rule: RuleId,
    severity: Severity,
    message: String,
    path: Vec<String>,
    directives: &mut [Suppression],
    audit: &mut Audit,
) {
    // Same-line (trailing) directives take precedence so that two adjacent
    // annotated lines each consume their own directive.
    let matched = directives
        .iter()
        .position(|d| d.line == line && d.rules.contains(&rule))
        .or_else(|| {
            directives
                .iter()
                .position(|d| d.line + 1 == line && d.rules.contains(&rule))
        });
    if let Some(idx) = matched {
        directives[idx].hits += 1;
        return;
    }
    audit.findings.push(Finding {
        file: file.to_string(),
        line,
        rule,
        severity,
        message,
        path,
    });
}

/// Audits a single file's source text into `audit` — per-file lexical
/// rules only (the cross-file passes need the whole workspace; see
/// [`audit_sources`]). Public so fixture tests can drive the engine
/// without touching the filesystem layout.
pub fn audit_source(rel_path: &str, src: &str, audit: &mut Audit) {
    let tier = tier_for(rel_path);
    if tier == Tier::Exempt {
        // Exempt files are not scanned, but reasonless directives in them
        // are still hygiene errors (they'd rot silently otherwise). No
        // unused-check: nothing can match in an unscanned file.
        let lexed = lex(src);
        let directives = parse_directives(rel_path, &lexed.comments);
        flush_directives(rel_path, directives, false, audit);
        return;
    }

    let unit = make_unit(rel_path, src);
    let mut directives = parse_directives(rel_path, &unit.lexed.comments);
    // Directives inside test code suppress nothing by construction; drop
    // them rather than flagging them as stale.
    directives.retain(|d| !unit.excluded.iter().any(|r| r.contains(&d.line)));
    let hits = scan(&unit.lexed.tokens, tier, unsafe_allowed(rel_path));

    for hit in hits {
        if unit.is_test_line(hit.line) {
            continue;
        }
        let severity = hit
            .rule
            .severity_in(tier)
            .expect("scan only emits applicable rules");
        reconcile(
            rel_path,
            hit.line,
            hit.rule,
            severity,
            hit.message,
            Vec::new(),
            &mut directives,
            audit,
        );
    }

    flush_directives(rel_path, directives, true, audit);
}

/// Moves directives into the audit, flagging undocumented and unused ones.
fn flush_directives(
    rel_path: &str,
    directives: Vec<Suppression>,
    check_unused: bool,
    audit: &mut Audit,
) {
    for d in directives {
        if d.reason.is_none() {
            audit.findings.push(Finding {
                file: rel_path.to_string(),
                line: d.line,
                rule: RuleId::UndocAllow,
                severity: Severity::Error,
                message: "suppression without a reason: write \
                          `// tart-lint: allow(RULE) -- why this is sound`"
                    .to_string(),
                path: Vec::new(),
            });
        } else if check_unused && d.hits == 0 {
            audit.findings.push(Finding {
                file: rel_path.to_string(),
                line: d.line,
                rule: RuleId::UnusedAllow,
                severity: Severity::Error,
                message: format!(
                    "allow({}) suppressed nothing; remove the stale directive",
                    d.rules
                        .iter()
                        .map(|r| r.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                path: Vec::new(),
            });
        }
        audit.suppressions.push(d);
    }
}

/// Parses `tart-lint: allow(RULE[, RULE...]) [-- reason]` directives out of
/// the comment stream.
fn parse_directives(file: &str, comments: &[CommentLine]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Only plain `//` comments carry directives. Doc comments (`///`,
        // `//!`) are prose — a rendered example like the one above must not
        // act as a suppression.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(idx) = c.text.find("tart-lint:") else {
            continue;
        };
        let rest = c.text[idx + "tart-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<RuleId> = rest[..close].split(',').filter_map(RuleId::parse).collect();
        if rules.is_empty() {
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let reason = tail.strip_prefix("--").map(|r| r.trim().to_string());
        let reason = reason.filter(|r| !r.is_empty());
        out.push(Suppression {
            file: file.to_string(),
            line: c.line,
            rules,
            reason,
            hits: 0,
        });
    }
    out
}

/// Line ranges covered by `#[cfg(test)]` items (usually `mod tests { .. }`).
///
/// Token-level heuristic: on seeing an attribute containing both `cfg` and
/// `test`, skip any further attributes, then consume the next item — up to
/// its matching close brace, or the terminating semicolon for brace-less
/// items. Strings and comments are already gone, so brace counting is safe.
pub(crate) fn test_ranges(tokens: &[Token]) -> Vec<std::ops::RangeInclusive<u32>> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].kind.is_punct('#') {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = attribute_span(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any stacked attributes after the cfg(test) one.
        let mut j = attr_end;
        while j < tokens.len() && tokens[j].kind.is_punct('#') {
            match attribute_span(tokens, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        // Consume the item: first `{` to its match, or a `;` before any `{`.
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = tokens[j].line;
                        j += 1;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end_line = tokens[j].line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            end_line = tokens[j].line;
            j += 1;
        }
        ranges.push(start_line..=end_line);
        i = j;
    }
    ranges
}

/// If `tokens[i]` opens an attribute (`#[...]`), returns the index just past
/// its closing `]` and whether it mentions both `cfg` and `test`.
fn attribute_span(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if !tokens[i].kind.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    // Inner attributes: `#![...]`.
    if tokens.get(j).map(|t| t.kind.is_punct('!')).unwrap_or(false) {
        j += 1;
    }
    if !tokens.get(j).map(|t| t.kind.is_punct('[')).unwrap_or(false) {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, saw_cfg && saw_test));
                }
            }
            TokenKind::Ident(s) if s == "cfg" => saw_cfg = true,
            TokenKind::Ident(s) if s == "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Recursively collects `.rs` files under `dir`, skipping test-only trees.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | "tests" | "benches" | "examples" | "fixtures" | "shims"
            ) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Audit {
        let mut a = Audit::default();
        audit_source(rel, src, &mut a);
        a
    }

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn t() { let _ = Instant::now(); }\n}\n";
        let a = run("crates/sched/src/lib.rs", src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn trailing_and_preceding_allows_both_work() {
        let src = "\
// tart-lint: allow(WALLCLOCK) -- sanctioned boundary\n\
let a = Instant::now();\n\
let b = Instant::now(); // tart-lint: allow(WALLCLOCK) -- also fine\n";
        let a = run("crates/sched/src/lib.rs", src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.suppressed(), 2);
    }

    #[test]
    fn reasonless_allow_is_an_error() {
        let src = "// tart-lint: allow(WALLCLOCK)\nlet a = Instant::now();\n";
        let a = run("crates/sched/src/lib.rs", src);
        assert_eq!(a.errors(), 1);
        assert_eq!(a.findings[0].rule, RuleId::UndocAllow);
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// tart-lint: allow(WALLCLOCK) -- nothing here\nlet a = 1;\n";
        let a = run("crates/sched/src/lib.rs", src);
        assert_eq!(a.errors(), 1);
        assert_eq!(a.findings[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn directive_must_name_the_right_rule() {
        let src = "// tart-lint: allow(HASH-ITER) -- wrong rule\nlet a = Instant::now();\n";
        let a = run("crates/sched/src/lib.rs", src);
        // WALLCLOCK still fires, and the HASH-ITER allow is unused.
        assert_eq!(a.errors(), 2, "{:?}", a.findings);
    }
}
