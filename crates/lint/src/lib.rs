//! `tart-lint`: the determinism auditor.
//!
//! TART recovers failed components by restoring a checkpoint and replaying
//! logged messages (PAPER.md §II). That is only *correct* if the replayable
//! core is deterministic: a component handler, codec path, or checkpointed
//! container that observes wall-clock time, ambient randomness, or
//! hash-iteration order will diverge on replay — silently, and usually only
//! under failure, which is exactly when it must not.
//!
//! This crate is a source-level static analysis pass that fences that
//! boundary mechanically:
//!
//! - a small [comment/string-aware lexer](lexer) (std-only: no registry,
//!   no `syn`),
//! - a [tier manifest](manifest) declaring which paths are deterministic,
//!   ops-plane, or exempt,
//! - a per-file [rule catalogue](rules) — `WALLCLOCK`, `AMBIENT-RAND`,
//!   `HASH-ITER`, `AMBIENT-ENV`, `UNSAFE`, `FLOAT-ACCUM`,
//! - a whole-workspace [symbol graph](symbols) (items + identifier-resolved
//!   call edges) feeding three cross-file passes: [interprocedural
//!   taint](taint) (`TAINT-FLOW`), [protocol
//!   exhaustiveness](protocol) (`ENVELOPE-NONEXHAUSTIVE`), and
//!   [concurrency discipline](concurrency) (`LOCK-ACROSS-SEND`,
//!   `SEQLOCK-MISUSE`),
//! - an [analysis engine](analyze) with explicit, counted
//!   `// tart-lint: allow(RULE) -- reason` suppressions,
//! - [text and JSON reporting](report) with call-path witnesses.
//!
//! It ships three ways: the `tart-lint` binary (`--deny` for CI, plus
//! `--symbols` for the graph artifact), the `workspace_audit` integration
//! test (plain `cargo test` enforces the fence), and the
//! `determinism-lint` CI job. See DESIGN.md §12 for the hazard taxonomy
//! and tier table, §17 for the symbol graph and workspace passes.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod concurrency;
pub mod lexer;
pub mod manifest;
pub mod protocol;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod taint;

pub use analyze::{
    audit_source, audit_sources, audit_workspace, build_graph, collect_workspace_sources, Audit,
    Finding, Suppression,
};
pub use manifest::{tier_for, Tier};
pub use report::{render_json, render_text};
pub use rules::{RuleId, Severity};
pub use symbols::SymbolGraph;

use std::path::{Path, PathBuf};

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d.to_path_buf();
            }
        }
        dir = d.parent();
    }
    start.to_path_buf()
}
