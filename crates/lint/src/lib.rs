//! `tart-lint`: the determinism auditor.
//!
//! TART recovers failed components by restoring a checkpoint and replaying
//! logged messages (PAPER.md §II). That is only *correct* if the replayable
//! core is deterministic: a component handler, codec path, or checkpointed
//! container that observes wall-clock time, ambient randomness, or
//! hash-iteration order will diverge on replay — silently, and usually only
//! under failure, which is exactly when it must not.
//!
//! This crate is a source-level static analysis pass that fences that
//! boundary mechanically:
//!
//! - a small [comment/string-aware lexer](lexer) (std-only: no registry,
//!   no `syn`),
//! - a [tier manifest](manifest) declaring which paths are deterministic,
//!   ops-plane, or exempt,
//! - a [rule catalogue](rules) — `WALLCLOCK`, `AMBIENT-RAND`, `HASH-ITER`,
//!   `AMBIENT-ENV`, `UNSAFE`, `FLOAT-ACCUM`,
//! - an [analysis engine](analyze) with explicit, counted
//!   `// tart-lint: allow(RULE) -- reason` suppressions,
//! - [text and JSON reporting](report).
//!
//! It ships three ways: the `tart-lint` binary (`--deny` for CI), the
//! `workspace_audit` integration test (plain `cargo test` enforces the
//! fence), and the `determinism-lint` CI job. See DESIGN.md §11 for the
//! hazard taxonomy and tier table.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

pub use analyze::{audit_source, audit_workspace, Audit, Finding, Suppression};
pub use manifest::{tier_for, Tier};
pub use report::{render_json, render_text};
pub use rules::{RuleId, Severity};

use std::path::{Path, PathBuf};

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d.to_path_buf();
            }
        }
        dir = d.parent();
    }
    start.to_path_buf()
}
