//! The rule catalogue: what breaks replay, and how each hazard is matched
//! against the token stream.
//!
//! Rules are deliberately *syntactic*. A type-resolving analysis would be
//! nicer, but the workspace builds with no registry access (no `syn`, no
//! dylint), and replay-debugging practice shows the payoff is in having the
//! fence at all: hazards like a stray `Instant::now` are found by tooling,
//! not review (Sundmark et al., AADEBUG 2003). False positives are handled
//! by explicit, counted `// tart-lint: allow(RULE) -- reason` suppressions.

use crate::lexer::{Token, TokenKind};
use crate::manifest::Tier;

/// Diagnostic severity. `Error` fails the build under `--deny`; `Warn` is
/// reported but never fatal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Stable rule identifiers (also the names used in `allow(...)` directives).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Wall-clock reads (`Instant::now`, `SystemTime`, `UNIX_EPOCH`).
    Wallclock,
    /// Ambient randomness (`thread_rng`, `from_entropy`, `OsRng`, ...).
    AmbientRand,
    /// `HashMap`/`HashSet` in a deterministic tier: iteration order can
    /// leak into checkpoint images and send order.
    HashIter,
    /// Environment and filesystem reads in deterministic code.
    AmbientEnv,
    /// `unsafe` outside the allowlist.
    Unsafe,
    /// Order-sensitive floating-point reduction in codec/stats hot paths.
    FloatAccum,
    /// An `allow` directive with no `-- reason`.
    UndocAllow,
    /// An `allow` directive that suppressed nothing.
    UnusedAllow,
    /// A call path from a Deterministic-tier function into an Ops-tier
    /// function whose return value (transitively) carries wall-clock,
    /// entropy, or environment data. Interprocedural; the finding prints
    /// the full call path (see [`crate::taint`]).
    TaintFlow,
    /// A registered `Envelope` match site no longer handles every variant
    /// in its registered set (see [`crate::protocol`]).
    EnvelopeNonexhaustive,
    /// A `Mutex` guard held live across a send or blocking-I/O call in
    /// Deterministic-tier code (see [`crate::concurrency`]).
    LockAcrossSend,
    /// A write to a seqlock-guarded field outside an `update()` write
    /// group: concurrent snapshots can tear (see [`crate::concurrency`]).
    SeqlockMisuse,
}

impl RuleId {
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::Wallclock => "WALLCLOCK",
            RuleId::AmbientRand => "AMBIENT-RAND",
            RuleId::HashIter => "HASH-ITER",
            RuleId::AmbientEnv => "AMBIENT-ENV",
            RuleId::Unsafe => "UNSAFE",
            RuleId::FloatAccum => "FLOAT-ACCUM",
            RuleId::UndocAllow => "UNDOC-ALLOW",
            RuleId::UnusedAllow => "UNUSED-ALLOW",
            RuleId::TaintFlow => "TAINT-FLOW",
            RuleId::EnvelopeNonexhaustive => "ENVELOPE-NONEXHAUSTIVE",
            RuleId::LockAcrossSend => "LOCK-ACROSS-SEND",
            RuleId::SeqlockMisuse => "SEQLOCK-MISUSE",
        }
    }

    /// Parses a directive rule name (as written inside `allow(...)`).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "WALLCLOCK" => Some(RuleId::Wallclock),
            "AMBIENT-RAND" => Some(RuleId::AmbientRand),
            "HASH-ITER" => Some(RuleId::HashIter),
            "AMBIENT-ENV" => Some(RuleId::AmbientEnv),
            "UNSAFE" => Some(RuleId::Unsafe),
            "FLOAT-ACCUM" => Some(RuleId::FloatAccum),
            "TAINT-FLOW" => Some(RuleId::TaintFlow),
            "ENVELOPE-NONEXHAUSTIVE" => Some(RuleId::EnvelopeNonexhaustive),
            "LOCK-ACROSS-SEND" => Some(RuleId::LockAcrossSend),
            "SEQLOCK-MISUSE" => Some(RuleId::SeqlockMisuse),
            _ => None,
        }
    }

    /// Severity of this rule in the given tier; `None` means the rule does
    /// not apply there.
    pub fn severity_in(&self, tier: Tier) -> Option<Severity> {
        use RuleId::*;
        use Tier::*;
        match (self, tier) {
            (_, Exempt) => None,
            // Wall-clock reads poison replay only where the result can flow
            // into the fenced core. The deterministic tier bans the raw
            // read; the ops plane reads clocks as part of its job, and the
            // *boundary* is guarded path-sensitively by TAINT-FLOW instead
            // of per-line allows (the pre-taint regime annotated every ops
            // read, which proved pure noise — ~19 allows said "ops-plane:
            // real time is fine here" without once finding a leak).
            (Wallclock, Deterministic) => Some(Severity::Error),
            (Wallclock, Ops) => None,
            // Ambient randomness stays banned everywhere: even ops code
            // must thread entropy through the seeded DetRng so chaos runs
            // and reconnect jitter stay reproducible.
            (AmbientRand, Deterministic | Ops) => Some(Severity::Error),
            // Hash-iteration order and env reads only corrupt the fenced
            // core; the ops plane legitimately reads disks and registries.
            (HashIter | AmbientEnv, Deterministic) => Some(Severity::Error),
            (HashIter | AmbientEnv, Ops) => None,
            (Unsafe, Deterministic | Ops) => Some(Severity::Error),
            (FloatAccum, Deterministic) => Some(Severity::Warn),
            (FloatAccum, Ops) => None,
            // Directive hygiene is handled by the engine, tier-independent.
            (UndocAllow | UnusedAllow, _) => Some(Severity::Error),
            // Interprocedural: a deterministic caller reaching tainted ops
            // code is the leak itself; ops-to-ops flows are the job.
            (TaintFlow, Deterministic) => Some(Severity::Error),
            (TaintFlow, Ops) => None,
            // Protocol drift corrupts replay wherever the match site lives.
            (EnvelopeNonexhaustive, Deterministic | Ops) => Some(Severity::Error),
            // Holding a lock across a send can invert delivery order under
            // contention — fatal in the replayable core, routine in ops
            // threads that own their queues.
            (LockAcrossSend, Deterministic) => Some(Severity::Error),
            (LockAcrossSend, Ops) => None,
            // Torn seqlock reads corrupt whoever snapshots them.
            (SeqlockMisuse, Deterministic | Ops) => Some(Severity::Error),
        }
    }
}

/// A matched hazard before suppression is applied.
#[derive(Clone, Debug)]
pub struct Hit {
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

/// A workspace-pass finding before suppression is applied. Unlike [`Hit`],
/// pass findings carry their file (passes span files) and an optional
/// call-path witness.
#[derive(Clone, Debug)]
pub struct PassHit {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
    /// Human-readable witness, outermost frame first (empty when the
    /// finding is self-evident at its line).
    pub path: Vec<String>,
}

/// The raw-hazard subset used for taint seeding: these rules mark a
/// function as *reading* nondeterministic inputs regardless of the tier's
/// lexical severity (an ops-plane clock read is locally fine but still
/// taints the value it returns).
pub fn is_taint_source(rule: RuleId) -> bool {
    matches!(
        rule,
        RuleId::Wallclock | RuleId::AmbientRand | RuleId::AmbientEnv
    )
}

/// Runs every pattern rule over a token stream. `tier` selects which rules
/// apply; `unsafe_allowed` exempts allowlisted modules from [`RuleId::Unsafe`].
pub fn scan(tokens: &[Token], tier: Tier, unsafe_allowed: bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Some(ident) = tok.kind.as_ident() else {
            continue;
        };
        match ident {
            // ---- WALLCLOCK -------------------------------------------------
            "Instant" if followed_by_path(tokens, i, "now") => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::Wallclock,
                    "`Instant::now()` reads the wall clock; replay cannot reproduce it. \
                     Use the engine clock abstraction (tart_engine::clock) or virtual time.",
                );
            }
            "SystemTime" => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::Wallclock,
                    "`SystemTime` observes the wall clock; replay cannot reproduce it. \
                     Stamp external input via a TimeSource instead.",
                );
            }
            "UNIX_EPOCH" => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::Wallclock,
                    "`UNIX_EPOCH` arithmetic implies a wall-clock read.",
                );
            }
            // ---- AMBIENT-RAND ----------------------------------------------
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" | "RandomState" => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::AmbientRand,
                    &format!(
                        "`{ident}` draws ambient entropy; two replays diverge. \
                         Use tart_stats::DetRng with a seed from the logged configuration."
                    ),
                );
            }
            "random" if preceded_by_path(tokens, i, "rand") => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::AmbientRand,
                    "`rand::random()` draws from the thread RNG; replays diverge.",
                );
            }
            // ---- HASH-ITER -------------------------------------------------
            "HashMap" | "HashSet" => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::HashIter,
                    &format!(
                        "`{ident}` in a deterministic tier: iteration order is \
                         randomized per-process and leaks into checkpoint images, \
                         send order, and replay. Use BTreeMap/BTreeSet or emit sorted."
                    ),
                );
            }
            // ---- AMBIENT-ENV -----------------------------------------------
            "env"
                if preceded_by_path(tokens, i, "std")
                    || followed_by_any(tokens, i, &["var", "vars", "var_os"]) =>
            {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::AmbientEnv,
                    "environment reads are invisible to the message log; a replica \
                     or a replay may see a different value.",
                );
            }
            "read_to_string" | "read_dir" => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::AmbientEnv,
                    &format!("`{ident}` reads outside the logged input channel."),
                );
            }
            "File" if followed_by_path(tokens, i, "open") => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::AmbientEnv,
                    "`File::open` in deterministic code: file contents are not \
                     part of the message log, so replay cannot reproduce them.",
                );
            }
            "fs" if followed_by_any(tokens, i, &["read", "read_to_string", "read_dir"]) => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::AmbientEnv,
                    "filesystem reads are invisible to the message log.",
                );
            }
            // ---- UNSAFE ----------------------------------------------------
            "unsafe" if !unsafe_allowed => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::Unsafe,
                    "`unsafe` outside the allowlisted modules: undefined behaviour \
                     voids every replay guarantee. Extend UNSAFE_ALLOWLIST in \
                     crates/lint/src/manifest.rs if this is truly necessary.",
                );
            }
            // ---- FLOAT-ACCUM -----------------------------------------------
            "sum" | "product" if float_turbofish(tokens, i) => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::FloatAccum,
                    &format!(
                        "float `.{ident}::<..>()` reduction: the result depends on \
                         iteration order. Fine over a slice; a hazard over map-order \
                         or concurrent inputs."
                    ),
                );
            }
            "fold" if float_seed(tokens, i) => {
                push(
                    &mut hits,
                    tier,
                    tok.line,
                    RuleId::FloatAccum,
                    "float `fold` accumulation: the result depends on iteration \
                     order. Fine over a slice; a hazard over map-order inputs.",
                );
            }
            _ => {}
        }
    }
    hits
}

fn push(hits: &mut Vec<Hit>, tier: Tier, line: u32, rule: RuleId, message: &str) {
    if rule.severity_in(tier).is_some() {
        hits.push(Hit {
            line,
            rule,
            message: message.to_string(),
        });
    }
}

/// `tokens[i]` then `::` then `name`.
fn followed_by_path(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens
        .get(i + 1)
        .map(|t| t.kind.is_punct(':'))
        .unwrap_or(false)
        && tokens
            .get(i + 2)
            .map(|t| t.kind.is_punct(':'))
            .unwrap_or(false)
        && tokens
            .get(i + 3)
            .and_then(|t| t.kind.as_ident())
            .map(|s| s == name)
            .unwrap_or(false)
}

fn followed_by_any(tokens: &[Token], i: usize, names: &[&str]) -> bool {
    names.iter().any(|n| followed_by_path(tokens, i, n))
}

/// `name` then `::` then `tokens[i]`.
fn preceded_by_path(tokens: &[Token], i: usize, name: &str) -> bool {
    i >= 3
        && tokens[i - 1].kind.is_punct(':')
        && tokens[i - 2].kind.is_punct(':')
        && tokens[i - 3]
            .kind
            .as_ident()
            .map(|s| s == name)
            .unwrap_or(false)
}

/// `sum` `::` `<` `f32|f64` — a float turbofish reduction.
fn float_turbofish(tokens: &[Token], i: usize) -> bool {
    tokens
        .get(i + 1)
        .map(|t| t.kind.is_punct(':'))
        .unwrap_or(false)
        && tokens
            .get(i + 2)
            .map(|t| t.kind.is_punct(':'))
            .unwrap_or(false)
        && tokens
            .get(i + 3)
            .map(|t| t.kind.is_punct('<'))
            .unwrap_or(false)
        && tokens
            .get(i + 4)
            .and_then(|t| t.kind.as_ident())
            .map(|s| s == "f32" || s == "f64")
            .unwrap_or(false)
}

/// `fold` `(` <float literal> — accumulation seeded with a float.
fn float_seed(tokens: &[Token], i: usize) -> bool {
    tokens
        .get(i + 1)
        .map(|t| t.kind.is_punct('('))
        .unwrap_or(false)
        && matches!(
            tokens.get(i + 2).map(|t| &t.kind),
            Some(TokenKind::Num(n)) if n.contains('.') || n.contains('e') || n.contains('E')
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str, tier: Tier) -> Vec<Hit> {
        scan(&lex(src).tokens, tier, false)
    }

    #[test]
    fn wallclock_fires_in_deterministic_tier() {
        let hits = scan_src("let t = Instant::now();", Tier::Deterministic);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::Wallclock);
    }

    #[test]
    fn hash_iter_is_ops_exempt() {
        let src = "let m: HashMap<u8, u8> = HashMap::new();";
        assert_eq!(scan_src(src, Tier::Deterministic).len(), 2);
        assert!(scan_src(src, Tier::Ops).is_empty());
    }

    #[test]
    fn instant_elapsed_alone_does_not_fire() {
        // Storing/holding an Instant is caught where it is created.
        assert!(scan_src("let d = epoch.elapsed();", Tier::Deterministic).is_empty());
    }

    #[test]
    fn float_fold_is_warn_level() {
        let hits = scan_src("xs.iter().fold(0.0, |a, b| a + b);", Tier::Deterministic);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::FloatAccum);
        assert_eq!(
            hits[0].rule.severity_in(Tier::Deterministic),
            Some(Severity::Warn)
        );
    }

    #[test]
    fn integer_fold_does_not_fire() {
        assert!(scan_src("xs.iter().fold(0, |a, b| a + b);", Tier::Deterministic).is_empty());
    }
}
