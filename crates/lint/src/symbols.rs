//! The workspace symbol graph: a lightweight, std-only approximation of
//! "who defines what and who calls whom", built from the lexer's token
//! stream — no `rustc`, no `syn`.
//!
//! The graph deliberately trades resolution fidelity for zero dependencies:
//!
//! - **Items** (`fn` / `struct` / `enum`, with their `impl`/`trait`
//!   context) are recovered by brace-tracking over the token stream.
//! - **Call edges** are *identifier approximations*: `foo(..)` edges to
//!   every workspace function named `foo`; `Type::foo(..)` resolves by
//!   `impl` block, then file stem, else to nothing (an unmatched
//!   qualifier names a type outside the workspace). Method receivers are
//!   typed where the syntax allows — `self.m()` via the enclosing impl,
//!   `self.field.m()` via struct fields, `param.m()` via the signature —
//!   and resolve like qualifiers; only untypeable receivers (locals,
//!   call chains) edge to every candidate, an over-approximation the
//!   taint pass inherits (rare collisions are suppressed at the call
//!   site with a reasoned `allow`, see DESIGN.md §17).
//! - **Qualified references** (`Enum::Variant`, used by the protocol pass)
//!   are recorded for every `A::B` pair inside a function body, so a
//!   `match` arm, an `if let`, and a construction site all count as
//!   "mentions".
//!
//! Functions inside `#[cfg(test)]` ranges are excluded: test code may
//! freely read clocks, and test helpers must not become call-edge targets.
//! [`Tier::Exempt`] files are excluded entirely so bench harness functions
//! (whose whole purpose is timing) never become taint sources through a
//! name collision.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::RangeInclusive;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::manifest::Tier;

/// One analyzed source file, shared by every workspace-level pass.
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub tier: Tier,
    pub lexed: Lexed,
    /// Line ranges covered by `#[cfg(test)]` items.
    pub excluded: Vec<RangeInclusive<u32>>,
}

impl FileUnit {
    /// True when `line` falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.excluded.iter().any(|r| r.contains(&line))
    }
}

/// A function (or method) definition.
#[derive(Clone, Debug)]
pub struct FnSym {
    pub name: String,
    /// The `impl`/`trait` self-type this function is defined under.
    pub impl_type: Option<String>,
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace (== `line` for bodyless decls).
    pub end_line: u32,
    pub tier: Tier,
    /// Whether the signature declares a non-`()` return type. The taint
    /// pass only propagates through value-returning functions: a function
    /// returning `()` cannot hand wall-clock data back to its caller
    /// (out-parameter flows are out of scope, documented in DESIGN.md §17).
    pub returns_value: bool,
    /// `true` for trait-method declarations without a body.
    pub has_body: bool,
    /// Named parameters as `(name, type identifiers)` pairs (receiver
    /// `self` and pattern parameters are skipped); used to type
    /// `param.method(..)` receivers.
    pub params: Vec<(String, Vec<String>)>,
    pub calls: Vec<CallRef>,
    /// Every `A::B` pair in the body (protocol-pass "mentions").
    pub qualified_refs: Vec<(String, String)>,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallRef {
    pub name: String,
    /// `Some("Type")` for `Type::name(..)` calls (with `Self` resolved to
    /// the enclosing impl type); `None` for bare and method calls.
    pub qualifier: Option<String>,
    /// `true` for `receiver.name(..)` method calls.
    pub method: bool,
    /// Receiver syntax for a method call, when it is simple enough to
    /// type later (chained and deeply-nested receivers stay `None`).
    pub recv: Option<Recv>,
    /// Type identifiers inferred for the receiver (filled by
    /// [`SymbolGraph::build`]'s typing post-pass from struct fields, fn
    /// parameters, and the enclosing impl type). `None` means the
    /// receiver could not be typed and resolution over-approximates.
    pub recv_types: Option<Vec<String>>,
    pub line: u32,
}

/// The receiver of a method call, as written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(..)`.
    SelfValue,
    /// `self.field.method(..)`.
    SelfField(String),
    /// `name.method(..)` — a local variable or fn parameter.
    Var(String),
}

/// An enum definition with its variant names.
#[derive(Clone, Debug)]
pub struct EnumSym {
    pub name: String,
    pub file: String,
    pub line: u32,
    pub variants: Vec<String>,
}

/// A struct definition with its named fields (as `(name, type
/// identifiers)` pairs: every identifier in the declared type, in order,
/// so `Arc<Mutex<Router>>` yields `[Arc, Mutex, Router]`). The first
/// identifier is enough for the seqlock pass to find `Atomic*` counter
/// groups; the full list lets call resolution type `self.field.m(..)`
/// receivers through wrapper types.
#[derive(Clone, Debug)]
pub struct StructSym {
    pub name: String,
    pub file: String,
    pub line: u32,
    pub fields: Vec<(String, Vec<String>)>,
}

/// The whole-workspace symbol graph.
#[derive(Default)]
pub struct SymbolGraph {
    pub fns: Vec<FnSym>,
    pub enums: Vec<EnumSym>,
    pub structs: Vec<StructSym>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolGraph {
    /// Builds the graph from every non-exempt file unit.
    pub fn build(units: &[FileUnit]) -> SymbolGraph {
        let mut g = SymbolGraph::default();
        for unit in units {
            if unit.tier == Tier::Exempt {
                continue;
            }
            parse_file(unit, &mut g);
        }
        for (i, f) in g.fns.iter().enumerate() {
            g.by_name.entry(f.name.clone()).or_default().push(i);
        }
        g.type_receivers();
        g
    }

    /// The typing post-pass: fills [`CallRef::recv_types`] for method
    /// calls whose receiver syntax is simple enough to look up —
    /// `self.m()` through the enclosing impl type, `self.field.m()`
    /// through the struct table, `param.m()` through the fn signature.
    fn type_receivers(&mut self) {
        let SymbolGraph { fns, structs, .. } = self;
        for f in fns.iter_mut() {
            let impl_type = f.impl_type.clone();
            let params = f.params.clone();
            let file = f.file.clone();
            for call in &mut f.calls {
                let Some(recv) = &call.recv else { continue };
                call.recv_types = match recv {
                    Recv::SelfValue => impl_type.as_ref().map(|t| vec![t.clone()]),
                    Recv::SelfField(field) => impl_type
                        .as_deref()
                        .and_then(|t| find_struct(structs, t, &file))
                        .and_then(|s| {
                            s.fields
                                .iter()
                                .find(|(n, _)| n == field)
                                .map(|(_, tys)| tys.clone())
                        }),
                    Recv::Var(name) => params
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, tys)| tys.clone()),
                };
            }
        }
    }

    /// Function indices defined with the given name (any file).
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolves a call to its candidate definitions.
    ///
    /// Qualified calls (`Q::f`) resolve by impl-type match first, then by
    /// file stem (`module::f`); a qualifier matching *neither* names a
    /// type outside the workspace (std, deps, generic parameters) and
    /// resolves to nothing — falling back to every `f` would drown the
    /// taint pass in `BytesMut::new`-style collisions. Typed method
    /// receivers (`self.f()`, `self.field.f()`, `param.f()`) resolve the
    /// same way, trying each receiver type identifier in declaration
    /// order so wrappers fall through (`Arc<Mutex<Router>>` resolves via
    /// `Router`). Only untypeable receivers (locals, call chains) edge to
    /// every candidate — the documented over-approximation.
    pub fn resolve(&self, call: &CallRef) -> Vec<usize> {
        let cands = self.fns_named(&call.name);
        if cands.is_empty() {
            return Vec::new();
        }
        if let Some(q) = &call.qualifier {
            return self.by_type_then_stem(cands, std::slice::from_ref(q));
        }
        if call.method {
            if let Some(tys) = &call.recv_types {
                return self.by_type_then_stem(cands, tys);
            }
        }
        cands.to_vec()
    }

    /// Filters candidates by the first type name that matches an
    /// `impl` block, else a file stem; no match at all resolves empty
    /// (the receiver/qualifier names a type outside the workspace).
    fn by_type_then_stem(&self, cands: &[usize], names: &[String]) -> Vec<usize> {
        for q in names {
            let by_type: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].impl_type.as_deref() == Some(q.as_str()))
                .collect();
            if !by_type.is_empty() {
                return by_type;
            }
            let by_stem: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| file_stem(&self.fns[i].file) == q.as_str())
                .collect();
            if !by_stem.is_empty() {
                return by_stem;
            }
        }
        Vec::new()
    }

    /// The innermost function whose line span contains `line` in `file`,
    /// if any.
    pub fn fn_at(&self, file: &str, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.line <= line && line <= f.end_line)
            .min_by_key(|(_, f)| f.end_line - f.line)
            .map(|(i, _)| i)
    }

    /// Serializes the graph as a single-line JSON document
    /// (`lint-symbols.json`, uploaded by CI for offline inspection).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"version\":1,\"functions\":[");
        for (i, f) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let impl_type = match &f.impl_type {
                Some(t) => crate::report::json_str(t),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"impl\":{},\"file\":{},\"line\":{},\"end_line\":{},\
                 \"returns_value\":{},\"calls\":[",
                crate::report::json_str(&f.name),
                impl_type,
                crate::report::json_str(&f.file),
                f.line,
                f.end_line,
                f.returns_value,
            );
            for (j, c) in f.calls.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let q = match &c.qualifier {
                    Some(q) => crate::report::json_str(q),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "{{\"name\":{},\"qualifier\":{},\"line\":{}}}",
                    crate::report::json_str(&c.name),
                    q,
                    c.line
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"enums\":[");
        for (i, e) in self.enums.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let variants: Vec<String> = e
                .variants
                .iter()
                .map(|v| crate::report::json_str(v))
                .collect();
            let _ = write!(
                out,
                "{{\"name\":{},\"file\":{},\"line\":{},\"variants\":[{}]}}",
                crate::report::json_str(&e.name),
                crate::report::json_str(&e.file),
                e.line,
                variants.join(",")
            );
        }
        out.push_str("],\"structs\":[");
        for (i, s) in self.structs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fields: Vec<String> = s
                .fields
                .iter()
                .map(|(n, t)| {
                    format!(
                        "{{\"name\":{},\"type\":{}}}",
                        crate::report::json_str(n),
                        crate::report::json_str(&t.join(" "))
                    )
                })
                .collect();
            let _ = write!(
                out,
                "{{\"name\":{},\"file\":{},\"line\":{},\"fields\":[{}]}}",
                crate::report::json_str(&s.name),
                crate::report::json_str(&s.file),
                s.line,
                fields.join(",")
            );
        }
        out.push_str("]}");
        out
    }
}

/// Finds the struct named `name`, preferring a definition in `file`
/// (impl blocks usually sit next to their struct); otherwise the
/// definition must be workspace-unique to count.
fn find_struct<'a>(structs: &'a [StructSym], name: &str, file: &str) -> Option<&'a StructSym> {
    let matches: Vec<&StructSym> = structs.iter().filter(|s| s.name == name).collect();
    matches
        .iter()
        .find(|s| s.file == file)
        .copied()
        .or(if matches.len() == 1 {
            Some(matches[0])
        } else {
            None
        })
}

/// Collects the identifiers of a type expression beginning at `from`,
/// stopping at a depth-0 `,` / `;` or an unmatched closer. Returns the
/// identifiers and the index of the stopping token. A `>` completing a
/// `->` arrow (fn-pointer/`Fn` trait returns) is not a closer.
fn type_idents(toks: &[Token], from: usize, end: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut j = from;
    while j < end {
        match &toks[j].kind {
            TokenKind::Punct('(')
            | TokenKind::Punct('[')
            | TokenKind::Punct('{')
            | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') if j > from && toks[j - 1].kind.is_punct('-') => {
                // `->` arrow, not a generics closer.
            }
            TokenKind::Punct(')')
            | TokenKind::Punct(']')
            | TokenKind::Punct('}')
            | TokenKind::Punct('>') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Punct(',') | TokenKind::Punct(';') if depth == 0 => break,
            TokenKind::Ident(s) if !is_keyword(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, j)
}

/// `crates/engine/src/net.rs` → `net`.
pub fn file_stem(path: &str) -> &str {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// Keywords that look like calls when followed by `(`.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "let"
            | "else"
            | "in"
            | "as"
            | "move"
            | "mut"
            | "ref"
            | "unsafe"
            | "fn"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "mod"
            | "pub"
            | "use"
            | "where"
            | "dyn"
            | "box"
            | "await"
    )
}

struct FnSpan {
    sym: FnSym,
    /// Token index range of the body (exclusive of the braces' outside).
    body: Option<(usize, usize)>,
}

fn parse_file(unit: &FileUnit, g: &mut SymbolGraph) {
    let toks = &unit.lexed.tokens;
    let mut spans: Vec<FnSpan> = Vec::new();

    // Pass 1: item extraction with impl/trait context tracking.
    // `impl_stack` holds (type_name, depth_of_open_brace).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().map(|(_, d)| *d > depth).unwrap_or(false) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokenKind::Ident(s)
                if (s == "impl" || s == "trait") && !unit.is_test_line(toks[i].line) =>
            {
                if let Some((name, body_open)) = parse_impl_header(toks, i) {
                    impl_stack.push((name, depth + 1));
                    depth += 1;
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            TokenKind::Ident(s) if s == "fn" && !unit.is_test_line(toks[i].line) => {
                if let Some(parsed) = parse_fn(toks, i) {
                    let (name, returns_value, params, body, end_line) = parsed;
                    spans.push(FnSpan {
                        sym: FnSym {
                            name,
                            impl_type: impl_stack.last().map(|(n, _)| n.clone()),
                            file: unit.rel.clone(),
                            line: toks[i].line,
                            end_line,
                            tier: unit.tier,
                            returns_value,
                            has_body: body.is_some(),
                            params,
                            calls: Vec::new(),
                            qualified_refs: Vec::new(),
                        },
                        body,
                    });
                }
                // Continue INTO the signature/body so nested fns are found;
                // brace depth stays consistent because we only advanced past
                // the `fn` keyword.
                i += 1;
            }
            TokenKind::Ident(s) if s == "enum" && !unit.is_test_line(toks[i].line) => {
                if let Some(e) = parse_enum(toks, i, &unit.rel) {
                    g.enums.push(e);
                }
                i += 1;
            }
            TokenKind::Ident(s) if s == "struct" && !unit.is_test_line(toks[i].line) => {
                if let Some(s) = parse_struct(toks, i, &unit.rel) {
                    g.structs.push(s);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Pass 2: attribute calls and qualified refs to the innermost
    // enclosing function body.
    collect_refs(toks, &mut spans);

    for span in spans {
        g.fns.push(span.sym);
    }
}

/// Parses an `impl`/`trait` header starting at `i`; returns the self-type
/// name and the index of the opening body brace.
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => {
                return last_ident.map(|n| (n, j));
            }
            TokenKind::Punct(';') if angle <= 0 => return None, // `impl Foo;` — malformed, bail
            TokenKind::Ident(s) if angle <= 0 => {
                if s == "where" {
                    // Everything after `where` is bounds; the self type is
                    // already in `last_ident`.
                    let name = last_ident?;
                    let open = find_punct(toks, j, '{')?;
                    return Some((name, open));
                }
                if s == "for" {
                    last_ident = None; // the self type follows
                } else if s != "dyn" && s != "unsafe" && s != "impl" && s != "trait" {
                    last_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn find_punct(toks: &[Token], from: usize, c: char) -> Option<usize> {
    (from..toks.len()).find(|&j| toks[j].kind.is_punct(c))
}

/// Parses a `fn` item starting at the `fn` keyword. Returns
/// `(name, returns_value, params, body_token_range, end_line)`.
#[allow(clippy::type_complexity)]
fn parse_fn(
    toks: &[Token],
    i: usize,
) -> Option<(
    String,
    bool,
    Vec<(String, Vec<String>)>,
    Option<(usize, usize)>,
    u32,
)> {
    // `fn(` is a function-pointer type, not an item.
    let name = toks.get(i + 1)?.kind.as_ident()?.to_string();
    let mut j = i + 2;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut returns_value = false;
    let mut sig_open: Option<usize> = None;
    let mut sig_done = false;
    let mut params: Vec<(String, Vec<String>)> = Vec::new();
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('(') => {
                // The first depth-0 paren outside generics opens the
                // parameter list (generic bounds like `Fn(u32)` come
                // earlier but sit inside `<..>`).
                if paren == 0 && angle <= 0 && !sig_done && sig_open.is_none() {
                    sig_open = Some(j);
                }
                paren += 1;
            }
            TokenKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    if let Some(open) = sig_open.take() {
                        params = parse_params(toks, open + 1, j);
                        sig_done = true;
                    }
                }
            }
            TokenKind::Punct('<') if paren == 0 => angle += 1,
            TokenKind::Punct('>') if paren == 0 && angle > 0 => {
                // Part of generics — unless it completes a `->` arrow,
                // which is handled below before we get here.
                angle -= 1;
            }
            TokenKind::Punct('-')
                if toks
                    .get(j + 1)
                    .map(|t| t.kind.is_punct('>'))
                    .unwrap_or(false)
                    && paren == 0 =>
            {
                // Return arrow. `-> ()` (unit) does not count as a value.
                let unit_return = toks
                    .get(j + 2)
                    .map(|t| t.kind.is_punct('('))
                    .unwrap_or(false)
                    && toks
                        .get(j + 3)
                        .map(|t| t.kind.is_punct(')'))
                        .unwrap_or(false)
                    && toks
                        .get(j + 4)
                        .map(|t| t.kind.is_punct('{') || t.kind.is_punct(';'))
                        .unwrap_or(true);
                returns_value = !unit_return;
                j += 2;
                continue;
            }
            TokenKind::Punct('{') if paren == 0 => {
                // Body found: match braces.
                let (end, end_line) = match_brace(toks, j);
                return Some((name, returns_value, params, Some((j + 1, end)), end_line));
            }
            TokenKind::Punct(';') if paren == 0 => {
                return Some((name, returns_value, params, None, toks[j].line));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses the parameter list between a signature's parens into
/// `(name, type identifiers)` pairs. The receiver, `mut` markers, and
/// pattern parameters (`(a, b): …`) are skipped.
fn parse_params(toks: &[Token], from: usize, to: usize) -> Vec<(String, Vec<String>)> {
    let mut params = Vec::new();
    let mut j = from;
    while j < to {
        if toks[j].kind.as_ident() == Some("mut") {
            j += 1;
            continue;
        }
        let name = toks[j].kind.as_ident();
        let single_colon = toks
            .get(j + 1)
            .map(|t| t.kind.is_punct(':'))
            .unwrap_or(false)
            && !toks
                .get(j + 2)
                .map(|t| t.kind.is_punct(':'))
                .unwrap_or(false);
        if let (Some(name), true) = (name, single_colon) {
            if !is_keyword(name) && name != "self" {
                let (tys, stop) = type_idents(toks, j + 2, to);
                params.push((name.to_string(), tys));
                j = stop + 1; // past the separating `,`
                continue;
            }
        }
        // Anything else (`&mut self`, patterns): skip to the next
        // top-level comma.
        let (_, stop) = type_idents(toks, j, to);
        j = stop.max(j) + 1;
    }
    params
}

/// Given the index of an opening `{`, returns (index of matching `}`,
/// its line).
fn match_brace(toks: &[Token], open: usize) -> (usize, u32) {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return (j, toks[j].line);
                }
            }
            _ => {}
        }
        j += 1;
    }
    let line = toks.last().map(|t| t.line).unwrap_or(0);
    (toks.len(), line)
}

fn parse_enum(toks: &[Token], i: usize, file: &str) -> Option<EnumSym> {
    let name = toks.get(i + 1)?.kind.as_ident()?.to_string();
    let open = {
        // Skip generics between the name and `{`; a `;` first means this
        // was `enum` used as an identifier or a malformed item.
        let mut j = i + 2;
        let mut angle = 0i32;
        loop {
            match &toks.get(j)?.kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('{') if angle <= 0 => break j,
                TokenKind::Punct(';') if angle <= 0 => return None,
                _ => {}
            }
            j += 1;
        }
    };
    let (close, _) = match_brace(toks, open);
    let mut variants = Vec::new();
    let mut j = open + 1;
    let mut depth = 0i32; // depth of nested braces/parens/brackets inside the body
    let mut expect_variant = true;
    while j < close {
        match &toks[j].kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct(',') if depth == 0 => expect_variant = true,
            TokenKind::Punct('#') if depth == 0 => {
                // Attribute before a variant: skip `#[...]`.
                if let Some(open_b) = toks.get(j + 1).filter(|t| t.kind.is_punct('[')) {
                    let _ = open_b;
                    let mut d = 0i32;
                    while j < close {
                        match &toks[j].kind {
                            TokenKind::Punct('[') => d += 1,
                            TokenKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            TokenKind::Ident(s) if depth == 0 && expect_variant => {
                variants.push(s.clone());
                expect_variant = false;
            }
            _ => {}
        }
        j += 1;
    }
    Some(EnumSym {
        name,
        file: file.to_string(),
        line: toks[i].line,
        variants,
    })
}

fn parse_struct(toks: &[Token], i: usize, file: &str) -> Option<StructSym> {
    let name = toks.get(i + 1)?.kind.as_ident()?.to_string();
    // Find `{` before any `;` (unit struct) or `(` (tuple struct).
    let mut j = i + 2;
    let mut angle = 0i32;
    let open = loop {
        match &toks.get(j)?.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => break j,
            TokenKind::Punct(';') | TokenKind::Punct('(') if angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    };
    let (close, _) = match_brace(toks, open);
    let mut fields = Vec::new();
    let mut j = open + 1;
    while j + 1 < close {
        // `name : Type` — a single colon (not `::`) after the ident;
        // `type_idents` then consumes the whole type, so nested generics
        // never masquerade as field names.
        let name = toks[j].kind.as_ident();
        let single_colon = toks[j + 1].kind.is_punct(':')
            && !toks
                .get(j + 2)
                .map(|t| t.kind.is_punct(':'))
                .unwrap_or(false)
            && !toks
                .get(j.wrapping_sub(1))
                .map(|t| t.kind.is_punct(':'))
                .unwrap_or(false);
        if let (Some(field), true) = (name, single_colon) {
            if !is_keyword(field) {
                let (tys, stop) = type_idents(toks, j + 2, close);
                fields.push((field.to_string(), tys));
                j = stop + 1; // past the separating `,`
                continue;
            }
        }
        j += 1;
    }
    Some(StructSym {
        name,
        file: file.to_string(),
        line: toks[i].line,
        fields,
    })
}

/// Attributes every call and qualified reference to the innermost function
/// body containing it.
fn collect_refs(toks: &[Token], spans: &mut [FnSpan]) {
    // Sort body ranges for an innermost-wins sweep.
    let mut order: Vec<usize> = (0..spans.len())
        .filter(|&s| spans[s].body.is_some())
        .collect();
    order.sort_by_key(|&s| spans[s].body.unwrap().0);

    for k in 0..toks.len() {
        let TokenKind::Ident(name) = &toks[k].kind else {
            continue;
        };
        if is_keyword(name) {
            continue;
        }
        let owner = innermost_owner(spans, &order, k);
        let Some(owner) = owner else { continue };

        // Qualified reference `name :: member`.
        if toks
            .get(k + 1)
            .map(|t| t.kind.is_punct(':'))
            .unwrap_or(false)
            && toks
                .get(k + 2)
                .map(|t| t.kind.is_punct(':'))
                .unwrap_or(false)
        {
            if let Some(member) = toks.get(k + 3).and_then(|t| t.kind.as_ident()) {
                let q = resolve_self(name, &spans[owner].sym);
                spans[owner]
                    .sym
                    .qualified_refs
                    .push((q, member.to_string()));
            }
        }

        // Call site: `name (` — optionally through a turbofish
        // `name :: < .. > (`. Macro invocations (`name !`) are skipped.
        if toks
            .get(k + 1)
            .map(|t| t.kind.is_punct('!'))
            .unwrap_or(false)
        {
            continue;
        }
        let mut call_paren = toks
            .get(k + 1)
            .map(|t| t.kind.is_punct('('))
            .unwrap_or(false);
        if !call_paren
            && toks
                .get(k + 1)
                .map(|t| t.kind.is_punct(':'))
                .unwrap_or(false)
            && toks
                .get(k + 2)
                .map(|t| t.kind.is_punct(':'))
                .unwrap_or(false)
            && toks
                .get(k + 3)
                .map(|t| t.kind.is_punct('<'))
                .unwrap_or(false)
        {
            // Turbofish: scan to the matching `>` then expect `(`.
            let mut a = 0i32;
            let mut j = k + 3;
            while j < toks.len() {
                match &toks[j].kind {
                    TokenKind::Punct('<') => a += 1,
                    TokenKind::Punct('>') => {
                        a -= 1;
                        if a == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            call_paren = toks
                .get(j + 1)
                .map(|t| t.kind.is_punct('('))
                .unwrap_or(false);
        }
        if !call_paren {
            continue;
        }

        let method = k > 0 && toks[k - 1].kind.is_punct('.');
        let qualifier = if !method
            && k >= 3
            && toks[k - 1].kind.is_punct(':')
            && toks[k - 2].kind.is_punct(':')
        {
            toks[k - 3]
                .kind
                .as_ident()
                .map(|q| resolve_self(q, &spans[owner].sym))
        } else {
            None
        };
        let recv = if method { recv_syntax(toks, k) } else { None };
        spans[owner].sym.calls.push(CallRef {
            name: name.clone(),
            qualifier,
            method,
            recv,
            recv_types: None,
            line: toks[k].line,
        });
    }
}

/// Classifies the receiver of the method call whose name sits at token
/// `k` (so `k - 1` is the `.`). Only the three simple shapes are typed;
/// chained receivers (`a.b.c.m()`, `f().m()`) return `None`.
fn recv_syntax(toks: &[Token], k: usize) -> Option<Recv> {
    let ident = |n: usize| toks.get(k.checked_sub(n)?).and_then(|t| t.kind.as_ident());
    let punct = |n: usize, c: char| {
        k.checked_sub(n)
            .and_then(|i| toks.get(i))
            .map(|t| t.kind.is_punct(c))
            .unwrap_or(false)
    };
    let r2 = ident(2)?;
    if punct(3, '.') {
        // `x . field . m (` — typed only when `x` is `self`.
        if ident(4) == Some("self") && !punct(5, '.') {
            return Some(Recv::SelfField(r2.to_string()));
        }
        return None;
    }
    if punct(3, ':') {
        return None; // `Path::x . m (` — a const/static receiver.
    }
    if r2 == "self" {
        return Some(Recv::SelfValue);
    }
    Some(Recv::Var(r2.to_string()))
}

/// Rewrites a `Self` qualifier to the enclosing impl type.
fn resolve_self(q: &str, owner: &FnSym) -> String {
    if q == "Self" {
        if let Some(t) = &owner.impl_type {
            return t.clone();
        }
    }
    q.to_string()
}

/// The innermost fn body containing token index `k`.
fn innermost_owner(spans: &[FnSpan], order: &[usize], k: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_len = usize::MAX;
    for &s in order {
        let (lo, hi) = spans[s].body.unwrap();
        if lo <= k && k < hi && hi - lo < best_len {
            best = Some(s);
            best_len = hi - lo;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn unit(rel: &str, src: &str) -> FileUnit {
        FileUnit {
            rel: rel.to_string(),
            tier: crate::manifest::tier_for(rel),
            lexed: lex(src),
            excluded: Vec::new(),
        }
    }

    fn graph(files: &[(&str, &str)]) -> SymbolGraph {
        let units: Vec<FileUnit> = files.iter().map(|(r, s)| unit(r, s)).collect();
        SymbolGraph::build(&units)
    }

    #[test]
    fn extracts_fns_with_impl_context_and_returns() {
        let g = graph(&[(
            "crates/sched/src/a.rs",
            "pub struct T { x: u64 }\n\
             impl T {\n    pub fn get(&self) -> u64 { self.helper() }\n    fn put(&mut self) { }\n}\n\
             fn free() -> Result<(), String> { Ok(()) }\n\
             fn unit_ret() -> () { }\n",
        )]);
        let get = &g.fns[g.fns_named("get")[0]];
        assert_eq!(get.impl_type.as_deref(), Some("T"));
        assert!(get.returns_value);
        let put = &g.fns[g.fns_named("put")[0]];
        assert!(!put.returns_value);
        assert!(g.fns[g.fns_named("free")[0]].returns_value);
        assert!(!g.fns[g.fns_named("unit_ret")[0]].returns_value);
    }

    #[test]
    fn call_edges_and_qualified_refs() {
        let g = graph(&[(
            "crates/sched/src/a.rs",
            "fn a() { b(); T::c(); x.d(); E::Variant; println!(\"e()\"); }\n\
             fn b() {}\n",
        )]);
        let a = &g.fns[g.fns_named("a")[0]];
        let names: Vec<&str> = a.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"b"));
        assert!(names.contains(&"c"));
        assert!(names.contains(&"d"));
        assert!(!names.contains(&"println"));
        let c = a.calls.iter().find(|c| c.name == "c").unwrap();
        assert_eq!(c.qualifier.as_deref(), Some("T"));
        assert!(a
            .qualified_refs
            .contains(&("E".to_string(), "Variant".to_string())));
    }

    #[test]
    fn trait_for_impl_records_self_type() {
        let g = graph(&[(
            "crates/sched/src/a.rs",
            "impl Encode for Envelope { fn encode(&self) -> u8 { 0 } }",
        )]);
        let e = &g.fns[g.fns_named("encode")[0]];
        assert_eq!(e.impl_type.as_deref(), Some("Envelope"));
    }

    #[test]
    fn enum_variants_extracted_including_struct_and_tuple() {
        let g = graph(&[(
            "crates/engine/src/envelope.rs",
            "pub enum Envelope {\n    Data { wire: u8, vt: u64 },\n    Probe(u8),\n    Die,\n    #[doc = \"x\"]\n    Drain,\n}",
        )]);
        assert_eq!(g.enums.len(), 1);
        assert_eq!(g.enums[0].variants, vec!["Data", "Probe", "Die", "Drain"]);
    }

    #[test]
    fn struct_fields_with_types() {
        let g = graph(&[(
            "crates/engine/src/net.rs",
            "struct LinkState { seq: AtomicU64, connected: AtomicBool, epoch: Arc<Mutex<Router>> }",
        )]);
        assert_eq!(g.structs[0].name, "LinkState");
        assert_eq!(
            g.structs[0].fields[0],
            ("seq".to_string(), vec!["AtomicU64".to_string()])
        );
        assert_eq!(g.structs[0].fields[1].1, vec!["AtomicBool".to_string()]);
        // Wrapper generics are kept in order so receiver typing can fall
        // through `Arc`/`Mutex` to the workspace type.
        assert_eq!(g.structs[0].fields[2].1, vec!["Arc", "Mutex", "Router"]);
    }

    #[test]
    fn qualified_resolution_prefers_impl_type_then_stem() {
        let g = graph(&[
            (
                "crates/obs/src/lib.rs",
                "pub struct ObsHub;\nimpl ObsHub { pub fn new() -> Self { ObsHub } }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub struct Core;\nimpl Core { pub fn new() -> Self { Core } }\n\
                 fn mk() { let _ = Core::new(); }",
            ),
        ]);
        let mk = &g.fns[g.fns_named("mk")[0]];
        let call = mk.calls.iter().find(|c| c.name == "new").unwrap();
        let targets = g.resolve(call);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].impl_type.as_deref(), Some("Core"));
    }

    #[test]
    fn self_field_receiver_resolves_through_wrappers() {
        let g = graph(&[
            (
                "crates/engine/src/router.rs",
                "pub struct Router;\nimpl Router { pub fn send(&self) {} }",
            ),
            (
                "crates/engine/src/cluster.rs",
                "pub struct Injector;\nimpl Injector { pub fn send(&self) {} }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub struct Core { router: Arc<Mutex<Router>>, outputs: Sender<u8> }\n\
                 impl Core {\n\
                     fn a(&self) { self.router.send(); }\n\
                     fn b(&self) { self.outputs.send(); }\n\
                 }",
            ),
        ]);
        // `self.router.send()` types through Arc<Mutex<Router>> → Router,
        // NOT to the unrelated Injector::send.
        let a = &g.fns[g.fns_named("a")[0]];
        let t = g.resolve(a.calls.iter().find(|c| c.name == "send").unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(g.fns[t[0]].impl_type.as_deref(), Some("Router"));
        // `self.outputs.send()` types to an external channel — no edges.
        let b = &g.fns[g.fns_named("b")[0]];
        assert!(g
            .resolve(b.calls.iter().find(|c| c.name == "send").unwrap())
            .is_empty());
    }

    #[test]
    fn param_receiver_resolves_by_declared_type() {
        let g = graph(&[
            (
                "crates/engine/src/cluster.rs",
                "pub struct Injector;\nimpl Injector { pub fn send(&self) {} }",
            ),
            (
                "crates/model/src/reference.rs",
                "fn on_message(ctx: &mut dyn EngineCtx, n: u32) { ctx.send(); }\n\
                 fn relay(inj: &Injector) { inj.send(); }",
            ),
        ]);
        // `ctx: &mut dyn EngineCtx` — no workspace impl or module named
        // EngineCtx here, so the call resolves to nothing rather than to
        // the unrelated Injector::send.
        let f = &g.fns[g.fns_named("on_message")[0]];
        assert_eq!(f.params.len(), 2);
        assert_eq!(
            f.params[0],
            ("ctx".to_string(), vec!["EngineCtx".to_string()])
        );
        assert!(g
            .resolve(f.calls.iter().find(|c| c.name == "send").unwrap())
            .is_empty());
        // A param declared with a workspace type resolves precisely.
        let r = &g.fns[g.fns_named("relay")[0]];
        let t = g.resolve(r.calls.iter().find(|c| c.name == "send").unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(g.fns[t[0]].impl_type.as_deref(), Some("Injector"));
    }

    #[test]
    fn self_and_local_receivers() {
        let g = graph(&[(
            "crates/engine/src/log.rs",
            "pub struct Wal;\nimpl Wal { pub fn append(&self) {} }\n\
             pub struct MessageLog;\nimpl MessageLog {\n\
                 fn go(&self) { self.append(); }\n\
                 fn append(&self) { let wal = mk(); wal.append(); }\n\
             }",
        )]);
        // `self.append()` stays inside the impl type.
        let go = &g.fns[g.fns_named("go")[0]];
        let t = g.resolve(go.calls.iter().find(|c| c.name == "append").unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(g.fns[t[0]].impl_type.as_deref(), Some("MessageLog"));
        // A local (`wal`) is untypeable: the documented over-approximation
        // keeps every candidate so real cross-type edges survive.
        let ml = g
            .fns_named("append")
            .iter()
            .map(|&i| &g.fns[i])
            .find(|f| f.impl_type.as_deref() == Some("MessageLog"))
            .unwrap();
        let t = g.resolve(
            ml.calls
                .iter()
                .find(|c| c.name == "append" && c.method)
                .unwrap(),
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_qualifier_resolves_to_nothing() {
        // `BytesMut::new()` — BytesMut is not a workspace type, so the call
        // must NOT edge to unrelated workspace fns that happen to be named
        // `new` (that fallback drowned the taint pass in false positives).
        let g = graph(&[
            (
                "crates/engine/src/config.rs",
                "pub struct Placement;\nimpl Placement { pub fn new() -> Self { Placement } }",
            ),
            (
                "crates/codec/src/buf.rs",
                "fn mk() { let _ = BytesMut::new(); }",
            ),
        ]);
        let mk = &g.fns[g.fns_named("mk")[0]];
        let call = mk.calls.iter().find(|c| c.name == "new").unwrap();
        assert_eq!(call.qualifier.as_deref(), Some("BytesMut"));
        assert!(g.resolve(call).is_empty());
    }

    #[test]
    fn self_qualifier_resolves_to_impl_type() {
        let g = graph(&[(
            "crates/sched/src/a.rs",
            "struct A; impl A { fn f() { Self::g(); } fn g() {} }\n\
             struct B; impl B { fn g() {} }",
        )]);
        let f = &g.fns[g.fns_named("f")[0]];
        let call = f.calls.iter().find(|c| c.name == "g").unwrap();
        assert_eq!(call.qualifier.as_deref(), Some("A"));
        let targets = g.resolve(call);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn nested_fn_owns_its_calls() {
        let g = graph(&[(
            "crates/sched/src/a.rs",
            "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\nfn leaf() {}\n",
        )]);
        let outer = &g.fns[g.fns_named("outer")[0]];
        let inner = &g.fns[g.fns_named("inner")[0]];
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        assert!(!outer.calls.iter().any(|c| c.name == "leaf"));
        assert!(inner.calls.iter().any(|c| c.name == "leaf"));
    }

    #[test]
    fn symbols_json_is_balanced() {
        let g = graph(&[(
            "crates/sched/src/a.rs",
            "enum E { A, B }\nstruct S { x: u8 }\nfn f() -> u8 { g() }\nfn g() -> u8 { 1 }\n",
        )]);
        let json = g.render_json();
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "{json}");
        assert!(json.contains("\"variants\":[\"A\",\"B\"]"));
    }
}
