//! Interprocedural taint: tracks wall-clock / entropy / environment data
//! from the function that *reads* it to the deterministic-tier call edge
//! that *imports* it.
//!
//! PR 3's lexical fence catches `Instant::now()` written inside a
//! Deterministic-tier file. It cannot catch the laundered form — a
//! deterministic handler calling an innocent-looking ops helper whose
//! return value is derived from the clock one hop (or three hops) away.
//! Replay-debugging practice (PAPERS.md, cs/0311019) says this is the form
//! that actually breaks replay in the field.
//!
//! Model, deliberately simple and over-approximate:
//!
//! - **Seed:** any non-exempt, *value-returning* function whose body
//!   contains a raw WALLCLOCK / AMBIENT-RAND / AMBIENT-ENV hazard
//!   (scanned at full severity regardless of the file's tier — an
//!   ops-plane clock read is locally legal but still taints what it
//!   returns). Functions returning `()` absorb their hazards: they cannot
//!   hand the value back (out-parameter flows are out of scope, §17).
//! - **Propagate:** a value-returning function that calls a tainted
//!   value-returning function is tainted, transitively, across files.
//! - **Report:** a call from a Deterministic-tier function to a tainted
//!   **Ops-tier** function is a `TAINT-FLOW` finding, with the full call
//!   path down to the raw read printed as a witness. Tainted
//!   Deterministic-tier functions (`clock::HandlerTimer`, `RealClock`)
//!   are the *sanctioned* boundaries — calls to them are the approved way
//!   in, carry their own line-level allows, and are never flagged as
//!   targets.
//!
//! Precision notes: method calls resolve through the graph's receiver
//! typing (struct fields, fn parameters, the enclosing impl type — see
//! DESIGN.md §17), so `self.router.send(..)` only edges to `Router`'s
//! `send`. Untypeable receivers (locals, call chains) still
//! over-approximate to every same-named candidate; the rare residual
//! collision (e.g. an `OpenOptions` builder chain hitting a workspace
//! `open`) is suppressed at the call site with a reasoned
//! `allow(TAINT-FLOW)` — which keeps it visible and counted.

use std::collections::BTreeMap;

use crate::manifest::Tier;
use crate::rules::{is_taint_source, scan, PassHit, RuleId};
use crate::symbols::{FileUnit, SymbolGraph};

/// Why a function is tainted.
#[derive(Clone, Debug)]
enum Cause {
    /// A raw hazard at `line`, matched by `rule`.
    Seed { line: u32, rule: RuleId },
    /// A call at `line` to the (tainted) function with this graph index.
    Call { line: u32, callee: usize },
}

/// Runs the taint pass over the workspace. `units` must be the non-exempt
/// file set the graph was built from.
pub fn taint_pass(units: &[FileUnit], graph: &SymbolGraph) -> Vec<PassHit> {
    // Seed: raw hazards inside value-returning function bodies. The scan
    // runs at Deterministic severity so ops files yield hits too.
    let mut tainted: BTreeMap<usize, Cause> = BTreeMap::new();
    for unit in units {
        for hit in scan(&unit.lexed.tokens, Tier::Deterministic, true) {
            if !is_taint_source(hit.rule) || unit.is_test_line(hit.line) {
                continue;
            }
            let Some(f) = graph.fn_at(&unit.rel, hit.line) else {
                continue; // hazard outside any fn body (consts, statics)
            };
            if graph.fns[f].returns_value {
                tainted.entry(f).or_insert(Cause::Seed {
                    line: hit.line,
                    rule: hit.rule,
                });
            }
        }
    }

    // Propagate to fixpoint through value-returning callers.
    loop {
        let mut changed = false;
        for f in 0..graph.fns.len() {
            if tainted.contains_key(&f) || !graph.fns[f].returns_value {
                continue;
            }
            let hit = graph.fns[f].calls.iter().find_map(|c| {
                graph
                    .resolve(c)
                    .into_iter()
                    .find(|&t| t != f && tainted.contains_key(&t) && graph.fns[t].returns_value)
                    .map(|t| (c.line, t))
            });
            if let Some((line, callee)) = hit {
                tainted.insert(f, Cause::Call { line, callee });
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Report: Deterministic caller → tainted Ops callee.
    let mut out = Vec::new();
    let mut seen: Vec<(String, u32, usize)> = Vec::new();
    for f in 0..graph.fns.len() {
        let caller = &graph.fns[f];
        if caller.tier != Tier::Deterministic {
            continue;
        }
        for call in &caller.calls {
            let Some(target) = graph
                .resolve(call)
                .into_iter()
                .find(|&t| graph.fns[t].tier == Tier::Ops && tainted.contains_key(&t))
            else {
                continue;
            };
            let key = (caller.file.clone(), call.line, target);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let path = witness(graph, &tainted, f, call.line, target);
            let t = &graph.fns[target];
            out.push(PassHit {
                file: caller.file.clone(),
                line: call.line,
                rule: RuleId::TaintFlow,
                message: format!(
                    "deterministic `{}` calls ops-tier `{}` whose return value \
                     carries nondeterministic data; log the value or route it \
                     through a sanctioned boundary (path below)",
                    caller.name, t.name,
                ),
                path,
            });
        }
    }
    out
}

/// Builds the human-readable call-path witness, outermost frame first,
/// ending at the raw read.
fn witness(
    graph: &SymbolGraph,
    tainted: &BTreeMap<usize, Cause>,
    caller: usize,
    call_line: u32,
    target: usize,
) -> Vec<String> {
    let mut path = Vec::new();
    let c = &graph.fns[caller];
    path.push(format!(
        "{}:{}: `{}` [Deterministic] calls `{}`",
        c.file,
        call_line,
        display_name(graph, caller),
        display_name(graph, target),
    ));
    let mut cur = target;
    // The via-chain is acyclic by construction (each link points at a
    // function tainted strictly earlier), but cap it defensively.
    for _ in 0..graph.fns.len() {
        let f = &graph.fns[cur];
        match tainted.get(&cur) {
            Some(Cause::Seed { line, rule }) => {
                path.push(format!(
                    "{}:{}: `{}` [{:?}] reads a raw {} source",
                    f.file,
                    line,
                    display_name(graph, cur),
                    f.tier,
                    rule.as_str(),
                ));
                break;
            }
            Some(Cause::Call { line, callee }) => {
                path.push(format!(
                    "{}:{}: `{}` [{:?}] calls `{}`",
                    f.file,
                    line,
                    display_name(graph, cur),
                    f.tier,
                    display_name(graph, *callee),
                ));
                cur = *callee;
            }
            None => break,
        }
    }
    path
}

fn display_name(graph: &SymbolGraph, f: usize) -> String {
    let sym = &graph.fns[f];
    match &sym.impl_type {
        Some(t) => format!("{}::{}", t, sym.name),
        None => sym.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::test_ranges;
    use crate::lexer::lex;
    use crate::manifest::tier_for;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let excluded = test_ranges(&lexed.tokens);
                FileUnit {
                    rel: rel.to_string(),
                    tier: tier_for(rel),
                    lexed,
                    excluded,
                }
            })
            .collect()
    }

    fn run(files: &[(&str, &str)]) -> Vec<PassHit> {
        let us = units(files);
        let graph = SymbolGraph::build(&us);
        taint_pass(&us, &graph)
    }

    #[test]
    fn one_hop_leak_is_flagged_with_path() {
        // Ops helper returns clock data; deterministic caller imports it.
        let hits = run(&[
            (
                "crates/engine/src/net.rs",
                "pub fn uptime_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub fn handle() -> u64 { uptime_ms() }",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RuleId::TaintFlow);
        assert_eq!(hits[0].file, "crates/engine/src/core.rs");
        assert_eq!(hits[0].path.len(), 2, "{:?}", hits[0].path);
        assert!(hits[0].path[1].contains("WALLCLOCK"), "{:?}", hits[0].path);
    }

    #[test]
    fn unit_returning_helpers_absorb_taint() {
        // The ops fn reads the clock but returns (): nothing flows back.
        let hits = run(&[
            (
                "crates/engine/src/net.rs",
                "pub fn log_time() { let _ = Instant::now(); }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub fn handle() { log_time(); }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn det_tier_sanctioned_boundary_is_not_a_target() {
        // clock.rs is Deterministic tier: a tainted det fn is sanctioned.
        let hits = run(&[
            (
                "crates/engine/src/clock.rs",
                "pub fn start() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub fn handle() -> u64 { start() }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn ops_to_ops_flow_is_fine() {
        let hits = run(&[
            (
                "crates/engine/src/net.rs",
                "pub fn now_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            ),
            (
                "crates/engine/src/cluster.rs",
                "pub fn pace() -> u64 { now_ms() }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn taint_crosses_three_files() {
        let hits = run(&[
            (
                "crates/obs/src/lib.rs",
                "fn now_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
            (
                "crates/engine/src/wal.rs",
                "pub fn stamp() -> u64 { now_ns() + 1 }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub fn handle() -> u64 { stamp() }",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].path.len(), 3, "{:?}", hits[0].path);
        let joined = hits[0].path.join("\n");
        assert!(joined.contains("core.rs"), "{joined}");
        assert!(joined.contains("wal.rs"), "{joined}");
        assert!(joined.contains("obs/src/lib.rs"), "{joined}");
    }

    #[test]
    fn test_code_reads_do_not_seed() {
        let hits = run(&[
            (
                "crates/engine/src/net.rs",
                "pub fn helper() -> u64 { 1 }\n\
                 #[cfg(test)]\nmod tests {\n    pub fn helper2() -> u64 { Instant::now().elapsed().as_millis() as u64 }\n}\n",
            ),
            (
                "crates/engine/src/core.rs",
                "pub fn handle() -> u64 { helper() }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn recursion_terminates() {
        let hits = run(&[
            (
                "crates/engine/src/net.rs",
                "pub fn a(n: u64) -> u64 { if n > 0 { a(n - 1) } else { Instant::now().elapsed().as_millis() as u64 } }",
            ),
            (
                "crates/engine/src/core.rs",
                "pub fn handle() -> u64 { a(3) }",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }
}
