//! Rendering: `file:line [RULE-ID] severity` text diagnostics and a
//! hand-rolled (std-only) JSON report for CI artifacts.

use std::fmt::Write as _;

use crate::analyze::Audit;

/// The JSON schema version; bump when the shape changes.
/// v2: findings gained a `path` witness array (interprocedural rules).
pub const JSON_VERSION: u32 = 2;

/// Renders human-oriented diagnostics, one per line (plus indented
/// call-path witness lines for interprocedural findings), and a summary.
pub fn render_text(audit: &Audit) -> String {
    let mut out = String::new();
    for f in &audit.findings {
        let _ = writeln!(
            out,
            "{}:{} [{}] {}: {}",
            f.file,
            f.line,
            f.rule.as_str(),
            f.severity.as_str(),
            f.message
        );
        for step in &f.path {
            let _ = writeln!(out, "    | {step}");
        }
    }
    let documented = audit
        .suppressions
        .iter()
        .filter(|s| s.reason.is_some())
        .count();
    let _ = writeln!(
        out,
        "tart-lint: {} files scanned, {} errors, {} warnings, {} findings suppressed by {} documented allow(s)",
        audit.files_scanned,
        audit.errors(),
        audit.warnings(),
        audit.suppressed(),
        documented,
    );
    out
}

/// Renders the machine-readable report.
///
/// Shape (schema-tested in `tests/rules.rs`):
///
/// ```json
/// {
///   "version": 2,
///   "files_scanned": 42,
///   "summary": {"errors": 0, "warnings": 1, "suppressed": 12},
///   "findings": [{"file", "line", "rule", "severity", "message", "path": [..]}],
///   "suppressions": [{"file", "line", "rules": [..], "reason", "hits"}]
/// }
/// ```
pub fn render_json(audit: &Audit) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"version\":{JSON_VERSION},");
    let _ = write!(out, "\"files_scanned\":{},", audit.files_scanned);
    let _ = write!(
        out,
        "\"summary\":{{\"errors\":{},\"warnings\":{},\"suppressed\":{}}},",
        audit.errors(),
        audit.warnings(),
        audit.suppressed()
    );
    out.push_str("\"findings\":[");
    for (i, f) in audit.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let path: Vec<String> = f.path.iter().map(|p| json_str(p)).collect();
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"rule\":{},\"severity\":{},\"message\":{},\"path\":[{}]}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule.as_str()),
            json_str(f.severity.as_str()),
            json_str(&f.message),
            path.join(",")
        );
    }
    out.push_str("],\"suppressions\":[");
    for (i, s) in audit.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rules: Vec<String> = s.rules.iter().map(|r| json_str(r.as_str())).collect();
        let reason = match &s.reason {
            Some(r) => json_str(r),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"rules\":[{}],\"reason\":{},\"hits\":{}}}",
            json_str(&s.file),
            s.line,
            rules.join(","),
            reason,
            s.hits
        );
    }
    out.push_str("]}");
    out
}

/// Escapes a string per RFC 8259.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::audit_source;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn text_lines_have_the_documented_shape() {
        let mut a = Audit::default();
        audit_source("crates/sched/src/x.rs", "let t = Instant::now();", &mut a);
        a.files_scanned = 1;
        let text = render_text(&a);
        assert!(
            text.starts_with("crates/sched/src/x.rs:1 [WALLCLOCK] error:"),
            "{text}"
        );
    }
}
