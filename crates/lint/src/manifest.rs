//! The determinism-tier manifest: which parts of the workspace must stay
//! replayable, and which are ops-plane or exempt.
//!
//! TART's recovery story (PAPER.md §II) is checkpoint + deterministic
//! replay. That is only sound if the *replayable core* — everything whose
//! behaviour is reconstructed from the message log — never observes
//! wall-clock time, ambient randomness, hash-iteration order, or the
//! environment. The manifest pins each path to a tier; rules pick their
//! severity per tier (see [`crate::rules`]).
//!
//! Longest-prefix match wins, so a specific file entry overrides its
//! crate's default. New engine modules default to [`Tier::Deterministic`]:
//! the fence fails closed.

/// How strictly a path is audited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Part of the replayable core: all determinism rules at full severity.
    /// Handlers, codecs, schedulers, checkpointed containers.
    Deterministic,
    /// Ops plane: runs *around* the replayable core (failure detection,
    /// transport, chaos injection, durability I/O). Wall-clock reads are
    /// part of the job and allowed in place; what is fenced instead is the
    /// *boundary*: the interprocedural taint pass (`TAINT-FLOW`) errors
    /// when a deterministic-tier function obtains a value whose data flow
    /// reaches an ops-plane clock/rand/env read, and ambient randomness
    /// stays an error even here (a seeded `DetRng` exists on both planes).
    Ops,
    /// Not audited (measurement harnesses whose entire purpose is timing).
    Exempt,
}

/// `(path prefix, tier)` — paths are workspace-relative with `/` separators.
///
/// Keep this table in sync with the tier table in DESIGN.md §11.
pub const TIERS: &[(&str, Tier)] = &[
    // Pure deterministic crates: the paper's replayable core.
    ("crates/vtime/", Tier::Deterministic),
    ("crates/codec/", Tier::Deterministic),
    ("crates/stats/", Tier::Deterministic),
    ("crates/model/", Tier::Deterministic),
    ("crates/estimator/", Tier::Deterministic),
    ("crates/silence/", Tier::Deterministic),
    ("crates/sched/", Tier::Deterministic),
    ("crates/sim/", Tier::Deterministic),
    ("crates/core/", Tier::Deterministic),
    // The façade crate re-exports the core; keep it fenced.
    ("src/", Tier::Deterministic),
    // Engine: deterministic by default (fail closed). The ops-plane modules
    // below are listed explicitly; anything new lands in the fenced tier
    // until someone consciously moves it.
    ("crates/engine/", Tier::Deterministic),
    // Verified replay (DESIGN.md §15): the hashing, sealing and bisection
    // paths must themselves be deterministic, or the divergence detector
    // would raise phantoms. Listed explicitly — despite matching the
    // deterministic defaults above — so a future re-tiering of their parent
    // prefixes cannot silently unfence them.
    ("crates/model/src/hash.rs", Tier::Deterministic),
    ("crates/engine/src/checkpoint.rs", Tier::Deterministic),
    ("crates/engine/src/verify.rs", Tier::Deterministic),
    // The scheduler/replay heart of the engine, pinned for the same reason:
    // it must never drift onto the ops plane by a parent re-tier.
    ("crates/engine/src/core.rs", Tier::Deterministic),
    ("crates/engine/src/supervise.rs", Tier::Ops),
    ("crates/engine/src/standby.rs", Tier::Ops),
    ("crates/engine/src/chaos.rs", Tier::Ops),
    // The router decides *which inbox*, never message content or per-link
    // order; its chaos-latency stalls read the wall clock, so it lives on
    // the ops plane (DESIGN.md §18 has the determinism argument).
    ("crates/engine/src/router.rs", Tier::Ops),
    ("crates/engine/src/cluster.rs", Tier::Ops),
    ("crates/engine/src/net.rs", Tier::Ops),
    // The socket reactor (DESIGN.md §18): transport timing — reconnect
    // backoff, idle ticks — is its whole job.
    ("crates/engine/src/reactor.rs", Tier::Ops),
    ("crates/engine/src/wal.rs", Tier::Ops),
    ("crates/engine/src/store.rs", Tier::Ops),
    ("crates/engine/src/config.rs", Tier::Ops),
    // Observability: telemetry *about* the core, never state *inside* it.
    // Wall-clock stamps are its purpose, so it lives on the ops plane; the
    // engine core only ever calls opaque obs methods.
    ("crates/obs/", Tier::Ops),
    // The auditor itself: no wall-clock or randomness either, but its rule
    // tables name hazards in string literals (which the lexer skips).
    ("crates/lint/", Tier::Ops),
    // Measurement harness: its entire purpose is wall-clock timing.
    ("crates/bench/", Tier::Exempt),
];

/// Modules allowed to contain `unsafe` blocks. Currently empty: every crate
/// carries `#![forbid(unsafe_code)]`, and the auditor enforces that no
/// future module quietly drops the attribute.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Resolves the tier for a workspace-relative path (longest prefix wins).
/// Unknown paths are audited at full severity.
pub fn tier_for(rel_path: &str) -> Tier {
    let mut best: Option<(&str, Tier)> = None;
    for (prefix, tier) in TIERS {
        if rel_path.starts_with(prefix) && best.map(|(p, _)| prefix.len() > p.len()).unwrap_or(true)
        {
            best = Some((prefix, *tier));
        }
    }
    best.map(|(_, t)| t).unwrap_or(Tier::Deterministic)
}

/// True when `rel_path` is allowed to contain `unsafe`.
pub fn unsafe_allowed(rel_path: &str) -> bool {
    UNSAFE_ALLOWLIST.iter().any(|p| rel_path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        assert_eq!(tier_for("crates/engine/src/core.rs"), Tier::Deterministic);
        assert_eq!(tier_for("crates/engine/src/supervise.rs"), Tier::Ops);
        assert_eq!(tier_for("crates/engine/src/chaos.rs"), Tier::Ops);
        assert_eq!(tier_for("crates/engine/src/reactor.rs"), Tier::Ops);
    }

    #[test]
    fn unknown_paths_fail_closed() {
        assert_eq!(tier_for("crates/brand_new/src/lib.rs"), Tier::Deterministic);
    }

    #[test]
    fn verified_replay_modules_are_fenced() {
        // The hash/seal/bisect paths are pinned Deterministic by explicit
        // entries, independent of their crate-prefix defaults.
        assert_eq!(tier_for("crates/model/src/hash.rs"), Tier::Deterministic);
        assert_eq!(
            tier_for("crates/engine/src/checkpoint.rs"),
            Tier::Deterministic
        );
        assert_eq!(tier_for("crates/engine/src/verify.rs"), Tier::Deterministic);
    }

    #[test]
    fn bench_is_exempt() {
        assert_eq!(tier_for("crates/bench/src/lib.rs"), Tier::Exempt);
    }
}
