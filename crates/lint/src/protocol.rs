//! Protocol exhaustiveness: every registered `Envelope` match site must
//! keep handling its registered variant set.
//!
//! `rustc` checks match exhaustiveness *syntactically* — and the two most
//! replay-critical sites defeat it by design: `decode` matches on a wire
//! *tag* with a wildcard error arm, and several ops loops (`standby`,
//! `supervise`, the replay service) use `_ =>` to ignore traffic that is
//! not theirs. Adding envelope tag 15 therefore compiles clean while the
//! decoder silently rejects it and replay never sees it.
//!
//! This pass closes the gap with a **site registry**: each entry names a
//! file, a function, and the set of variants that function must *mention*
//! (`Envelope::Variant` or `Self::Variant` anywhere in its body — a match
//! arm, an `if let`, or a construction site all count). `All` entries
//! (encode, decode, `core::handle`) fail when a new variant lands without
//! touching them; `Only` entries pin the protocol subset a site exists to
//! handle, so a refactor cannot silently drop, say, `Die` handling from
//! the standby plane. A registered function missing from a present file is
//! itself a finding — the registry cannot rot silently.

use crate::rules::{PassHit, RuleId};
use crate::symbols::{FileUnit, SymbolGraph};

/// What a registered site must mention.
pub enum Requirement {
    /// Every variant of the enum (protocol-total sites).
    All,
    /// Exactly this registered subset (other mentions are fine).
    Only(&'static [&'static str]),
}

/// One registered `Envelope` match site.
pub struct Site {
    /// Workspace-relative path suffix of the file that hosts the site.
    pub file_suffix: &'static str,
    /// The function (by name) that performs the match.
    pub func: &'static str,
    pub req: Requirement,
    /// Why this site is registered (printed in findings).
    pub why: &'static str,
}

/// The Envelope-site registry. Keep in sync with DESIGN.md §17.
///
/// Absent files are skipped (so fixture subsets and partial workspaces
/// audit cleanly); a registered function missing from a *present* file is
/// an error.
pub const SITES: &[Site] = &[
    Site {
        file_suffix: "engine/src/envelope.rs",
        func: "encode",
        req: Requirement::All,
        why: "the wire writer must serialize every variant",
    },
    Site {
        file_suffix: "engine/src/envelope.rs",
        func: "decode",
        req: Requirement::All,
        why: "the wire reader's tag match has a wildcard error arm rustc cannot check",
    },
    Site {
        file_suffix: "engine/src/envelope.rs",
        func: "wire",
        req: Requirement::Only(&[
            "Data",
            "Silence",
            "Probe",
            "ReplayRequest",
            "ReplayDone",
            "TrimAck",
            "Eos",
            "StandbyInput",
        ]),
        why: "per-wire routing: every wire-scoped variant must expose its WireId",
    },
    Site {
        file_suffix: "engine/src/envelope.rs",
        func: "faultable",
        req: Requirement::Only(&["Data", "Silence"]),
        why: "the fault injector may only disturb payload traffic",
    },
    Site {
        file_suffix: "engine/src/core.rs",
        func: "handle",
        req: Requirement::All,
        why: "the engine delivery loop is protocol-total: unhandled kinds stall replay",
    },
    Site {
        file_suffix: "engine/src/standby.rs",
        func: "on_envelope",
        req: Requirement::Only(&["StandbyCheckpoint", "StandbyInput", "Die"]),
        why: "the warm-standby plane must keep consuming its replication stream",
    },
    Site {
        file_suffix: "engine/src/supervise.rs",
        func: "start",
        req: Requirement::Only(&["Heartbeat"]),
        why: "the failure detector must keep reading liveness beacons",
    },
    Site {
        file_suffix: "engine/src/cluster.rs",
        func: "spawn_replay_service",
        req: Requirement::Only(&["ReplayRequest", "Die"]),
        why: "the replay service must answer replay requests and shut down on Die",
    },
];

/// Runs the protocol pass: checks every registered site against the
/// `Envelope` enum found in the graph. No enum, no findings (fixture sets
/// without a protocol are fine).
pub fn protocol_pass(units: &[FileUnit], graph: &SymbolGraph) -> Vec<PassHit> {
    let Some(envelope) = graph.enums.iter().find(|e| e.name == "Envelope") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for site in SITES {
        let Some(unit) = units.iter().find(|u| u.rel.ends_with(site.file_suffix)) else {
            continue;
        };
        let site_fns: Vec<usize> = (0..graph.fns.len())
            .filter(|&i| graph.fns[i].file == unit.rel && graph.fns[i].name == site.func)
            .collect();
        if site_fns.is_empty() {
            out.push(PassHit {
                file: unit.rel.clone(),
                line: 1,
                rule: RuleId::EnvelopeNonexhaustive,
                message: format!(
                    "registered Envelope site `{}` is missing from this file; \
                     update the site registry in crates/lint/src/protocol.rs \
                     if it moved ({})",
                    site.func, site.why
                ),
                path: Vec::new(),
            });
            continue;
        }
        let mentioned = |variant: &str| {
            site_fns.iter().any(|&i| {
                graph.fns[i]
                    .qualified_refs
                    .iter()
                    .any(|(q, m)| q == "Envelope" && m == variant)
            })
        };
        let required: Vec<&str> = match site.req {
            Requirement::All => envelope.variants.iter().map(|v| v.as_str()).collect(),
            Requirement::Only(list) => list.to_vec(),
        };
        let missing: Vec<&str> = required.into_iter().filter(|v| !mentioned(v)).collect();
        if !missing.is_empty() {
            let line = graph.fns[site_fns[0]].line;
            out.push(PassHit {
                file: unit.rel.clone(),
                line,
                rule: RuleId::EnvelopeNonexhaustive,
                message: format!(
                    "`{}` no longer handles registered Envelope variant(s) {}; \
                     {} — handle them or update the site registry in \
                     crates/lint/src/protocol.rs",
                    site.func,
                    missing.join(", "),
                    site.why
                ),
                path: missing
                    .iter()
                    .map(|v| {
                        format!(
                            "{}:{}: variant `Envelope::{}` declared here",
                            envelope.file, envelope.line, v
                        )
                    })
                    .collect(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::test_ranges;
    use crate::lexer::lex;
    use crate::manifest::tier_for;
    use crate::symbols::FileUnit;

    fn run(files: &[(&str, &str)]) -> Vec<PassHit> {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let excluded = test_ranges(&lexed.tokens);
                FileUnit {
                    rel: rel.to_string(),
                    tier: tier_for(rel),
                    lexed,
                    excluded,
                }
            })
            .collect();
        let graph = SymbolGraph::build(&units);
        protocol_pass(&units, &graph)
    }

    const MINI_ENUM: &str = "pub enum Envelope { Data { wire: u8 }, Die }\n";

    #[test]
    fn complete_sites_pass() {
        let hits = run(&[(
            "crates/engine/src/envelope.rs",
            &format!(
                "{MINI_ENUM}\
                 impl Envelope {{\n\
                     fn encode(&self) -> u8 {{ match self {{ Envelope::Data {{ .. }} => 0, Envelope::Die => 1 }} }}\n\
                     fn decode(t: u8) -> u8 {{ match t {{ 0 => 0, _ => {{ let _ = Envelope::Data {{ wire: 0 }}; let _ = Envelope::Die; 1 }} }} }}\n\
                     fn wire(&self) -> u8 {{ match self {{ Envelope::Data {{ wire }} => *wire, _ => 0 }} }}\n\
                     fn faultable(&self) -> bool {{ matches!(self, Envelope::Data {{ .. }}) }}\n\
                 }}\n"
            ),
        )]);
        // `wire` and `faultable` Only-sets include variants this mini enum
        // lacks (Silence etc.) — those registered names are still required.
        // Use a dedicated registry subset instead: just check encode/decode
        // style sites pass by asserting no finding mentions them.
        assert!(
            !hits
                .iter()
                .any(|h| h.message.contains("`encode`") || h.message.contains("`decode`")),
            "{hits:?}"
        );
    }

    #[test]
    fn dropped_variant_fires() {
        let hits = run(&[(
            "crates/engine/src/core.rs",
            &format!(
                "{MINI_ENUM}\
                 pub fn handle(e: Envelope) -> u8 {{ match e {{ Envelope::Data {{ .. }} => 0, _ => 1 }} }}\n"
            ),
        )]);
        let h = hits
            .iter()
            .find(|h| h.message.contains("`handle`"))
            .expect("handle finding");
        assert_eq!(h.rule, RuleId::EnvelopeNonexhaustive);
        assert!(h.message.contains("Die"), "{}", h.message);
        assert!(!h.path.is_empty());
    }

    #[test]
    fn missing_registered_fn_in_present_file_fires() {
        let hits = run(&[(
            "crates/engine/src/standby.rs",
            &format!("{MINI_ENUM}fn other() {{}}\n"),
        )]);
        assert!(
            hits.iter()
                .any(|h| h.message.contains("`on_envelope`") && h.message.contains("missing")),
            "{hits:?}"
        );
    }

    #[test]
    fn no_envelope_enum_means_no_findings() {
        let hits = run(&[("crates/engine/src/core.rs", "pub fn handle() {}")]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn absent_files_are_skipped() {
        // Only the enum's own file present: registry sites elsewhere skip.
        let hits = run(&[("crates/engine/src/standby.rs", MINI_ENUM)]);
        // standby.rs IS present and lacks on_envelope → that one fires;
        // core.rs / envelope.rs / supervise.rs sites must not.
        assert!(hits.iter().all(|h| h.file.contains("standby")), "{hits:?}");
    }
}
