//! Fixture tests for the cross-file passes (taint, protocol
//! exhaustiveness, concurrency discipline), plus the fixture-manifest
//! sync gate and the analyzer's self-audit.
//!
//! Unlike `rule_fixtures.rs` (single files through `audit_source`),
//! these feed multi-file workspaces through `audit_sources` so the
//! symbol graph, call resolution, and path witnesses are all exercised.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use tart_lint::{audit_sources, build_graph, Audit, RuleId};

/// Runs the full analyzer over `(workspace-relative path, source)` pairs.
fn audit(files: &[(&str, &str)]) -> Audit {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    audit_sources(&owned)
}

fn fired(a: &Audit) -> Vec<RuleId> {
    a.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- taint

const TAINT_SOURCE: &str = include_str!("fixtures/taint_source.rs");
const TAINT_RELAY: &str = include_str!("fixtures/taint_relay.rs");
const TAINT_SINK: &str = include_str!("fixtures/taint_sink.rs");

#[test]
fn taint_flow_crosses_three_files_with_a_full_witness_path() {
    let a = audit(&[
        ("crates/obs/src/source.rs", TAINT_SOURCE),
        ("crates/obs/src/relay.rs", TAINT_RELAY),
        ("crates/sched/src/sink.rs", TAINT_SINK),
    ]);
    assert_eq!(fired(&a), vec![RuleId::TaintFlow], "{:?}", a.findings);
    let f = &a.findings[0];
    assert_eq!(f.file, "crates/sched/src/sink.rs");
    // The witness walks caller → relay → raw read, one frame per file.
    assert_eq!(f.path.len(), 3, "{:?}", f.path);
    assert!(f.path[0].contains("sink.rs") && f.path[0].contains("schedule_deadline"));
    assert!(f.path[1].contains("relay.rs") && f.path[1].contains("observed_latency"));
    assert!(f.path[2].contains("source.rs") && f.path[2].contains("WALLCLOCK"));
}

#[test]
fn taint_flow_silent_when_the_chain_has_no_raw_read() {
    // Without the source file, `stamp_ns` resolves to nothing and the
    // relay is untainted: the deterministic call edge is clean.
    let a = audit(&[
        ("crates/obs/src/relay.rs", TAINT_RELAY),
        ("crates/sched/src/sink.rs", TAINT_SINK),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn taint_flow_suppressed_by_a_reasoned_allow_at_the_call_edge() {
    let a = audit(&[
        ("crates/obs/src/source.rs", TAINT_SOURCE),
        ("crates/obs/src/relay.rs", TAINT_RELAY),
        (
            "crates/sched/src/sink.rs",
            include_str!("fixtures/taint_sink_allowed.rs"),
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert_eq!(a.suppressed(), 1);
    assert!(a.suppressions.iter().all(|s| s.reason.is_some()));
}

// ------------------------------------------------------------- protocol

#[test]
fn envelope_nonexhaustive_fires_on_both_all_requirement_sites() {
    let a = audit(&[(
        "crates/engine/src/envelope.rs",
        include_str!("fixtures/envelope_nonexhaustive.rs"),
    )]);
    assert_eq!(
        fired(&a),
        vec![RuleId::EnvelopeNonexhaustive, RuleId::EnvelopeNonexhaustive],
        "{:?}",
        a.findings
    );
    // Both findings name the missing variant and land on the fn lines.
    for f in &a.findings {
        assert!(f.message.contains("Bogus"), "{:?}", f);
        assert!(!f.path.is_empty(), "witness should point at the variant");
    }
}

#[test]
fn envelope_exhaustive_is_clean() {
    let a = audit(&[(
        "crates/engine/src/envelope.rs",
        include_str!("fixtures/envelope_exhaustive.rs"),
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn envelope_nonexhaustive_suppressed_at_the_fn_line() {
    let a = audit(&[(
        "crates/engine/src/envelope.rs",
        include_str!("fixtures/envelope_nonexhaustive_allowed.rs"),
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert_eq!(a.suppressed(), 2);
}

// ---------------------------------------------------------- concurrency

#[test]
fn lock_across_send_pos_neg_and_suppressed() {
    let pos = audit(&[(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/lock_across_send_pos.rs"),
    )]);
    assert_eq!(
        fired(&pos),
        vec![RuleId::LockAcrossSend],
        "{:?}",
        pos.findings
    );
    assert!(pos.findings[0].message.contains("guard `guard`"));

    let neg = audit(&[(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/lock_across_send_neg.rs"),
    )]);
    assert!(neg.findings.is_empty(), "{:?}", neg.findings);

    let sup = audit(&[(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/lock_across_send_allowed.rs"),
    )]);
    assert!(sup.findings.is_empty(), "{:?}", sup.findings);
    assert_eq!(sup.suppressed(), 1);
}

#[test]
fn lock_across_send_is_an_ops_plane_freedom() {
    // The same guarded send in an ops-tier file is not a finding: ops
    // threads own their queues and may block on them.
    let a = audit(&[(
        "crates/engine/src/router.rs",
        include_str!("fixtures/lock_across_send_pos.rs"),
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn seqlock_pos_neg_and_suppressed() {
    let pos = audit(&[(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/seqlock_pos.rs"),
    )]);
    assert_eq!(
        fired(&pos),
        vec![RuleId::SeqlockMisuse],
        "{:?}",
        pos.findings
    );
    assert!(pos.findings[0].message.contains("epoch"));

    let neg = audit(&[(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/seqlock_neg.rs"),
    )]);
    assert!(neg.findings.is_empty(), "{:?}", neg.findings);

    let sup = audit(&[(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/seqlock_allowed.rs"),
    )]);
    assert!(sup.findings.is_empty(), "{:?}", sup.findings);
    assert_eq!(sup.suppressed(), 1);
}

// ------------------------------------------------------- manifest gate

#[test]
fn fixture_manifest_is_in_sync_with_the_directory() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let on_disk: BTreeSet<String> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    let listed: BTreeSet<String> = include_str!("fixtures/MANIFEST")
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            l.split(" — ")
                .next()
                .expect("manifest line has `name — purpose` form")
                .trim()
                .to_string()
        })
        .collect();
    let untracked: Vec<_> = on_disk.difference(&listed).collect();
    let stale: Vec<_> = listed.difference(&on_disk).collect();
    assert!(
        untracked.is_empty() && stale.is_empty(),
        "fixture MANIFEST out of sync — untracked: {untracked:?}, stale: {stale:?}"
    );
}

// ----------------------------------------------------------- self-audit

#[test]
fn the_analyzer_maps_its_own_pass_pipeline() {
    // Build the symbol graph over the lint crate's own sources and check
    // that the audit engine is call-connected to all three workspace
    // passes — a smoke test that fn extraction and call resolution work
    // on real (not fixture) code.
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files: Vec<(String, String)> = fs::read_dir(&src_dir)
        .expect("lint src dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "rs").unwrap_or(false))
        .map(|p| {
            let rel = format!(
                "crates/lint/src/{}",
                p.file_name().unwrap().to_string_lossy()
            );
            (rel, fs::read_to_string(&p).expect("readable source"))
        })
        .collect();
    files.sort();
    let g = build_graph(&files);

    let idx_of = |name: &str| {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` missing from the self-graph"))
    };
    let engine = idx_of("audit_sources");
    for pass in ["taint_pass", "protocol_pass", "concurrency_pass"] {
        let target = idx_of(pass);
        let reached = g.fns[engine]
            .calls
            .iter()
            .any(|c| g.resolve(c).contains(&target));
        assert!(reached, "audit_sources has no call edge to `{pass}`");
    }
}
