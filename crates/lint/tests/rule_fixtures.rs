//! Fixture-based rule tests: every rule has a positive fixture it must fire
//! on and a negative fixture it must stay silent on, plus suppression, tier,
//! lexer-inertness, and JSON-schema checks.
//!
//! Fixtures live under `tests/fixtures/` — a directory `audit_workspace`
//! deliberately skips, so the positive fixtures never trip the real audit.

use tart_lint::{audit_source, render_json, Audit, RuleId, Severity};

/// Audits fixture text as if it were a deterministic-tier production file.
fn audit_det(src: &str) -> Audit {
    audit_at("crates/sched/src/fixture.rs", src)
}

fn audit_at(rel_path: &str, src: &str) -> Audit {
    let mut a = Audit::default();
    audit_source(rel_path, src, &mut a);
    a.files_scanned = 1;
    a
}

fn fired_rules(a: &Audit) -> Vec<RuleId> {
    a.findings.iter().map(|f| f.rule).collect()
}

/// The positive fixture fires exactly `rule` (possibly multiple times), and
/// the negative fixture is completely clean.
fn assert_pos_neg(rule: RuleId, pos: &str, neg: &str) {
    let p = audit_det(pos);
    assert!(
        !p.findings.is_empty(),
        "{} positive fixture produced no findings",
        rule.as_str()
    );
    assert!(
        fired_rules(&p).iter().all(|r| *r == rule),
        "{} positive fixture fired other rules: {:?}",
        rule.as_str(),
        p.findings
    );
    let n = audit_det(neg);
    assert!(
        n.findings.is_empty(),
        "{} negative fixture fired: {:?}",
        rule.as_str(),
        n.findings
    );
}

#[test]
fn wallclock_pos_and_neg() {
    assert_pos_neg(
        RuleId::Wallclock,
        include_str!("fixtures/wallclock_pos.rs"),
        include_str!("fixtures/wallclock_neg.rs"),
    );
}

#[test]
fn ambient_rand_pos_and_neg() {
    assert_pos_neg(
        RuleId::AmbientRand,
        include_str!("fixtures/ambient_rand_pos.rs"),
        include_str!("fixtures/ambient_rand_neg.rs"),
    );
}

#[test]
fn hash_iter_pos_and_neg() {
    assert_pos_neg(
        RuleId::HashIter,
        include_str!("fixtures/hash_iter_pos.rs"),
        include_str!("fixtures/hash_iter_neg.rs"),
    );
}

#[test]
fn ambient_env_pos_and_neg() {
    assert_pos_neg(
        RuleId::AmbientEnv,
        include_str!("fixtures/ambient_env_pos.rs"),
        include_str!("fixtures/ambient_env_neg.rs"),
    );
}

#[test]
fn unsafe_pos_and_neg() {
    assert_pos_neg(
        RuleId::Unsafe,
        include_str!("fixtures/unsafe_pos.rs"),
        include_str!("fixtures/unsafe_neg.rs"),
    );
}

#[test]
fn float_accum_pos_and_neg() {
    assert_pos_neg(
        RuleId::FloatAccum,
        include_str!("fixtures/float_accum_pos.rs"),
        include_str!("fixtures/float_accum_neg.rs"),
    );
}

#[test]
fn float_accum_is_warn_level() {
    let a = audit_det(include_str!("fixtures/float_accum_pos.rs"));
    assert_eq!(a.errors(), 0, "{:?}", a.findings);
    assert!(a.warnings() >= 1);
    assert!(a.findings.iter().all(|f| f.severity == Severity::Warn));
}

#[test]
fn documented_allows_suppress_and_are_counted() {
    let a = audit_det(include_str!("fixtures/allow_suppression.rs"));
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // Both forms (preceding-line and trailing) matched exactly one hit each.
    assert_eq!(a.suppressed(), 2);
    assert_eq!(a.suppressions.len(), 2);
    assert!(a.suppressions.iter().all(|s| s.reason.is_some()));
    assert!(a.suppressions.iter().all(|s| s.hits == 1));
}

#[test]
fn hazards_in_strings_and_comments_are_inert() {
    let a = audit_det(include_str!("fixtures/strings_and_comments.rs"));
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert!(a.suppressions.is_empty());
}

#[test]
fn ops_tier_permits_hash_iter_and_wallclock_but_not_rand() {
    // chaos.rs is declared Ops in the manifest. Since the taint pass
    // guards the deterministic→ops boundary path-sensitively, raw
    // wall-clock reads inside the ops plane no longer need per-line
    // allows — but ambient randomness stays fenced everywhere (a seeded
    // DetRng is available on both planes).
    let hash = audit_at(
        "crates/engine/src/chaos.rs",
        include_str!("fixtures/hash_iter_pos.rs"),
    );
    assert!(hash.findings.is_empty(), "{:?}", hash.findings);

    let clock = audit_at(
        "crates/engine/src/chaos.rs",
        include_str!("fixtures/wallclock_pos.rs"),
    );
    assert_eq!(clock.errors(), 0, "{:?}", clock.findings);

    let rand = audit_at(
        "crates/engine/src/chaos.rs",
        include_str!("fixtures/ambient_rand_pos.rs"),
    );
    assert!(rand.errors() >= 1, "{:?}", rand.findings);
}

#[test]
fn verified_replay_paths_audit_at_full_severity() {
    // The hashing and bisection modules back the divergence detector; a
    // wall-clock read there would make replay disagree with itself. Their
    // explicit manifest entries must keep them fenced at error severity.
    for path in [
        "crates/model/src/hash.rs",
        "crates/engine/src/checkpoint.rs",
        "crates/engine/src/verify.rs",
    ] {
        let a = audit_at(path, include_str!("fixtures/wallclock_pos.rs"));
        assert_eq!(a.errors(), 1, "{path}: {:?}", a.findings);
        let h = audit_at(path, include_str!("fixtures/hash_iter_pos.rs"));
        assert!(
            !h.findings.is_empty(),
            "{path}: hash-iteration hazards must fire in the fenced tier"
        );
    }
}

#[test]
fn exempt_tier_is_not_scanned() {
    let a = audit_at(
        "crates/bench/src/lib.rs",
        include_str!("fixtures/wallclock_pos.rs"),
    );
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn json_report_has_the_documented_schema() {
    let mut a = audit_det(include_str!("fixtures/wallclock_pos.rs"));
    let mut b = audit_det(include_str!("fixtures/allow_suppression.rs"));
    a.findings.append(&mut b.findings);
    a.suppressions.append(&mut b.suppressions);
    a.files_scanned = 2;

    let json = render_json(&a);
    for key in [
        "\"version\":2",
        "\"path\":[]",
        "\"files_scanned\":2",
        "\"summary\":{\"errors\":1,\"warnings\":0,\"suppressed\":2}",
        "\"findings\":[",
        "\"rule\":\"WALLCLOCK\"",
        "\"severity\":\"error\"",
        "\"suppressions\":[",
        "\"rules\":[\"WALLCLOCK\"]",
        "\"hits\":1",
        "\"reason\":\"fixture: the sanctioned boundary read\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Hand-rolled JSON stays structurally balanced even with escaped text.
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0);
    assert!(
        !json.contains('\n'),
        "report is a single line for CI tooling"
    );
}
