//! The determinism fence, enforced by `cargo test`: audits the entire
//! workspace and fails if any error-level finding or undocumented
//! suppression exists. This is the same pass `tart-lint --deny` runs in CI;
//! shipping it as a test means a plain local `cargo test` catches a fence
//! violation before a PR does.

use std::path::Path;

use tart_lint::{audit_workspace, find_workspace_root, render_text, Severity};

#[test]
fn workspace_passes_the_determinism_audit() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(
        root.join("crates").is_dir(),
        "workspace root not found from {}",
        env!("CARGO_MANIFEST_DIR")
    );

    let audit = audit_workspace(&root).expect("workspace walk failed");

    // Sanity: the walk actually covered the workspace (81 files at the time
    // of writing; a collapse to near-zero means the walker broke, which
    // would make a \"clean\" audit meaningless).
    assert!(
        audit.files_scanned >= 60,
        "only {} files scanned — audit walker is broken",
        audit.files_scanned
    );

    let errors: Vec<String> = audit
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule.as_str(), f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "determinism fence violated:\n{}\nfull report:\n{}",
        errors.join("\n"),
        render_text(&audit)
    );

    // Every suppression must carry a reason (UNDOC-ALLOW also catches this
    // as an error; this assertion keeps the invariant explicit even if
    // severities are retuned later).
    let undocumented: Vec<_> = audit
        .suppressions
        .iter()
        .filter(|s| s.reason.is_none())
        .map(|s| format!("{}:{}", s.file, s.line))
        .collect();
    assert!(
        undocumented.is_empty(),
        "undocumented allow(s): {}",
        undocumented.join(", ")
    );
}
