//! Positive fixture: reads the process environment in deterministic code.

pub fn node_name() -> String {
    std::env::var("TART_NODE").unwrap_or_default()
}
