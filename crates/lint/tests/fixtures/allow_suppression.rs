//! Fixture: documented suppressions in both positions (preceding line and
//! trailing comment) silence their findings.

pub struct Boundary {
    epoch: std::time::Instant,
}

impl Boundary {
    pub fn new() -> Self {
        Boundary {
            // tart-lint: allow(WALLCLOCK) -- fixture: the sanctioned boundary read
            epoch: std::time::Instant::now(),
        }
    }

    pub fn restart(&mut self) {
        self.epoch = std::time::Instant::now(); // tart-lint: allow(WALLCLOCK) -- fixture: trailing form
    }
}
