//! Taint fixture, hop 0: an ops-plane helper that reads the wall clock
//! and returns a value derived from it. Audited as an `crates/obs/` file,
//! where the raw read is locally legal — but it seeds the taint set.

pub fn stamp_ns() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos()
}
