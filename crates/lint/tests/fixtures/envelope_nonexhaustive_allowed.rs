//! Suppressed fixture for ENVELOPE-NONEXHAUSTIVE: the same `Bogus` gap
//! as the positive fixture, but both `All`-requirement sites carry a
//! reasoned allow on the line above the `fn` — where the finding lands.

pub enum Envelope {
    Data,
    Silence,
    Probe,
    ReplayRequest,
    ReplayDone,
    TrimAck,
    Eos,
    StandbyInput,
    Bogus,
}

// tart-lint: allow(ENVELOPE-NONEXHAUSTIVE) -- fixture: Bogus is a staged variant behind a feature gate
pub fn encode(e: &Envelope) -> u8 {
    match e {
        Envelope::Data => 0,
        Envelope::Silence => 1,
        Envelope::Probe => 2,
        Envelope::ReplayRequest => 3,
        Envelope::ReplayDone => 4,
        Envelope::TrimAck => 5,
        Envelope::Eos => 6,
        Envelope::StandbyInput => 7,
        _ => 255,
    }
}

// tart-lint: allow(ENVELOPE-NONEXHAUSTIVE) -- fixture: Bogus is a staged variant behind a feature gate
pub fn decode(tag: u8) -> Option<Envelope> {
    Some(match tag {
        0 => Envelope::Data,
        1 => Envelope::Silence,
        2 => Envelope::Probe,
        3 => Envelope::ReplayRequest,
        4 => Envelope::ReplayDone,
        5 => Envelope::TrimAck,
        6 => Envelope::Eos,
        7 => Envelope::StandbyInput,
        _ => return None,
    })
}

pub fn wire(e: &Envelope) -> bool {
    matches!(
        e,
        Envelope::Data
            | Envelope::Silence
            | Envelope::Probe
            | Envelope::ReplayRequest
            | Envelope::ReplayDone
            | Envelope::TrimAck
            | Envelope::Eos
            | Envelope::StandbyInput
    )
}

pub fn faultable(e: &Envelope) -> bool {
    matches!(e, Envelope::Data | Envelope::Silence)
}
