//! Suppressed fixture for LOCK-ACROSS-SEND: the same guarded send as the
//! positive fixture, fenced by a reasoned allow on the line above the
//! send (where the finding lands).

pub fn flush_counter(m: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = m.lock().unwrap();
    // tart-lint: allow(LOCK-ACROSS-SEND) -- fixture: bounded channel with a dedicated consumer, send cannot block
    tx.send(*guard).ok();
}
