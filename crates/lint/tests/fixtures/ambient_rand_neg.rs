//! Negative fixture: randomness is seeded from logged configuration.

use tart_stats::DetRng;

pub fn jitter_ns(seed: u64) -> u64 {
    let mut rng = DetRng::new(seed);
    rng.next_u64() % 1_000
}
