//! Suppressed fixture for SEQLOCK-MISUSE: the same unbracketed write as
//! the positive fixture, fenced by a reasoned allow on the line above
//! the store (where the finding lands).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct LinkState {
    pub seq: AtomicU64,
    pub epoch: AtomicU64,
}

impl LinkState {
    pub fn poke(&self) {
        // tart-lint: allow(SEQLOCK-MISUSE) -- fixture: called before the state is shared, no snapshot can race
        self.epoch.store(1, Ordering::SeqCst);
    }
}
