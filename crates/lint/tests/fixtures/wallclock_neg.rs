//! Negative fixture: time flows through virtual time only.

use tart_vtime::VirtualTime;

pub fn advance(now: VirtualTime, step_ticks: u64) -> VirtualTime {
    VirtualTime::from_ticks(now.as_ticks() + step_ticks)
}
