//! Positive fixture: `unsafe` outside the (empty) allowlist.

pub fn first(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
