//! Positive fixture for ENVELOPE-NONEXHAUSTIVE: the enum grows a new
//! `Bogus` variant, but `encode` and `decode` — whose registry entries
//! demand coverage of *every* variant — hide the gap behind wildcard
//! arms that rustc is perfectly happy with. The `wire` and `faultable`
//! sites carry `Only(..)` requirements and stay satisfied, so exactly
//! the two `All` sites must fire.

pub enum Envelope {
    Data,
    Silence,
    Probe,
    ReplayRequest,
    ReplayDone,
    TrimAck,
    Eos,
    StandbyInput,
    Bogus,
}

pub fn encode(e: &Envelope) -> u8 {
    match e {
        Envelope::Data => 0,
        Envelope::Silence => 1,
        Envelope::Probe => 2,
        Envelope::ReplayRequest => 3,
        Envelope::ReplayDone => 4,
        Envelope::TrimAck => 5,
        Envelope::Eos => 6,
        Envelope::StandbyInput => 7,
        _ => 255,
    }
}

pub fn decode(tag: u8) -> Option<Envelope> {
    Some(match tag {
        0 => Envelope::Data,
        1 => Envelope::Silence,
        2 => Envelope::Probe,
        3 => Envelope::ReplayRequest,
        4 => Envelope::ReplayDone,
        5 => Envelope::TrimAck,
        6 => Envelope::Eos,
        7 => Envelope::StandbyInput,
        _ => return None,
    })
}

pub fn wire(e: &Envelope) -> bool {
    matches!(
        e,
        Envelope::Data
            | Envelope::Silence
            | Envelope::Probe
            | Envelope::ReplayRequest
            | Envelope::ReplayDone
            | Envelope::TrimAck
            | Envelope::Eos
            | Envelope::StandbyInput
    )
}

pub fn faultable(e: &Envelope) -> bool {
    matches!(e, Envelope::Data | Envelope::Silence)
}
