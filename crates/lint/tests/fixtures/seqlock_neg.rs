//! Negative fixture for SEQLOCK-MISUSE: every write to a protected field
//! happens inside the `update` method itself or inside an `update(|s| …)`
//! call span — the two bracketed forms the discipline sanctions.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct LinkState {
    pub seq: AtomicU64,
    pub epoch: AtomicU64,
}

impl LinkState {
    pub fn update<F: FnOnce(&LinkState)>(&self, f: F) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        f(self);
        self.seq.fetch_add(1, Ordering::SeqCst);
    }
}

pub fn reconnect(state: &LinkState) {
    state.update(|st| {
        st.epoch.store(1, Ordering::SeqCst);
    });
}
