//! Positive fixture for SEQLOCK-MISUSE: `LinkState` follows the seqlock
//! discipline (a `seq: AtomicU64` field marks it), but `poke` writes a
//! protected field outside any `update()` group — a concurrent snapshot
//! can observe the new epoch without the sequence bump that frames it.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct LinkState {
    pub seq: AtomicU64,
    pub epoch: AtomicU64,
}

impl LinkState {
    pub fn poke(&self) {
        self.epoch.store(1, Ordering::SeqCst);
    }
}
