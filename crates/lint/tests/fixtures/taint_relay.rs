//! Taint fixture, hop 1: an innocent-looking ops-plane helper whose
//! return value is clock-derived one call away. Contains no hazard token
//! itself — only the interprocedural pass can see through it.

pub fn observed_latency() -> u64 {
    (stamp_ns() / 2) as u64
}
