//! Taint fixture, hop 2: a deterministic-tier scheduler function that
//! imports the laundered clock reading. Audited as a `crates/sched/`
//! file; the call below is the TAINT-FLOW finding, with a three-frame
//! witness path ending at the raw read in `taint_source.rs`.

pub fn schedule_deadline() -> u64 {
    observed_latency() + 10
}
