//! Positive fixture: hash-ordered container in checkpointable state.

use std::collections::HashMap;

pub struct Tally {
    counts: HashMap<u32, u64>,
}

impl Tally {
    pub fn snapshot(&self) -> Vec<(u32, u64)> {
        self.counts.iter().map(|(k, v)| (*k, *v)).collect()
    }
}
