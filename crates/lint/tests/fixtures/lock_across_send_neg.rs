//! Negative fixture for LOCK-ACROSS-SEND: every send happens after the
//! guard has died — by explicit `drop`, by scope exit, or because the
//! binding was never a guard (pattern bindings are not guard names).

pub fn flush_dropped(m: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = m.lock().unwrap();
    let value = *guard;
    drop(guard);
    tx.send(value).ok();
}

pub fn flush_scoped(m: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let mut value = 0;
    {
        let guard = m.lock().unwrap();
        value = *guard;
    }
    tx.send(value).ok();
}

pub fn patterns_are_not_guards(slots: &[Option<u64>], tx: &std::sync::mpsc::Sender<u64>) {
    if let Some(first) = slots.first().copied().flatten() {
        tx.send(first).ok();
    }
}
