//! Suppressed variant of the taint sink: the same deterministic-tier
//! import of a clock-derived value, fenced by a reasoned allow on the
//! line above the call edge (where TAINT-FLOW findings land).

pub fn schedule_deadline() -> u64 {
    // tart-lint: allow(TAINT-FLOW) -- fixture: the value is logged before use, making replay see the same reading
    observed_latency() + 10
}
