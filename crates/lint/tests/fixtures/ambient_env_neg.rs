//! Negative fixture: configuration arrives as a logged message.

pub struct Config {
    pub node_name: String,
}

pub fn node_name(cfg: &Config) -> &str {
    &cfg.node_name
}
