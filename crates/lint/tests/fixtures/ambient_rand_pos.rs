//! Positive fixture: draws ambient entropy inside the replayable core.

pub fn jitter_ns() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..1_000)
}
