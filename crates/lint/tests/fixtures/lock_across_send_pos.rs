//! Positive fixture for LOCK-ACROSS-SEND: a deterministic-tier handler
//! sends on a channel while a mutex guard is still live. Under
//! contention the send can block with the lock held and invert delivery
//! order between components.

pub fn flush_counter(m: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = m.lock().unwrap();
    tx.send(*guard).ok();
}
