//! Negative fixture: integer reduction is order-insensitive.

pub fn total(xs: &[u64]) -> u64 {
    xs.iter().copied().sum::<u64>()
}
