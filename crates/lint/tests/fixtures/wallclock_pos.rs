//! Positive fixture: a deterministic-tier handler that reads the wall clock.

pub fn handler_duration_ns() -> u64 {
    let started = std::time::Instant::now();
    do_work();
    started.elapsed().as_nanos() as u64
}

fn do_work() {}
