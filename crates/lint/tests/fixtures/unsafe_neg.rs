//! Negative fixture: safe, checked access.

pub fn first(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}
