//! Negative fixture: ordered container, deterministic iteration.

use std::collections::BTreeMap;

pub struct Tally {
    counts: BTreeMap<u32, u64>,
}

impl Tally {
    pub fn snapshot(&self) -> Vec<(u32, u64)> {
        self.counts.iter().map(|(k, v)| (*k, *v)).collect()
    }
}
