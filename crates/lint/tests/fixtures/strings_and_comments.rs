//! Fixture: hazard names appear only in prose, strings, and comments.
//! `Instant::now()` in this doc comment must not fire.

// Neither does Instant::now(), SystemTime, thread_rng, or HashMap here,
/* nor in a block comment: unsafe { std::env::var("X") } with
   /* nested */ Instant::now() still inert, */
pub fn describe() -> &'static str {
    "Instant::now(), SystemTime::now(), thread_rng(), HashMap, unsafe, \
     std::env::var — all inert inside a string literal"
}

pub fn raw() -> &'static str {
    r#"even raw strings with "quotes" and Instant::now() stay inert"#
}
