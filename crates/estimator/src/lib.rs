//! Virtual-time estimators, calibration, and determinism faults.
//!
//! TART stamps every outgoing message with the virtual time at which it will
//! arrive at the receiver: `out_vt = dequeue_vt + estimate(compute) +
//! estimate(transmission)`. *Any* estimate yielding a future time is correct;
//! performance depends on how closely the estimate tracks real time (§II.E).
//! This crate provides:
//!
//! * [`Estimator`] / [`EstimatorSpec`] — deterministic estimate functions:
//!   the crude [`EstimatorSpec::constant`] ("dumb" estimator, §III.A) and the
//!   linear-in-block-counts [`EstimatorSpec::linear`] form of Eq. 1;
//! * [`Calibrator`] — fits coefficients from measured samples by linear
//!   regression, reproducing the paper's τ = 61.827·ξ₁ fit (Eq. 2, Fig 2);
//! * [`EstimatorSchedule`] + [`DeterminismFault`] — versioned estimators.
//!   Re-calibrating a live estimator changes virtual-time arithmetic, so it
//!   must be logged as a *determinism fault* and re-applied at exactly the
//!   same virtual time during replay (§II.G.4).
//!
//! # Example
//!
//! ```
//! use tart_estimator::{Estimator, EstimatorSpec};
//! use tart_model::{BlockId, Features};
//! use tart_vtime::{VirtualDuration, VirtualTime};
//!
//! // The paper's example: 61000 ticks per loop iteration.
//! let est = EstimatorSpec::linear(VirtualDuration::ZERO, [(BlockId(0), 61_000)]);
//! let sentence_len_3 = Features::single(BlockId(0), 3);
//! let dequeue = VirtualTime::from_ticks(50_000);
//! let arrival = dequeue + est.estimate(&sentence_len_3);
//! assert_eq!(arrival.as_ticks(), 233_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod schedule;
mod spec;

pub use calibrate::{CalibrationError, Calibrator};
pub use schedule::{DeterminismFault, EstimatorSchedule, ScheduleError};
pub use spec::{Estimator, EstimatorSpec};
