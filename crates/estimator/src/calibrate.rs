//! Estimator calibration by linear regression over measured samples.

use std::fmt;

use tart_model::{BlockId, Features};
use tart_stats::{fit_multiple, fit_simple, fit_through_origin, Fit, MultiFit, MultiFitError};
use tart_vtime::VirtualDuration;

use crate::EstimatorSpec;

/// An error produced during calibration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalibrationError {
    /// Not enough samples were collected to fit reliably.
    TooFewSamples {
        /// Samples required.
        need: usize,
        /// Samples available.
        have: usize,
    },
    /// The chosen block never executed (regressor identically zero) or had
    /// no variance, so no coefficient can be estimated.
    DegenerateRegressor {
        /// The offending block.
        block: BlockId,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::TooFewSamples { need, have } => {
                write!(f, "calibration needs {need} samples, only {have} collected")
            }
            CalibrationError::DegenerateRegressor { block } => {
                write!(f, "block {block} has no usable variation in the samples")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Collects `(features, measured real time)` samples and fits estimator
/// coefficients by linear regression.
///
/// This reproduces §II.H: "Before execution, a rough estimate of the βᵢ's is
/// made based upon known costs per instruction. Later, after some execution
/// samples are taken … a linear regression is taken to fit the
/// coefficients." The paper fits Code Body 1's single coefficient to
/// 61.827 µs/iteration with R² = 0.9154 over 10,000 samples (Fig 2).
///
/// # Example
///
/// ```
/// use tart_estimator::Calibrator;
/// use tart_model::{BlockId, Features};
///
/// let mut cal = Calibrator::new(3);
/// for iters in [1u64, 2, 3, 4] {
///     // Pretend each iteration took exactly 61 827 ticks.
///     cal.add_sample(Features::single(BlockId(0), iters), 61_827 * iters);
/// }
/// let (spec, fit) = cal.fit_through_origin(BlockId(0))?;
/// assert!(fit.r_squared > 0.999);
/// # Ok::<(), tart_estimator::CalibrationError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Calibrator {
    min_samples: usize,
    samples: Vec<(Features, u64)>,
}

impl Calibrator {
    /// Creates a calibrator requiring at least `min_samples` samples before
    /// it will fit (the paper waits for "several hundreds of messages").
    pub fn new(min_samples: usize) -> Self {
        Calibrator {
            min_samples,
            samples: Vec::new(),
        }
    }

    /// Records one handler invocation: its feature counts and its measured
    /// real duration in ticks (nanoseconds).
    pub fn add_sample(&mut self, features: Features, measured_ticks: u64) {
        self.samples.push((features, measured_ticks));
    }

    /// Number of samples collected so far.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` once enough samples have accumulated to fit.
    pub fn is_ready(&self) -> bool {
        self.samples.len() >= self.min_samples
    }

    /// Discards all samples (used after a successful re-calibration so the
    /// next fit reflects only post-fault behaviour).
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Fits `measured = β·ξ(block)` through the origin, the paper's Eq. 2
    /// form, and returns the resulting estimator plus fit diagnostics.
    ///
    /// # Errors
    ///
    /// * [`CalibrationError::TooFewSamples`] before `min_samples` samples;
    /// * [`CalibrationError::DegenerateRegressor`] if `block` never ran.
    pub fn fit_through_origin(
        &self,
        block: BlockId,
    ) -> Result<(EstimatorSpec, Fit), CalibrationError> {
        let (x, y) = self.regressors(block)?;
        if x.iter().all(|&v| v == 0.0) {
            return Err(CalibrationError::DegenerateRegressor { block });
        }
        let fit = fit_through_origin(&x, &y);
        let ticks = non_negative_ticks(fit.slope);
        Ok((EstimatorSpec::per_iteration(block, ticks), fit))
    }

    /// Fits `measured = β₀ + β₁·ξ(block)` and returns the resulting
    /// estimator plus fit diagnostics. Negative fitted values clamp to zero
    /// (estimates must never move virtual time backward).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Calibrator::fit_through_origin`], plus a
    /// degenerate error when the block count never varies.
    pub fn fit_affine(&self, block: BlockId) -> Result<(EstimatorSpec, Fit), CalibrationError> {
        let (x, y) = self.regressors(block)?;
        let first = x[0];
        if x.iter().all(|&v| v == first) {
            return Err(CalibrationError::DegenerateRegressor { block });
        }
        let fit = fit_simple(&x, &y);
        let base = VirtualDuration::from_ticks(non_negative_ticks(fit.intercept));
        let ticks = non_negative_ticks(fit.slope);
        Ok((EstimatorSpec::linear(base, [(block, ticks)]), fit))
    }

    /// Fits the paper's full Eq. 1 form `τ = β₀ + Σᵢ βᵢ·ξᵢ` over several
    /// basic blocks at once, returning a multi-coefficient linear estimator
    /// plus fit diagnostics. Negative fitted coefficients clamp to zero.
    ///
    /// # Errors
    ///
    /// * [`CalibrationError::TooFewSamples`] before `min_samples` samples
    ///   (or fewer samples than coefficients);
    /// * [`CalibrationError::DegenerateRegressor`] if the regressors are
    ///   collinear or constant — the first block is reported.
    pub fn fit_blocks(
        &self,
        blocks: &[BlockId],
    ) -> Result<(EstimatorSpec, MultiFit), CalibrationError> {
        if !self.is_ready() {
            return Err(CalibrationError::TooFewSamples {
                need: self.min_samples,
                have: self.samples.len(),
            });
        }
        let rows: Vec<Vec<f64>> = self
            .samples
            .iter()
            .map(|(f, _)| blocks.iter().map(|b| f.count(*b) as f64).collect())
            .collect();
        let y: Vec<f64> = self.samples.iter().map(|(_, m)| *m as f64).collect();
        let first = blocks.first().copied().unwrap_or(BlockId(0));
        let fit = fit_multiple(&rows, &y).map_err(|e| match e {
            MultiFitError::TooFewSamples => CalibrationError::TooFewSamples {
                need: blocks.len() + 1,
                have: self.samples.len(),
            },
            MultiFitError::Singular => CalibrationError::DegenerateRegressor { block: first },
        })?;
        let base = VirtualDuration::from_ticks(non_negative_ticks(fit.intercept));
        let coeffs: Vec<(BlockId, u64)> = blocks
            .iter()
            .zip(&fit.slopes)
            .map(|(b, s)| (*b, non_negative_ticks(*s)))
            .collect();
        Ok((EstimatorSpec::linear(base, coeffs), fit))
    }

    fn regressors(&self, block: BlockId) -> Result<(Vec<f64>, Vec<f64>), CalibrationError> {
        if !self.is_ready() {
            return Err(CalibrationError::TooFewSamples {
                need: self.min_samples,
                have: self.samples.len(),
            });
        }
        let mut x = Vec::with_capacity(self.samples.len());
        let mut y = Vec::with_capacity(self.samples.len());
        for (features, measured) in &self.samples {
            x.push(features.count(block) as f64);
            y.push(*measured as f64);
        }
        Ok((x, y))
    }
}

fn non_negative_ticks(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        v.round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Estimator;
    use tart_stats::{DetRng, LogNormal, Sample, UniformInt};

    #[test]
    fn exact_samples_recover_exact_coefficient() {
        let mut cal = Calibrator::new(2);
        for iters in 1..=10u64 {
            cal.add_sample(Features::single(BlockId(0), iters), 61_000 * iters);
        }
        let (spec, fit) = cal.fit_through_origin(BlockId(0)).unwrap();
        assert_eq!(spec, EstimatorSpec::per_iteration(BlockId(0), 61_000));
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_shaped_calibration() {
        // Reproduce the shape of Fig 2: 10,000 samples, iterations uniform
        // 1..=19, right-skewed noise around 61 827 ticks/iteration.
        let mut rng = DetRng::seed_from(42);
        let iters = UniformInt::new(1, 19);
        let noise = LogNormal::from_mean_sd(1.0, 0.17);
        let mut cal = Calibrator::new(500);
        for _ in 0..10_000 {
            let k = iters.sample_int(&mut rng);
            let measured = (61_827.0 * k as f64 * noise.sample(&mut rng)) as u64;
            cal.add_sample(Features::single(BlockId(0), k), measured);
        }
        assert!(cal.is_ready());
        let (spec, fit) = cal.fit_through_origin(BlockId(0)).unwrap();
        let coeff = spec.estimate(&Features::single(BlockId(0), 1)).as_ticks();
        assert!(
            (coeff as i64 - 61_827).unsigned_abs() < 1_000,
            "coefficient {coeff} should be near 61 827"
        );
        assert!(
            fit.r_squared > 0.85 && fit.r_squared < 0.99,
            "R² {}",
            fit.r_squared
        );
        assert!(fit.residuals.skewness() > 0.3, "right-skewed residuals");
        assert!(fit.residual_correlation.abs() < 0.1, "good linear fit");
    }

    #[test]
    fn affine_fit_recovers_base_cost() {
        let mut cal = Calibrator::new(2);
        for iters in 0..=20u64 {
            cal.add_sample(Features::single(BlockId(0), iters), 5_000 + 100 * iters);
        }
        let (spec, fit) = cal.fit_affine(BlockId(0)).unwrap();
        assert!((fit.intercept - 5_000.0).abs() < 1.0);
        assert!((fit.slope - 100.0).abs() < 0.01);
        assert_eq!(
            spec.estimate(&Features::single(BlockId(0), 10)).as_ticks(),
            6_000
        );
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let mut cal = Calibrator::new(100);
        cal.add_sample(Features::single(BlockId(0), 1), 10);
        assert!(!cal.is_ready());
        assert_eq!(
            cal.fit_through_origin(BlockId(0)).unwrap_err(),
            CalibrationError::TooFewSamples { need: 100, have: 1 }
        );
        assert_eq!(cal.sample_count(), 1);
    }

    #[test]
    fn degenerate_block_is_an_error() {
        let mut cal = Calibrator::new(1);
        cal.add_sample(Features::single(BlockId(0), 3), 10);
        cal.add_sample(Features::single(BlockId(0), 3), 12);
        // Block 9 never executed.
        assert_eq!(
            cal.fit_through_origin(BlockId(9)).unwrap_err(),
            CalibrationError::DegenerateRegressor { block: BlockId(9) }
        );
        // Affine fit additionally requires variance in the regressor.
        assert_eq!(
            cal.fit_affine(BlockId(0)).unwrap_err(),
            CalibrationError::DegenerateRegressor { block: BlockId(0) }
        );
    }

    #[test]
    fn reset_discards_samples() {
        let mut cal = Calibrator::new(1);
        cal.add_sample(Features::single(BlockId(0), 1), 10);
        cal.reset();
        assert_eq!(cal.sample_count(), 0);
        assert!(!cal.is_ready());
    }

    #[test]
    fn negative_fits_clamp_to_zero() {
        // A pathological sample set with a negative slope.
        let mut cal = Calibrator::new(2);
        cal.add_sample(Features::single(BlockId(0), 1), 100);
        cal.add_sample(Features::single(BlockId(0), 10), 10);
        let (spec, _) = cal.fit_affine(BlockId(0)).unwrap();
        // Slope clamps to 0; base stays positive.
        let small = spec.estimate(&Features::single(BlockId(0), 1));
        let large = spec.estimate(&Features::single(BlockId(0), 100));
        assert_eq!(small, large, "clamped slope predicts constant time");
    }

    #[test]
    fn multi_block_fit_recovers_eq1() {
        // τ = 500 + 61 000·ξ₁ + 2 000·ξ₂ exactly (the paper's Eq. 1 with
        // the loop block and the conditional block).
        let mut cal = Calibrator::new(4);
        for k in 1..=19u64 {
            let cond = k / 2;
            let mut f = Features::single(BlockId(0), k);
            f.add(BlockId(1), cond);
            cal.add_sample(f, 500 + 61_000 * k + 2_000 * cond);
        }
        let (spec, fit) = cal.fit_blocks(&[BlockId(0), BlockId(1)]).unwrap();
        assert!(fit.r_squared > 0.999999);
        let mut probe = Features::single(BlockId(0), 10);
        probe.add(BlockId(1), 4);
        assert_eq!(
            spec.estimate(&probe).as_ticks(),
            500 + 61_000 * 10 + 2_000 * 4
        );
    }

    #[test]
    fn multi_block_fit_rejects_collinear_blocks() {
        let mut cal = Calibrator::new(2);
        for k in 1..=10u64 {
            let mut f = Features::single(BlockId(0), k);
            f.add(BlockId(1), 2 * k); // perfectly collinear
            cal.add_sample(f, 100 * k);
        }
        assert!(matches!(
            cal.fit_blocks(&[BlockId(0), BlockId(1)]),
            Err(CalibrationError::DegenerateRegressor { .. })
        ));
        // Too few samples for the coefficient count.
        let mut tiny = Calibrator::new(1);
        tiny.add_sample(Features::single(BlockId(0), 1), 10);
        tiny.add_sample(Features::single(BlockId(0), 2), 20);
        assert!(matches!(
            tiny.fit_blocks(&[BlockId(0), BlockId(1), BlockId(2)]),
            Err(CalibrationError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn error_display() {
        assert!(CalibrationError::TooFewSamples { need: 5, have: 1 }
            .to_string()
            .contains('5'));
        assert!(CalibrationError::DegenerateRegressor { block: BlockId(2) }
            .to_string()
            .contains("b2"));
    }
}
