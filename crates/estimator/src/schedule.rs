//! Versioned estimators and determinism faults.

use std::fmt;

use bytes::BytesMut;
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_model::Features;
use tart_vtime::{VirtualDuration, VirtualTime};

use crate::{Estimator, EstimatorSpec};

/// A logged record of an estimator re-calibration.
///
/// §II.G.4: "Since detecting and reacting to such a condition
/// non-deterministically affects virtual times, we must treat such a
/// situation as an exception to the determinism principle — a determinism
/// fault. In order for replay to work correctly in the presence of
/// determinism faults, we must log these events synchronously." The record
/// carries everything replay needs: the virtual time of the switch and the
/// new estimator parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterminismFault {
    /// The virtual time from which the new estimator takes effect.
    pub vt: VirtualTime,
    /// The replacement estimator.
    pub new_spec: EstimatorSpec,
}

impl Encode for DeterminismFault {
    fn encode(&self, buf: &mut BytesMut) {
        self.vt.encode(buf);
        self.new_spec.encode(buf);
    }
}

impl Decode for DeterminismFault {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(DeterminismFault {
            vt: VirtualTime::decode(r)?,
            new_spec: EstimatorSpec::decode(r)?,
        })
    }
}

/// An error mutating an [`EstimatorSchedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A re-calibration was requested at or before an existing switch point;
    /// switches must be strictly ordered in virtual time.
    NonMonotonicSwitch {
        /// The requested switch time.
        requested: VirtualTime,
        /// The latest existing switch time.
        latest: VirtualTime,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonMonotonicSwitch { requested, latest } => write!(
                f,
                "estimator switch at {requested} is not after the latest switch at {latest}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An estimator with a history of re-calibrations, each taking effect at a
/// known virtual time.
///
/// During replay "the component must be careful to use the old estimator
/// until reaching time 100,000,000, and only then using the new estimator"
/// (§II.G.4). [`estimate_at`](EstimatorSchedule::estimate_at) implements
/// exactly that lookup.
///
/// # Example
///
/// ```
/// use tart_estimator::{EstimatorSchedule, EstimatorSpec};
/// use tart_model::{BlockId, Features};
/// use tart_vtime::VirtualTime;
///
/// let mut sched = EstimatorSchedule::new(EstimatorSpec::per_iteration(BlockId(0), 61_000));
/// let fault = sched
///     .recalibrate_at(
///         VirtualTime::from_ticks(100_000_000),
///         EstimatorSpec::per_iteration(BlockId(0), 62_000),
///     )?;
/// let f = Features::single(BlockId(0), 1);
/// assert_eq!(sched.estimate_at(VirtualTime::from_ticks(99_999_999), &f).as_ticks(), 61_000);
/// assert_eq!(sched.estimate_at(fault.vt, &f).as_ticks(), 62_000);
/// # Ok::<(), tart_estimator::ScheduleError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EstimatorSchedule {
    /// `(effective_from, spec)` entries; first entry is always at tick zero,
    /// entries strictly increasing in time.
    entries: Vec<(VirtualTime, EstimatorSpec)>,
}

impl EstimatorSchedule {
    /// Creates a schedule whose initial estimator is effective from tick
    /// zero.
    pub fn new(initial: EstimatorSpec) -> Self {
        EstimatorSchedule {
            entries: vec![(VirtualTime::ZERO, initial)],
        }
    }

    /// The estimator in effect at virtual time `vt`.
    pub fn active_at(&self, vt: VirtualTime) -> &EstimatorSpec {
        let idx = self.entries.partition_point(|(from, _)| *from <= vt);
        &self.entries[idx - 1].1
    }

    /// Estimates with whichever estimator is active at `vt`.
    pub fn estimate_at(&self, vt: VirtualTime, features: &Features) -> VirtualDuration {
        self.active_at(vt).estimate(features)
    }

    /// Installs a new estimator effective from `vt`, returning the
    /// [`DeterminismFault`] record that must be logged synchronously before
    /// the new estimator is used.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NonMonotonicSwitch`] unless `vt` is strictly
    /// after every existing switch point.
    pub fn recalibrate_at(
        &mut self,
        vt: VirtualTime,
        spec: EstimatorSpec,
    ) -> Result<DeterminismFault, ScheduleError> {
        let latest = self.entries.last().expect("schedule is never empty").0;
        if vt <= latest {
            return Err(ScheduleError::NonMonotonicSwitch {
                requested: vt,
                latest,
            });
        }
        self.entries.push((vt, spec.clone()));
        Ok(DeterminismFault { vt, new_spec: spec })
    }

    /// Re-applies a logged fault during replay.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EstimatorSchedule::recalibrate_at`].
    pub fn apply_fault(&mut self, fault: &DeterminismFault) -> Result<(), ScheduleError> {
        self.recalibrate_at(fault.vt, fault.new_spec.clone())?;
        Ok(())
    }

    /// Number of estimator versions (1 + number of re-calibrations).
    pub fn versions(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(effective_from, spec)` entries in order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtualTime, &EstimatorSpec)> {
        self.entries.iter().map(|(vt, s)| (*vt, s))
    }
}

impl Encode for EstimatorSchedule {
    fn encode(&self, buf: &mut BytesMut) {
        self.entries.encode(buf);
    }
}

impl Decode for EstimatorSchedule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let entries: Vec<(VirtualTime, EstimatorSpec)> = Vec::decode(r)?;
        if entries.is_empty() || entries[0].0 != VirtualTime::ZERO {
            return Err(DecodeError::InvalidTag {
                tag: 0,
                type_name: "EstimatorSchedule (must start at tick zero)",
            });
        }
        for w in entries.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(DecodeError::InvalidTag {
                    tag: 1,
                    type_name: "EstimatorSchedule (switches must increase)",
                });
            }
        }
        Ok(EstimatorSchedule { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_model::BlockId;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn per_iter(ticks: u64) -> EstimatorSpec {
        EstimatorSpec::per_iteration(BlockId(0), ticks)
    }

    #[test]
    fn paper_recalibration_scenario() {
        // §II.G.4: coefficient 61 000 → 62 000 at vt 100,000,000.
        let mut sched = EstimatorSchedule::new(per_iter(61_000));
        let fault = sched
            .recalibrate_at(vt(100_000_000), per_iter(62_000))
            .unwrap();
        assert_eq!(fault.vt, vt(100_000_000));
        let f = Features::single(BlockId(0), 10);
        assert_eq!(sched.estimate_at(vt(0), &f).as_ticks(), 610_000);
        assert_eq!(sched.estimate_at(vt(99_999_999), &f).as_ticks(), 610_000);
        assert_eq!(sched.estimate_at(vt(100_000_000), &f).as_ticks(), 620_000);
        assert_eq!(sched.estimate_at(VirtualTime::MAX, &f).as_ticks(), 620_000);
        assert_eq!(sched.versions(), 2);
    }

    #[test]
    fn switches_must_be_strictly_increasing() {
        let mut sched = EstimatorSchedule::new(per_iter(1));
        sched.recalibrate_at(vt(100), per_iter(2)).unwrap();
        assert!(matches!(
            sched.recalibrate_at(vt(100), per_iter(3)),
            Err(ScheduleError::NonMonotonicSwitch { .. })
        ));
        assert!(sched.recalibrate_at(vt(50), per_iter(3)).is_err());
        assert!(sched.recalibrate_at(vt(0), per_iter(3)).is_err());
        assert_eq!(sched.versions(), 2);
    }

    #[test]
    fn replay_reapplies_faults_identically() {
        // Original run: two re-calibrations.
        let mut original = EstimatorSchedule::new(per_iter(61_000));
        let f1 = original
            .recalibrate_at(vt(1_000), per_iter(61_500))
            .unwrap();
        let f2 = original
            .recalibrate_at(vt(5_000), per_iter(62_000))
            .unwrap();

        // Replay: rebuild from the initial spec plus the fault log.
        let mut replay = EstimatorSchedule::new(per_iter(61_000));
        replay.apply_fault(&f1).unwrap();
        replay.apply_fault(&f2).unwrap();
        assert_eq!(replay, original);
        let feats = Features::single(BlockId(0), 3);
        for t in [0, 999, 1_000, 4_999, 5_000, 1_000_000] {
            assert_eq!(
                replay.estimate_at(vt(t), &feats),
                original.estimate_at(vt(t), &feats)
            );
        }
    }

    #[test]
    fn schedule_round_trips_through_codec() {
        let mut sched = EstimatorSchedule::new(per_iter(61_827));
        sched.recalibrate_at(vt(7), per_iter(60_000)).unwrap();
        let bytes = sched.to_bytes();
        assert_eq!(EstimatorSchedule::from_bytes(&bytes).unwrap(), sched);
    }

    #[test]
    fn decode_rejects_malformed_schedules() {
        // Empty schedule.
        let empty: Vec<(VirtualTime, EstimatorSpec)> = vec![];
        assert!(EstimatorSchedule::from_bytes(&empty.to_bytes()).is_err());
        // First entry not at zero.
        let bad = vec![(vt(5), per_iter(1))];
        assert!(EstimatorSchedule::from_bytes(&bad.to_bytes()).is_err());
        // Non-increasing switches.
        let bad = vec![
            (vt(0), per_iter(1)),
            (vt(9), per_iter(2)),
            (vt(9), per_iter(3)),
        ];
        assert!(EstimatorSchedule::from_bytes(&bad.to_bytes()).is_err());
    }

    #[test]
    fn fault_round_trips() {
        let fault = DeterminismFault {
            vt: vt(123),
            new_spec: per_iter(99),
        };
        assert_eq!(
            DeterminismFault::from_bytes(&fault.to_bytes()).unwrap(),
            fault
        );
    }

    #[test]
    fn iter_exposes_history() {
        let mut sched = EstimatorSchedule::new(per_iter(1));
        sched.recalibrate_at(vt(10), per_iter(2)).unwrap();
        let history: Vec<VirtualTime> = sched.iter().map(|(t, _)| t).collect();
        assert_eq!(history, vec![vt(0), vt(10)]);
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::NonMonotonicSwitch {
            requested: vt(5),
            latest: vt(9),
        };
        assert!(e.to_string().contains("vt:5"));
        assert!(e.to_string().contains("vt:9"));
    }
}
