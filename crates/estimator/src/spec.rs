//! Estimate functions.

use std::fmt;

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_model::{BlockId, Features};
use tart_vtime::VirtualDuration;

/// A deterministic function from handler features to predicted compute (or
/// transmission) time.
///
/// Estimators **must be deterministic**: the same features always produce
/// the same duration, on every run, because estimates feed directly into the
/// virtual times that make replay possible. They must not consult wall
/// clocks, queue lengths, or any other non-deterministic state (§II.G.1).
pub trait Estimator: Send + Sync + fmt::Debug {
    /// Predicts the duration of a handler invocation with the given
    /// basic-block counts.
    fn estimate(&self, features: &Features) -> VirtualDuration;
}

/// A concrete, serializable estimator.
///
/// Serializability matters: when a determinism fault re-calibrates an
/// estimator mid-run, the new parameters are written to the fault log so
/// replay can reinstall them at the same virtual time (§II.G.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimatorSpec {
    /// The "dumb" estimator of §III.A: a fixed cost per message, ignoring
    /// features entirely (e.g. the 600 µs average in the paper's study).
    Constant {
        /// Predicted duration of every invocation.
        per_message: VirtualDuration,
    },
    /// The linear model of Eq. 1: `τ = β₀ + Σᵢ βᵢ·ξᵢ`, with integer tick
    /// coefficients so the arithmetic is exactly reproducible.
    Linear {
        /// Fixed cost β₀ in ticks.
        base: VirtualDuration,
        /// Per-block coefficients `(block, ticks per execution)`, sorted by
        /// block id.
        coeffs: Vec<(BlockId, u64)>,
    },
}

impl EstimatorSpec {
    /// Creates the constant ("dumb") estimator.
    pub fn constant(per_message: VirtualDuration) -> Self {
        EstimatorSpec::Constant { per_message }
    }

    /// Creates a linear estimator from a base cost and per-block tick
    /// coefficients.
    pub fn linear(base: VirtualDuration, coeffs: impl IntoIterator<Item = (BlockId, u64)>) -> Self {
        let mut coeffs: Vec<(BlockId, u64)> = coeffs.into_iter().collect();
        coeffs.sort_by_key(|&(b, _)| b);
        coeffs.dedup_by_key(|&mut (b, _)| b);
        EstimatorSpec::Linear { base, coeffs }
    }

    /// Convenience for the common single-loop shape of Code Body 1:
    /// `τ = ticks_per_iteration · ξ`.
    pub fn per_iteration(block: BlockId, ticks_per_iteration: u64) -> Self {
        EstimatorSpec::linear(VirtualDuration::ZERO, [(block, ticks_per_iteration)])
    }
}

impl Estimator for EstimatorSpec {
    fn estimate(&self, features: &Features) -> VirtualDuration {
        match self {
            EstimatorSpec::Constant { per_message } => *per_message,
            EstimatorSpec::Linear { base, coeffs } => {
                let mut total = base.as_ticks();
                for &(block, ticks) in coeffs {
                    total = total.saturating_add(ticks.saturating_mul(features.count(block)));
                }
                VirtualDuration::from_ticks(total)
            }
        }
    }
}

impl Encode for EstimatorSpec {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            EstimatorSpec::Constant { per_message } => {
                buf.put_u8(0);
                per_message.encode(buf);
            }
            EstimatorSpec::Linear { base, coeffs } => {
                buf.put_u8(1);
                base.encode(buf);
                (coeffs.len() as u64).encode(buf);
                for (block, ticks) in coeffs {
                    block.0.encode(buf);
                    ticks.encode(buf);
                }
            }
        }
    }
}

impl Decode for EstimatorSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(EstimatorSpec::Constant {
                per_message: VirtualDuration::decode(r)?,
            }),
            1 => {
                let base = VirtualDuration::decode(r)?;
                let declared = u64::decode(r)?;
                let len = r.check_len(declared, 2)?;
                let mut coeffs = Vec::with_capacity(len);
                for _ in 0..len {
                    let block = BlockId(u16::decode(r)?);
                    let ticks = u64::decode(r)?;
                    coeffs.push((block, ticks));
                }
                Ok(EstimatorSpec::Linear { base, coeffs })
            }
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "EstimatorSpec",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_features() {
        let est = EstimatorSpec::constant(VirtualDuration::from_micros(600));
        assert_eq!(
            est.estimate(&Features::new()),
            VirtualDuration::from_micros(600)
        );
        assert_eq!(
            est.estimate(&Features::single(BlockId(0), 1000)),
            VirtualDuration::from_micros(600)
        );
    }

    #[test]
    fn linear_matches_paper_arithmetic() {
        // §II.E: outVT = inVT + 61000 * sent.length.
        let est = EstimatorSpec::per_iteration(BlockId(0), 61_000);
        assert_eq!(
            est.estimate(&Features::single(BlockId(0), 3)).as_ticks(),
            183_000
        );
        assert_eq!(
            est.estimate(&Features::single(BlockId(0), 2)).as_ticks(),
            122_000
        );
        assert_eq!(est.estimate(&Features::new()).as_ticks(), 0);
    }

    #[test]
    fn linear_multi_block_eq1() {
        // τ = β₀ + β₁ξ₁ + β₂ξ₂.
        let est = EstimatorSpec::linear(
            VirtualDuration::from_ticks(500),
            [(BlockId(0), 61_000), (BlockId(1), 2_000)],
        );
        let mut f = Features::new();
        f.add(BlockId(0), 10);
        f.add(BlockId(1), 4);
        f.add(BlockId(9), 99); // no coefficient: ignored
        assert_eq!(est.estimate(&f).as_ticks(), 500 + 610_000 + 8_000);
    }

    #[test]
    fn linear_constructor_sorts_and_dedups() {
        let est = EstimatorSpec::linear(
            VirtualDuration::ZERO,
            [(BlockId(5), 1), (BlockId(1), 2), (BlockId(5), 99)],
        );
        match &est {
            EstimatorSpec::Linear { coeffs, .. } => {
                assert_eq!(coeffs, &[(BlockId(1), 2), (BlockId(5), 1)]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn estimate_saturates_instead_of_overflowing() {
        let est = EstimatorSpec::linear(VirtualDuration::ZERO, [(BlockId(0), u64::MAX)]);
        let d = est.estimate(&Features::single(BlockId(0), u64::MAX));
        assert_eq!(d.as_ticks(), u64::MAX);
    }

    #[test]
    fn spec_round_trips_through_codec() {
        for spec in [
            EstimatorSpec::constant(VirtualDuration::from_micros(600)),
            EstimatorSpec::per_iteration(BlockId(0), 61_827),
            EstimatorSpec::linear(
                VirtualDuration::from_ticks(3),
                [(BlockId(0), 1), (BlockId(7), 2)],
            ),
        ] {
            let bytes = spec.to_bytes();
            assert_eq!(EstimatorSpec::from_bytes(&bytes).unwrap(), spec);
        }
    }

    #[test]
    fn spec_decode_rejects_bad_tag() {
        assert!(matches!(
            EstimatorSpec::from_bytes(&[9]),
            Err(DecodeError::InvalidTag { tag: 9, .. })
        ));
    }

    #[test]
    fn usable_as_trait_object() {
        let est: Box<dyn Estimator> = Box::new(EstimatorSpec::per_iteration(BlockId(0), 10));
        assert_eq!(
            est.estimate(&Features::single(BlockId(0), 5)).as_ticks(),
            50
        );
        assert!(!format!("{est:?}").is_empty());
    }
}
