//! Throughput saturation search (§III.A's ramp experiment).

use crate::{FanInSim, SimConfig};

/// The outcome of a saturation search.
#[derive(Clone, Debug, PartialEq)]
pub struct SaturationResult {
    /// Highest stable per-sender arrival rate found, messages/second.
    pub saturation_rate_per_sec: f64,
    /// The `(rate, avg latency µs, stable)` samples probed along the way.
    pub probes: Vec<(f64, f64, bool)>,
}

/// Ramps the external arrival rate until the system can no longer keep up,
/// reproducing §III.A's estimate: "we estimated throughput by increasing the
/// message rates of the external clients from the initial 1000
/// messages/second gradually until the system became unstable".
///
/// Stability criterion: with the clients stopped after a fixed message
/// budget, a stable system's mean latency stays within `latency_budget_us`;
/// past saturation, queues grow without bound for the whole run and the mean
/// latency explodes. A bisection then refines the boundary.
///
/// Returns the highest stable rate (per sender, messages/second).
pub fn find_saturation(base: &SimConfig, latency_budget_us: f64) -> SaturationResult {
    let mut probes = Vec::new();
    let test = |rate_per_sec: f64, probes: &mut Vec<(f64, f64, bool)>| -> bool {
        let mut cfg = base.clone();
        cfg.mean_interarrival_ns = (1e9 / rate_per_sec) as u64;
        let report = FanInSim::new(cfg).run();
        let latency = report.avg_latency_micros();
        let stable = latency <= latency_budget_us && report.completed == report.offered;
        probes.push((rate_per_sec, latency, stable));
        stable
    };

    // Coarse ramp from 1000/s in 5% steps until unstable.
    let mut lo = 1_000.0;
    if !test(lo, &mut probes) {
        return SaturationResult {
            saturation_rate_per_sec: 0.0,
            probes,
        };
    }
    let mut hi = lo;
    loop {
        let next = hi * 1.05;
        if !test(next, &mut probes) {
            lo = hi;
            hi = next;
            break;
        }
        hi = next;
        if hi > 4_000.0 {
            // Far past any physical capacity of the Fig 1 system.
            return SaturationResult {
                saturation_rate_per_sec: hi,
                probes,
            };
        }
    }
    // Bisect to ~1% precision.
    for _ in 0..6 {
        let mid = (lo + hi) / 2.0;
        if test(mid, &mut probes) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    SaturationResult {
        saturation_rate_per_sec: lo,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecMode;

    fn quick_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_iii_a();
        cfg.messages_per_sender = 5_000;
        cfg
    }

    #[test]
    fn saturation_is_near_merger_capacity() {
        // The merger takes 400 µs per message from 2 senders: physical
        // capacity is 1250 msg/s per sender.
        let mut cfg = quick_cfg();
        cfg.mode = ExecMode::NonDeterministic;
        let result = find_saturation(&cfg, 50_000.0);
        assert!(
            (1_100.0..=1_300.0).contains(&result.saturation_rate_per_sec),
            "saturation {} should be near 1250/s",
            result.saturation_rate_per_sec
        );
        assert!(!result.probes.is_empty());
    }

    #[test]
    fn deterministic_saturation_matches_nondeterministic() {
        // §III.A: "In both deterministic and non-deterministic execution
        // modes, the system saturated at [the same rate]".
        let mut cfg = quick_cfg();
        cfg.mode = ExecMode::NonDeterministic;
        let nondet = find_saturation(&cfg, 50_000.0);
        cfg.mode = ExecMode::Deterministic;
        let det = find_saturation(&cfg, 50_000.0);
        let ratio = det.saturation_rate_per_sec / nondet.saturation_rate_per_sec;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "no throughput degradation from determinism: det {} vs nondet {}",
            det.saturation_rate_per_sec,
            nondet.saturation_rate_per_sec
        );
    }
}
