//! Discrete-event simulator for the TART evaluation studies.
//!
//! §III.A and §III.B of the paper evaluate deterministic scheduling *in
//! simulation*: the Fig 1 fan-in application runs on a simulated
//! multiprocessor (one dedicated processor per component) with controlled
//! execution-time jitter, Poisson clients, and a 20 µs curiosity-probe
//! cost. This crate is that simulator, rebuilt:
//!
//! * [`SimKernel`] — a deterministic event-queue kernel over real-time
//!   nanoseconds;
//! * [`JitterModel`] — how much real time a given amount of virtual compute
//!   takes: none, the per-tick normal model of §III.A, or resampling from
//!   an empirical corpus as in §III.B ([`EmpiricalCorpus`]);
//! * [`FanInSim`] + [`SimConfig`] — the Fig 1 topology (N senders → merger)
//!   with all three execution modes (non-deterministic, deterministic,
//!   deterministic + prescient silence oracles) and all silence policies;
//! * [`find_saturation`] — the throughput ramp of §III.A's saturation
//!   experiment;
//! * a [`SimReport`] carrying exactly the series the paper plots: average
//!   end-to-end latency, out-of-real-time-order arrivals, curiosity probe
//!   counts, and pessimism delay.
//!
//! The simulator is deterministic end to end: the same [`SimConfig`]
//! (including its seed) produces bit-identical reports.
//!
//! # Example
//!
//! ```
//! use tart_sim::{ExecMode, FanInSim, SimConfig};
//!
//! let mut cfg = SimConfig::paper_iii_a();
//! cfg.messages_per_sender = 200; // keep the doctest fast
//! cfg.mode = ExecMode::Deterministic;
//! let report = FanInSim::new(cfg).run();
//! assert_eq!(report.completed, 400);
//! assert!(report.avg_latency_micros() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod jitter;
mod kernel;
mod report;
mod saturation;
mod sim;

pub use config::{ExecMode, IterationDist, SimConfig};
pub use jitter::{EmpiricalCorpus, JitterModel};
pub use kernel::SimKernel;
pub use report::SimReport;
pub use saturation::{find_saturation, SaturationResult};
pub use sim::FanInSim;
