//! The Fig 1 fan-in simulation.

use std::collections::VecDeque;

use tart_sched::{GateDecision, MergeGate};
use tart_silence::{BiasFloor, ProbeTracker, SilenceAdvertiser, SilencePolicy};
use tart_stats::DetRng;
use tart_vtime::{VirtualDuration, VirtualTime, WireId};

use crate::{ExecMode, IterationDist, SimConfig, SimKernel, SimReport};

/// Simulation events, each timestamped in real nanoseconds.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client delivers an external message to a sender.
    Arrival { sender: usize },
    /// A sender finishes computing its current message.
    SenderDone { sender: usize },
    /// A curiosity probe round-trip completes: the sender's freshly
    /// computed silence bound reaches the merger.
    ProbeFire { sender: usize },
    /// A sender's aggressive-silence timer fires.
    AggressiveTick { sender: usize },
    /// The merger finishes servicing a message.
    MergerDone,
}

/// An external message queued at a sender.
#[derive(Clone, Copy, Debug)]
struct ExtMsg {
    /// Logged timestamp (= real arrival time), which becomes the message's
    /// virtual time (§II.E: "it is safe to use the actual real time as the
    /// virtual time of this message").
    ts: VirtualTime,
    origin_real: u64,
    iters: u64,
}

/// A message in flight from a sender to the merger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MergerMsg {
    origin_real: u64,
}

/// A sender's in-service message.
#[derive(Clone, Copy, Debug)]
struct Busy {
    msg: ExtMsg,
    dequeue_vt: VirtualTime,
    out_vt: VirtualTime,
    /// Real time at which service began (for progress observation).
    start_real: u64,
    /// Total real service duration.
    real_service: u64,
}

struct SenderState {
    wire: WireId,
    queue: VecDeque<ExtMsg>,
    busy: Option<Busy>,
    /// Virtual time of the last emitted output — the sender's clock.
    clock: VirtualTime,
    generated: u64,
    done_generating: bool,
    eos_sent: bool,
    advertiser: SilenceAdvertiser,
    bias: Option<BiasFloor>,
    arrival_rng: DetRng,
    iter_rng: DetRng,
    jitter_rng: DetRng,
}

/// Simulates the paper's Fig 1 application — N word-count-shaped senders
/// fanning into a merger — on a multiprocessor where every component owns a
/// processor, under a configurable execution mode, silence policy, estimator
/// and jitter model (§III.A/§III.B).
///
/// See the crate docs for an end-to-end example.
pub struct FanInSim {
    cfg: SimConfig,
    kernel: SimKernel<Event>,
    senders: Vec<SenderState>,
    gate: MergeGate<MergerMsg>,
    fifo: VecDeque<MergerMsg>,
    merger_busy: Option<MergerMsg>,
    blocked_since: Option<u64>,
    probes: ProbeTracker,
    report: SimReport,
}

impl FanInSim {
    /// Builds a simulation from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_senders` is zero or estimator/service parameters are
    /// zero (a zero estimate would stall virtual time).
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.n_senders > 0, "need at least one sender");
        assert!(
            cfg.estimator_ns_per_iteration > 0 && cfg.dumb_estimate_ns > 0,
            "estimates must be positive to advance virtual time"
        );
        assert!(
            cfg.merger_service_ns > 0,
            "merger service time must be positive"
        );
        let mut root = DetRng::seed_from(cfg.seed);
        let mut senders = Vec::with_capacity(cfg.n_senders);
        for i in 0..cfg.n_senders {
            let bias = match cfg.silence {
                SilencePolicy::HyperAggressive { bias } => Some(BiasFloor::new(bias)),
                _ => None,
            };
            senders.push(SenderState {
                wire: WireId::new(i as u32),
                queue: VecDeque::new(),
                busy: None,
                clock: VirtualTime::ZERO,
                generated: 0,
                done_generating: cfg.messages_per_sender == 0,
                eos_sent: false,
                advertiser: SilenceAdvertiser::new(WireId::new(i as u32)),
                bias,
                arrival_rng: root.fork(i as u64 * 3),
                iter_rng: root.fork(i as u64 * 3 + 1),
                jitter_rng: root.fork(i as u64 * 3 + 2),
            });
        }
        let gate = MergeGate::new((0..cfg.n_senders as u32).map(WireId::new));
        FanInSim {
            cfg,
            kernel: SimKernel::new(),
            senders,
            gate,
            fifo: VecDeque::new(),
            merger_busy: None,
            blocked_since: None,
            probes: ProbeTracker::new(),
            report: SimReport::default(),
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        // Prime each client's first arrival and aggressive timers.
        for i in 0..self.senders.len() {
            if !self.senders[i].done_generating {
                let gap = self.exp_gap(i);
                self.kernel.schedule(gap, Event::Arrival { sender: i });
            }
            if let SilencePolicy::Aggressive { max_quiet } = self.cfg.silence {
                if self.cfg.mode == ExecMode::Deterministic {
                    self.kernel
                        .schedule(max_quiet.as_ticks(), Event::AggressiveTick { sender: i });
                }
            }
        }
        while let Some((now, event)) = self.kernel.pop() {
            match event {
                Event::Arrival { sender } => self.on_arrival(sender, now),
                Event::SenderDone { sender } => self.on_sender_done(sender, now),
                Event::ProbeFire { sender } => self.on_probe_fire(sender, now),
                Event::AggressiveTick { sender } => self.on_aggressive_tick(sender, now),
                Event::MergerDone => self.on_merger_done(now),
            }
        }
        if self.cfg.mode == ExecMode::Deterministic {
            let m = self.gate.metrics();
            self.report.out_of_order = m.out_of_order_arrivals;
            self.report.pessimism_episodes = m.pessimism_episodes;
        }
        self.report.probes = self.probes.probes_sent();
        self.report.silence_advances += self
            .senders
            .iter()
            .map(|s| s.advertiser.advances_sent())
            .sum::<u64>();
        self.report.sim_end_ns = self.kernel.now();
        self.report
    }

    // -- Sender-side ------------------------------------------------------

    fn exp_gap(&mut self, sender: usize) -> u64 {
        let mean = self.cfg.mean_interarrival_ns as f64;
        let u = self.senders[sender].arrival_rng.next_f64_open();
        (-mean * u.ln()).max(1.0) as u64
    }

    fn sample_iters(&mut self, sender: usize) -> u64 {
        match self.cfg.iterations {
            IterationDist::Constant(k) => k,
            IterationDist::Uniform { lo, hi } => {
                self.senders[sender].iter_rng.gen_range_u64(lo, hi)
            }
        }
    }

    /// The estimator: predicted compute time for a message of `iters`
    /// iterations, in ticks.
    fn estimate(&self, iters: u64) -> VirtualDuration {
        if self.cfg.dumb_estimator {
            VirtualDuration::from_ticks(self.cfg.dumb_estimate_ns)
        } else {
            VirtualDuration::from_ticks(self.cfg.estimator_ns_per_iteration * iters)
        }
    }

    /// The smallest estimate any message can receive (the non-prescient
    /// "shortest possible processing").
    fn min_estimate(&self) -> VirtualDuration {
        if self.cfg.dumb_estimator {
            VirtualDuration::from_ticks(self.cfg.dumb_estimate_ns)
        } else {
            VirtualDuration::from_ticks(self.cfg.estimator_ns_per_iteration)
        }
    }

    fn on_arrival(&mut self, sender: usize, now: u64) {
        // External messages are timestamped with real arrival time (§II.E).
        let iters = self.sample_iters(sender);
        let msg = ExtMsg {
            ts: VirtualTime::from_ticks(now),
            origin_real: now,
            iters,
        };
        self.report.offered += 1;
        {
            let s = &mut self.senders[sender];
            s.generated += 1;
            s.queue.push_back(msg);
        }
        if self.senders[sender].generated < self.cfg.messages_per_sender {
            let gap = self.exp_gap(sender);
            self.kernel.schedule_in(gap, Event::Arrival { sender });
        } else {
            self.senders[sender].done_generating = true;
        }
        self.maybe_start_sender(sender, now);
    }

    fn maybe_start_sender(&mut self, sender: usize, now: u64) {
        if self.senders[sender].busy.is_some() {
            return;
        }
        let Some(msg) = self.senders[sender].queue.pop_front() else {
            self.maybe_send_eos(sender);
            return;
        };
        let est = self.estimate(msg.iters);
        let clock = self.senders[sender].clock;
        let dequeue_vt = msg.ts.max_with(clock);
        let mut out_vt = dequeue_vt + est;
        if let Some(bias) = &self.senders[sender].bias {
            out_vt = bias.clamp_send_vt(out_vt);
        }
        // Real compute time is independent of the estimator's guess: the
        // "true" work is iters × true_ns_per_iteration, jittered.
        let true_virtual = self.cfg.true_ns_per_iteration * msg.iters;
        let real = self.cfg.jitter.sample_real_ns(
            true_virtual,
            msg.iters,
            &mut self.senders[sender].jitter_rng,
        );
        let real = real.max(1);
        self.senders[sender].busy = Some(Busy {
            msg,
            dequeue_vt,
            out_vt,
            start_real: now,
            real_service: real,
        });
        self.kernel
            .schedule(now.saturating_add(real), Event::SenderDone { sender });
    }

    fn on_sender_done(&mut self, sender: usize, now: u64) {
        let busy = self.senders[sender].busy.take().expect("sender was busy");
        let out = MergerMsg {
            origin_real: busy.msg.origin_real,
        };
        self.senders[sender].clock = busy.out_vt;
        match self.cfg.mode {
            ExecMode::NonDeterministic => {
                self.fifo.push_back(out);
            }
            ExecMode::Deterministic => {
                self.senders[sender].advertiser.record_data(busy.out_vt);
                self.probes.on_reply(self.senders[sender].wire);
                self.gate
                    .push_message(self.senders[sender].wire, busy.out_vt, out)
                    .expect("sender outputs are monotone");
            }
        }
        self.maybe_start_sender(sender, now);
        self.reevaluate_merger(now);
    }

    /// Once a sender will never produce again, it promises silence forever
    /// so the stream drains (the end-of-run counterpart of shutdown
    /// markers; a live deployment never reaches this state).
    fn maybe_send_eos(&mut self, sender: usize) {
        if self.cfg.mode != ExecMode::Deterministic {
            return;
        }
        let s = &mut self.senders[sender];
        if s.done_generating && s.queue.is_empty() && s.busy.is_none() && !s.eos_sent {
            s.eos_sent = true;
            self.gate.promise_silence(s.wire, VirtualTime::MAX);
        }
    }

    /// The sender's silence oracle (§II.H): how far is this wire guaranteed
    /// silent, judged at real time `now`?
    fn silence_bound(&self, sender: usize, now: u64) -> VirtualTime {
        let s = &self.senders[sender];
        let min_est = self.min_estimate();
        match &s.busy {
            Some(busy) => {
                if self.cfg.prescient || self.cfg.dumb_estimator {
                    // Prescient: the iteration count is known before the
                    // loop runs (Code Body 1), so the exact output time is
                    // known. The dumb estimator is "prescient" for free —
                    // its prediction never depends on the iteration count.
                    busy.out_vt.prev()
                } else {
                    // Non-prescient: "the earliest possible time it could
                    // compute a message based upon the known state of the
                    // process" (§II.H). The sender can observe how many
                    // iterations have already run, but "is assumed not to
                    // know how many more iterations will follow" — the loop
                    // could end after the one currently executing.
                    let elapsed = now.saturating_sub(busy.start_real);
                    let k = busy.msg.iters.max(1);
                    let done = ((elapsed as f64 / busy.real_service as f64) * k as f64) as u64;
                    let done = done.min(k - 1);
                    let earliest = busy.dequeue_vt + self.estimate(done + 1);
                    earliest.prev()
                }
            }
            None => {
                // Idle: the earliest possible next output is one produced by
                // a message arriving one tick from now ("were it to become
                // busy one tick from now", §II.H). External timestamps are
                // real arrival times, so the dequeue time of any future
                // message is at least max(clock, now).
                let base = s.clock.max_with(VirtualTime::from_ticks(now));
                (base + min_est).prev()
            }
        }
    }

    // -- Silence propagation ----------------------------------------------

    fn on_probe_fire(&mut self, sender: usize, now: u64) {
        let mut bound = self.silence_bound(sender, now);
        let s = &mut self.senders[sender];
        if let (Some(bias), true) = (&mut s.bias, s.busy.is_none()) {
            bound = bias.promise_on_idle(bound);
        }
        self.probes.on_reply(self.senders[sender].wire);
        if let Some(adv) = self.senders[sender].advertiser.advance_to(bound) {
            if !self.senders[sender].eos_sent {
                self.gate.promise_silence(self.senders[sender].wire, adv);
            }
        }
        self.reevaluate_merger(now);
    }

    fn on_aggressive_tick(&mut self, sender: usize, now: u64) {
        let SilencePolicy::Aggressive { max_quiet } = self.cfg.silence else {
            return;
        };
        let bound = self.silence_bound(sender, now);
        if let Some(adv) = self.senders[sender].advertiser.advance_to(bound) {
            if !self.senders[sender].eos_sent {
                self.gate.promise_silence(self.senders[sender].wire, adv);
                self.reevaluate_merger(now);
            }
        }
        // Keep ticking while the run is live.
        let live = self.senders.iter().any(|s| !s.eos_sent) || self.merger_busy.is_some();
        if live {
            self.kernel.schedule_in(
                max_quiet.as_ticks().max(1),
                Event::AggressiveTick { sender },
            );
        }
    }

    // -- Merger -----------------------------------------------------------

    fn reevaluate_merger(&mut self, now: u64) {
        if self.merger_busy.is_some() {
            return;
        }
        match self.cfg.mode {
            ExecMode::NonDeterministic => {
                if let Some(msg) = self.fifo.pop_front() {
                    self.merger_busy = Some(msg);
                    self.kernel
                        .schedule_in(self.cfg.merger_service_ns, Event::MergerDone);
                }
            }
            ExecMode::Deterministic => match self.gate.try_next() {
                GateDecision::Deliver {
                    dequeue_vt, msg, ..
                } => {
                    if let Some(t0) = self.blocked_since.take() {
                        self.report.pessimism_delay_ns += now - t0;
                    }
                    self.merger_busy = Some(msg);
                    // The merger's own estimator: its constant service time.
                    self.gate.advance_clock(
                        dequeue_vt + VirtualDuration::from_ticks(self.cfg.merger_service_ns),
                    );
                    self.kernel
                        .schedule_in(self.cfg.merger_service_ns, Event::MergerDone);
                }
                GateDecision::Blocked { lagging, .. } => {
                    if self.blocked_since.is_none() {
                        self.blocked_since = Some(now);
                    }
                    if self.cfg.silence.probes() {
                        for (wire, needed) in lagging {
                            let sender = wire.raw() as usize;
                            if self.senders[sender].eos_sent {
                                continue;
                            }
                            if self.probes.should_probe(wire, needed) {
                                self.kernel.schedule_in(
                                    self.cfg.probe_cost_ns.max(1),
                                    Event::ProbeFire { sender },
                                );
                            }
                        }
                    }
                }
                GateDecision::Idle => {
                    self.blocked_since = None;
                }
            },
        }
    }

    fn on_merger_done(&mut self, now: u64) {
        let msg = self.merger_busy.take().expect("merger was busy");
        self.report.completed += 1;
        self.report.latency_ns.push((now - msg.origin_real) as f64);
        // Drained senders may now owe their end-of-stream silence.
        for i in 0..self.senders.len() {
            self.maybe_send_eos(i);
        }
        self.reevaluate_merger(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JitterModel;

    fn small_cfg(mode: ExecMode) -> SimConfig {
        let mut cfg = SimConfig::paper_iii_a();
        cfg.messages_per_sender = 500;
        cfg.mode = mode;
        cfg
    }

    #[test]
    fn all_messages_complete_in_both_modes() {
        for mode in [ExecMode::NonDeterministic, ExecMode::Deterministic] {
            let report = FanInSim::new(small_cfg(mode)).run();
            assert_eq!(report.offered, 1_000, "{mode:?}");
            assert_eq!(report.completed, 1_000, "{mode:?}");
            assert!(
                report.avg_latency_micros() > 400.0,
                "{mode:?}: at least one service time"
            );
            assert!(report.sim_end_ns > 0);
        }
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let a = FanInSim::new(small_cfg(ExecMode::Deterministic)).run();
        let b = FanInSim::new(small_cfg(ExecMode::Deterministic)).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ns.mean(), b.latency_ns.mean());
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.out_of_order, b.out_of_order);
        assert_eq!(a.pessimism_delay_ns, b.pessimism_delay_ns);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.seed = 1;
        let a = FanInSim::new(cfg.clone()).run();
        cfg.seed = 2;
        let b = FanInSim::new(cfg).run();
        assert_ne!(a.latency_ns.mean(), b.latency_ns.mean());
    }

    #[test]
    fn determinism_overhead_is_small_with_smart_estimator() {
        // The headline of §III.A: a few percent latency overhead, not tens.
        let nondet = FanInSim::new(small_cfg(ExecMode::NonDeterministic)).run();
        let det = FanInSim::new(small_cfg(ExecMode::Deterministic)).run();
        let overhead = det.overhead_percent_vs(&nondet);
        assert!(
            overhead > -2.0 && overhead < 15.0,
            "overhead {overhead:.1}% out of plausible band (det {:.0}µs vs nondet {:.0}µs)",
            det.avg_latency_micros(),
            nondet.avg_latency_micros()
        );
    }

    #[test]
    fn deterministic_mode_issues_probes_under_curiosity() {
        let report = FanInSim::new(small_cfg(ExecMode::Deterministic)).run();
        assert!(report.probes > 0, "curiosity must probe at least once");
        assert!(report.silence_advances > 0);
        // Fig 4 scale-check: around the true estimator the paper sees
        // roughly 1.5 probes per message; allow a generous band.
        assert!(
            report.probes_per_message() < 10.0,
            "probes/msg {}",
            report.probes_per_message()
        );
    }

    #[test]
    fn nondeterministic_mode_never_probes() {
        let report = FanInSim::new(small_cfg(ExecMode::NonDeterministic)).run();
        assert_eq!(report.probes, 0);
        assert_eq!(report.pessimism_delay_ns, 0);
        assert_eq!(report.out_of_order, 0);
    }

    #[test]
    fn prescience_does_not_hurt() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.messages_per_sender = 2_000;
        let plain = FanInSim::new(cfg.clone()).run();
        cfg.prescient = true;
        let prescient = FanInSim::new(cfg).run();
        // Prescient silence bounds are strictly tighter, so latency should
        // not be meaningfully worse.
        assert!(
            prescient.latency_ns.mean() <= plain.latency_ns.mean() * 1.02,
            "prescient {:.0} vs plain {:.0}",
            prescient.latency_ns.mean(),
            plain.latency_ns.mean()
        );
    }

    #[test]
    fn lazy_silence_is_worse_than_curiosity() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.messages_per_sender = 2_000;
        let curiosity = FanInSim::new(cfg.clone()).run();
        cfg.silence = SilencePolicy::Lazy;
        let lazy = FanInSim::new(cfg).run();
        assert_eq!(lazy.probes, 0, "lazy never probes");
        assert!(
            lazy.latency_ns.mean() > curiosity.latency_ns.mean(),
            "lazy {:.0} should exceed curiosity {:.0}",
            lazy.latency_ns.mean(),
            curiosity.latency_ns.mean()
        );
    }

    #[test]
    fn zero_variability_removes_out_of_order_arrivals() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.iterations = IterationDist::Constant(10);
        cfg.jitter = JitterModel::None;
        let report = FanInSim::new(cfg).run();
        assert_eq!(report.completed, 1_000);
        assert_eq!(
            report.out_of_order, 0,
            "without jitter or variability, vt order = real order"
        );
    }

    #[test]
    fn dumb_estimator_hurts_more_with_variability() {
        // §III.A's second study: the constant estimator is fine at zero
        // variability but increasingly bad as iteration counts spread.
        let mut base = small_cfg(ExecMode::Deterministic);
        base.messages_per_sender = 2_000;
        base.dumb_estimator = true;

        let mut constant = base.clone();
        constant.iterations = IterationDist::Constant(10);
        let mut variable = base.clone();
        variable.iterations = IterationDist::Uniform { lo: 1, hi: 19 };

        let mut nondet_c = constant.clone();
        nondet_c.mode = ExecMode::NonDeterministic;
        let mut nondet_v = variable.clone();
        nondet_v.mode = ExecMode::NonDeterministic;

        let overhead_constant = FanInSim::new(constant)
            .run()
            .overhead_percent_vs(&FanInSim::new(nondet_c).run());
        let overhead_variable = FanInSim::new(variable)
            .run()
            .overhead_percent_vs(&FanInSim::new(nondet_v).run());
        assert!(
            overhead_variable > overhead_constant,
            "dumb estimator overhead should grow with variability: {overhead_constant:.1}% → {overhead_variable:.1}%"
        );
    }

    #[test]
    fn aggressive_policy_sends_unprompted_silence() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.silence = SilencePolicy::Aggressive {
            max_quiet: VirtualDuration::from_micros(200),
        };
        let report = FanInSim::new(cfg).run();
        assert_eq!(report.completed, 1_000);
        assert_eq!(report.probes, 0, "aggressive mode never probes");
        assert!(report.silence_advances > 0, "timers must volunteer silence");
    }

    #[test]
    fn hyper_aggressive_policy_completes_and_probes() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.silence = SilencePolicy::HyperAggressive {
            bias: VirtualDuration::from_micros(100),
        };
        let report = FanInSim::new(cfg).run();
        assert_eq!(report.completed, 1_000);
    }

    #[test]
    fn single_sender_has_no_pessimism() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.n_senders = 1;
        let report = FanInSim::new(cfg).run();
        assert_eq!(report.completed, 500);
        assert_eq!(report.pessimism_delay_ns, 0);
        assert_eq!(report.probes, 0);
    }

    #[test]
    fn many_senders_scale() {
        let mut cfg = small_cfg(ExecMode::Deterministic);
        cfg.n_senders = 5;
        cfg.messages_per_sender = 200;
        // Keep the merger below saturation: 5 × 400 µs per 1000 µs would be
        // 200 % utilization, so slow the clients down.
        cfg.mean_interarrival_ns = 4_000_000;
        let report = FanInSim::new(cfg).run();
        assert_eq!(report.completed, 1_000);
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn zero_senders_rejected() {
        let mut cfg = SimConfig::paper_iii_a();
        cfg.n_senders = 0;
        let _ = FanInSim::new(cfg);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_estimate_rejected() {
        let mut cfg = SimConfig::paper_iii_a();
        cfg.estimator_ns_per_iteration = 0;
        let _ = FanInSim::new(cfg);
    }
}
