//! Execution-time jitter models.

use std::collections::BTreeMap;

use tart_stats::{DetRng, LogNormal, Normal, Sample};

/// An imported corpus of measured execution times, keyed by iteration count.
///
/// §III.B: "we took measurements of an actual run of a Sender component in a
/// real computer environment … We imported 10000 of these execution time
/// measurements into our simulation", then paired each simulated message
/// with "a random measurement from our imported set having the same
/// iteration count". The corpus can be built from real measurements (the
/// Fig 2 harness produces one) or synthesized with the right-skewed shape
/// the paper observed.
#[derive(Clone, Debug, PartialEq)]
pub struct EmpiricalCorpus {
    /// iteration count → measured real durations in nanoseconds.
    by_iterations: BTreeMap<u64, Vec<u64>>,
}

impl EmpiricalCorpus {
    /// Builds a corpus from `(iterations, measured_ns)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut by_iterations: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (iters, ns) in samples {
            by_iterations.entry(iters).or_default().push(ns);
        }
        assert!(!by_iterations.is_empty(), "empirical corpus needs samples");
        EmpiricalCorpus { by_iterations }
    }

    /// Synthesizes a corpus with the paper's shape: mean `coeff_ns` per
    /// iteration with multiplicative right-skewed (log-normal) noise of
    /// coefficient of variation `cv`, `per_count` samples for each iteration
    /// count in `1..=max_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` or `per_count` is zero, or `cv < 0`.
    pub fn synthetic(
        seed: u64,
        coeff_ns: f64,
        cv: f64,
        max_iterations: u64,
        per_count: usize,
    ) -> Self {
        assert!(
            max_iterations > 0 && per_count > 0,
            "corpus dimensions must be positive"
        );
        let mut rng = DetRng::seed_from(seed);
        let noise = LogNormal::from_mean_sd(1.0, cv);
        let mut by_iterations = BTreeMap::new();
        for k in 1..=max_iterations {
            let mut v = Vec::with_capacity(per_count);
            for _ in 0..per_count {
                let ns = coeff_ns * k as f64 * noise.sample(&mut rng);
                v.push(ns.max(1.0) as u64);
            }
            by_iterations.insert(k, v);
        }
        EmpiricalCorpus { by_iterations }
    }

    /// Draws a measured duration for a message with `iterations` loop
    /// iterations. Falls back to the nearest measured iteration count,
    /// scaled linearly, when the exact count is missing.
    pub fn sample_ns(&self, iterations: u64, rng: &mut DetRng) -> u64 {
        if let Some(values) = self.by_iterations.get(&iterations) {
            let idx = rng.gen_range_u64(0, values.len() as u64 - 1) as usize;
            return values[idx];
        }
        // Nearest-count fallback with linear scaling.
        let (&nearest, values) = self
            .by_iterations
            .range(..=iterations)
            .next_back()
            .or_else(|| self.by_iterations.iter().next())
            .expect("corpus is non-empty");
        let idx = rng.gen_range_u64(0, values.len() as u64 - 1) as usize;
        let base = values[idx] as f64;
        (base * iterations as f64 / nearest as f64).max(1.0) as u64
    }

    /// Total number of stored measurements.
    pub fn len(&self) -> usize {
        self.by_iterations.values().map(Vec::len).sum()
    }

    /// Returns `true` if the corpus is empty (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.by_iterations.is_empty()
    }

    /// Iterates over all `(iterations, measured_ns)` pairs.
    pub fn samples(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.by_iterations
            .iter()
            .flat_map(|(&k, v)| v.iter().map(move |&ns| (k, ns)))
    }
}

/// How much *real* time a handler invocation takes, given its virtual
/// (predicted-true) compute time and iteration count.
#[derive(Clone, Debug, PartialEq)]
pub enum JitterModel {
    /// Real time equals virtual time exactly (an idealized machine).
    None,
    /// §III.A's model: each virtual tick takes a normally distributed amount
    /// of real time with mean 1 tick; over `v` ticks the total is
    /// `Normal(v, sd_per_tick·√v)`.
    PerTickNormal {
        /// Standard deviation per tick (the paper uses 0.1).
        sd_per_tick: f64,
    },
    /// §III.B's model: resample measured execution times by iteration count.
    /// The virtual compute time is ignored; the corpus *is* the real time.
    Empirical(EmpiricalCorpus),
}

impl JitterModel {
    /// Samples the real duration (ns) of an invocation whose true virtual
    /// compute time is `virtual_ns` and which executes `iterations` loop
    /// iterations.
    pub fn sample_real_ns(&self, virtual_ns: u64, iterations: u64, rng: &mut DetRng) -> u64 {
        match self {
            JitterModel::None => virtual_ns,
            JitterModel::PerTickNormal { sd_per_tick } => {
                if virtual_ns == 0 {
                    return 0;
                }
                let v = virtual_ns as f64;
                let dist = Normal::new(v, sd_per_tick * v.sqrt());
                dist.sample(rng).max(1.0) as u64
            }
            JitterModel::Empirical(corpus) => corpus.sample_ns(iterations, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_stats::OnlineStats;

    #[test]
    fn none_is_identity() {
        let mut rng = DetRng::seed_from(1);
        assert_eq!(
            JitterModel::None.sample_real_ns(600_000, 10, &mut rng),
            600_000
        );
        assert_eq!(JitterModel::None.sample_real_ns(0, 0, &mut rng), 0);
    }

    #[test]
    fn per_tick_normal_matches_paper_model() {
        let mut rng = DetRng::seed_from(2);
        let jitter = JitterModel::PerTickNormal { sd_per_tick: 0.1 };
        let v = 600_000u64; // 600 µs of virtual compute
        let mut s = OnlineStats::new();
        for _ in 0..20_000 {
            s.push(jitter.sample_real_ns(v, 10, &mut rng) as f64);
        }
        assert!((s.mean() - 600_000.0).abs() < 200.0, "mean {}", s.mean());
        let expect_sd = 0.1 * (v as f64).sqrt(); // ≈ 77.5 ns
        assert!(
            (s.sd() - expect_sd).abs() < expect_sd * 0.1,
            "sd {}",
            s.sd()
        );
        // Zero virtual time never jitters negative.
        assert_eq!(jitter.sample_real_ns(0, 0, &mut rng), 0);
    }

    #[test]
    fn synthetic_corpus_has_right_shape() {
        let corpus = EmpiricalCorpus::synthetic(7, 61_827.0, 0.15, 19, 300);
        assert_eq!(corpus.len(), 19 * 300);
        assert!(!corpus.is_empty());
        let mut rng = DetRng::seed_from(3);
        // Mean for k iterations tracks k * coeff.
        for k in [1u64, 10, 19] {
            let mut s = OnlineStats::new();
            for _ in 0..2_000 {
                s.push(corpus.sample_ns(k, &mut rng) as f64);
            }
            let expect = 61_827.0 * k as f64;
            assert!(
                (s.mean() - expect).abs() < expect * 0.05,
                "k={k} mean {} vs {expect}",
                s.mean()
            );
        }
        // Right skew is preserved in the pooled residuals.
        let mut resid = OnlineStats::new();
        for (k, ns) in corpus.samples() {
            resid.push(ns as f64 - 61_827.0 * k as f64);
        }
        assert!(resid.skewness() > 0.3, "skew {}", resid.skewness());
    }

    #[test]
    fn corpus_fallback_scales_nearest_count() {
        let corpus = EmpiricalCorpus::from_samples([(10u64, 1_000u64), (10, 1_200)]);
        let mut rng = DetRng::seed_from(4);
        // k=20 is missing: nearest is 10, scaled ×2.
        let v = corpus.sample_ns(20, &mut rng);
        assert!(v == 2_000 || v == 2_400, "got {v}");
        // k=5 is below all: falls back to the first entry, scaled ×0.5.
        let v = corpus.sample_ns(5, &mut rng);
        assert!(v == 500 || v == 600, "got {v}");
    }

    #[test]
    fn empirical_model_resamples_only_measured_values() {
        let corpus = EmpiricalCorpus::from_samples([(3u64, 300u64), (3, 330)]);
        let jitter = JitterModel::Empirical(corpus);
        let mut rng = DetRng::seed_from(5);
        for _ in 0..50 {
            let v = jitter.sample_real_ns(999_999, 3, &mut rng);
            assert!(v == 300 || v == 330);
        }
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_corpus_rejected() {
        let _ = EmpiricalCorpus::from_samples(Vec::<(u64, u64)>::new());
    }

    #[test]
    fn corpus_sampling_is_deterministic() {
        let corpus = EmpiricalCorpus::synthetic(9, 60_000.0, 0.1, 19, 50);
        let mut a = DetRng::seed_from(11);
        let mut b = DetRng::seed_from(11);
        for k in 1..=19 {
            assert_eq!(corpus.sample_ns(k, &mut a), corpus.sample_ns(k, &mut b));
        }
    }
}
