//! Deterministic discrete-event kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic event queue over real-time nanoseconds.
///
/// Events at equal timestamps pop in insertion order (a monotone sequence
/// number breaks ties), so a simulation that schedules deterministically
/// executes deterministically.
///
/// # Example
///
/// ```
/// use tart_sim::SimKernel;
///
/// let mut k: SimKernel<&str> = SimKernel::new();
/// k.schedule(20, "later");
/// k.schedule(10, "sooner");
/// k.schedule(10, "sooner but second");
/// assert_eq!(k.pop(), Some((10, "sooner")));
/// assert_eq!(k.pop(), Some((10, "sooner but second")));
/// assert_eq!(k.pop(), Some((20, "later")));
/// assert_eq!(k.pop(), None);
/// ```
#[derive(Debug)]
pub struct SimKernel<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventBox<E>)>>,
    seq: u64,
    now: u64,
}

/// Wrapper giving events a vacuous ordering so the heap only compares
/// `(time, seq)`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> SimKernel<E> {
    /// Creates an empty kernel at time zero.
    pub fn new() -> Self {
        SimKernel {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (events cannot fire in the
    /// past).
    pub fn schedule(&mut self, at: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, _, EventBox(event))) = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for SimKernel<E> {
    fn default() -> Self {
        SimKernel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut k = SimKernel::new();
        k.schedule(5, 'a');
        k.schedule(3, 'b');
        k.schedule(5, 'c');
        k.schedule(4, 'd');
        let order: Vec<(u64, char)> = std::iter::from_fn(|| k.pop()).collect();
        assert_eq!(order, vec![(3, 'b'), (4, 'd'), (5, 'a'), (5, 'c')]);
    }

    #[test]
    fn now_tracks_pops_and_schedule_in_is_relative() {
        let mut k = SimKernel::new();
        assert_eq!(k.now(), 0);
        k.schedule(10, 1u8);
        k.pop().unwrap();
        assert_eq!(k.now(), 10);
        k.schedule_in(5, 2u8);
        assert_eq!(k.pop(), Some((15, 2)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn rejects_past_events() {
        let mut k = SimKernel::new();
        k.schedule(10, ());
        k.pop();
        k.schedule(5, ());
    }

    #[test]
    fn len_and_empty() {
        let mut k: SimKernel<u8> = SimKernel::default();
        assert!(k.is_empty());
        k.schedule(1, 0);
        assert_eq!(k.len(), 1);
        assert!(!k.is_empty());
        k.pop();
        assert!(k.is_empty());
        assert_eq!(k.pop(), None);
    }

    #[test]
    fn same_time_events_are_fifo_under_load() {
        let mut k = SimKernel::new();
        for i in 0..100u32 {
            k.schedule(42, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| k.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The kernel's contract: events pop sorted by time, ties in
        /// insertion order, and the clock never runs backwards.
        #[test]
        fn pop_order_is_time_then_insertion(times in proptest::collection::vec(0u64..1_000, 0..64)) {
            let mut k = SimKernel::new();
            for (seq, &t) in times.iter().enumerate() {
                k.schedule(t, seq);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().zip(0..times.len()).collect();
            expected.sort();
            let mut last_time = 0;
            for (want_t, want_seq) in expected {
                let (got_t, got_seq) = k.pop().expect("event present");
                prop_assert_eq!((got_t, got_seq), (want_t, want_seq));
                prop_assert!(got_t >= last_time, "clock is monotone");
                last_time = got_t;
            }
            prop_assert!(k.pop().is_none());
        }
    }
}
