//! Simulation configuration.

use tart_silence::SilencePolicy;

use crate::JitterModel;

/// How the merger orders message processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// The baseline: process in real-time arrival order (a conventional
    /// JVM's behaviour, §II.E). Non-recoverable, but overhead-free.
    NonDeterministic,
    /// TART: process in virtual-time order with pessimistic scheduling.
    Deterministic,
}

/// The distribution of loop iteration counts per message — the paper's
/// variability knob ("from constant … to variable with uniform random
/// distribution of from 1 to 19 iterations", §III.A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IterationDist {
    /// Every message takes exactly this many iterations.
    Constant(u64),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Minimum iterations.
        lo: u64,
        /// Maximum iterations.
        hi: u64,
    },
}

impl IterationDist {
    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        match self {
            IterationDist::Constant(k) => *k as f64,
            IterationDist::Uniform { lo, hi } => (*lo + *hi) as f64 / 2.0,
        }
    }

    /// The standard deviation of the *compute time* in microseconds, given
    /// `us_per_iteration` — the x-axis of Fig 3.
    pub fn compute_sd_micros(&self, us_per_iteration: f64) -> f64 {
        match self {
            IterationDist::Constant(_) => 0.0,
            IterationDist::Uniform { lo, hi } => {
                let n = (hi - lo + 1) as f64;
                us_per_iteration * ((n * n - 1.0) / 12.0).sqrt()
            }
        }
    }

    /// The Fig 3 variability stages: uniform `10 ± r` for `r` in `0..=9`,
    /// from constant 10 up to uniform 1..=19, all with mean 10.
    pub fn paper_stages() -> Vec<IterationDist> {
        (0..=9)
            .map(|r| {
                if r == 0 {
                    IterationDist::Constant(10)
                } else {
                    IterationDist::Uniform {
                        lo: 10 - r,
                        hi: 10 + r,
                    }
                }
            })
            .collect()
    }
}

/// Full configuration of a [`crate::FanInSim`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of sender components (the paper uses 2).
    pub n_senders: usize,
    /// Merger execution mode.
    pub mode: ExecMode,
    /// Silence propagation strategy (deterministic mode only).
    pub silence: SilencePolicy,
    /// Whether busy senders answer probes with exact completion knowledge
    /// (the *Prescient* mode of §III.A).
    pub prescient: bool,
    /// True mean compute cost per loop iteration, in nanoseconds (the
    /// paper's senders take 60 µs of virtual time per iteration).
    pub true_ns_per_iteration: u64,
    /// The estimator's assumed cost per iteration, in nanoseconds. Equal to
    /// the truth for the "smart" estimator; swept 48 000–70 000 in Fig 4.
    pub estimator_ns_per_iteration: u64,
    /// Use the "dumb" constant estimator (`dumb_estimate_ns` per message)
    /// instead of the linear one (§III.A's second study).
    pub dumb_estimator: bool,
    /// The constant prediction of the dumb estimator, in nanoseconds (the
    /// paper uses the 600 µs all-runs average).
    pub dumb_estimate_ns: u64,
    /// Iteration-count distribution.
    pub iterations: IterationDist,
    /// Real-time jitter model for sender compute.
    pub jitter: JitterModel,
    /// Mean inter-arrival time of each sender's Poisson client, ns (the
    /// paper uses 1 msg / 1000 µs).
    pub mean_interarrival_ns: u64,
    /// Merger service time per message, ns (the paper uses 400 µs).
    pub merger_service_ns: u64,
    /// Round-trip cost of a curiosity probe, ns (the paper assumes 20 µs).
    pub probe_cost_ns: u64,
    /// Messages generated per sender before the clients stop.
    pub messages_per_sender: u64,
    /// Root RNG seed; every derived stream forks from it.
    pub seed: u64,
}

impl SimConfig {
    /// The §III.A baseline configuration: 2 senders, 60 µs/iteration,
    /// mean 10 iterations, Poisson 1 msg/1000 µs, merger 400 µs, probes
    /// 20 µs, per-tick normal jitter with σ = 0.1 — sender processors 60 %
    /// utilized, merger 80 %.
    pub fn paper_iii_a() -> Self {
        SimConfig {
            n_senders: 2,
            mode: ExecMode::Deterministic,
            silence: SilencePolicy::Curiosity,
            prescient: false,
            true_ns_per_iteration: 60_000,
            estimator_ns_per_iteration: 60_000,
            dumb_estimator: false,
            dumb_estimate_ns: 600_000,
            iterations: IterationDist::Uniform { lo: 1, hi: 19 },
            jitter: JitterModel::PerTickNormal { sd_per_tick: 0.1 },
            mean_interarrival_ns: 1_000_000,
            merger_service_ns: 400_000,
            probe_cost_ns: 20_000,
            messages_per_sender: 10_000,
            seed: 2009,
        }
    }

    /// The §III.B configuration: realistic (empirical) jitter with the
    /// regression coefficient 61 827 ns/iteration as ground truth.
    pub fn paper_iii_b(corpus: crate::EmpiricalCorpus) -> Self {
        SimConfig {
            true_ns_per_iteration: 61_827,
            estimator_ns_per_iteration: 61_827,
            jitter: JitterModel::Empirical(corpus),
            ..SimConfig::paper_iii_a()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_dist_moments() {
        assert_eq!(IterationDist::Constant(10).mean(), 10.0);
        assert_eq!(IterationDist::Uniform { lo: 1, hi: 19 }.mean(), 10.0);
        assert_eq!(IterationDist::Constant(10).compute_sd_micros(60.0), 0.0);
        // SD of U(1..=19) is sqrt((19²−1)/12) ≈ 5.477 iterations → ≈ 329 µs.
        let sd = IterationDist::Uniform { lo: 1, hi: 19 }.compute_sd_micros(60.0);
        assert!((sd - 328.6).abs() < 1.0, "{sd}");
    }

    #[test]
    fn paper_stages_preserve_the_mean() {
        let stages = IterationDist::paper_stages();
        assert_eq!(stages.len(), 10);
        assert_eq!(stages[0], IterationDist::Constant(10));
        assert_eq!(stages[9], IterationDist::Uniform { lo: 1, hi: 19 });
        for s in &stages {
            assert_eq!(s.mean(), 10.0);
        }
        // Variability is strictly increasing across stages.
        let sds: Vec<f64> = stages.iter().map(|s| s.compute_sd_micros(60.0)).collect();
        for pair in sds.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn paper_config_matches_iii_a_utilizations() {
        let cfg = SimConfig::paper_iii_a();
        // Sender: 10 iterations × 60 µs = 600 µs per 1000 µs → 60 %.
        let sender_util = cfg.iterations.mean() * cfg.true_ns_per_iteration as f64
            / cfg.mean_interarrival_ns as f64;
        assert!((sender_util - 0.6).abs() < 1e-9);
        // Merger: 2 senders × 400 µs per 1000 µs → 80 %.
        let merger_util =
            cfg.n_senders as f64 * cfg.merger_service_ns as f64 / cfg.mean_interarrival_ns as f64;
        assert!((merger_util - 0.8).abs() < 1e-9);
    }
}
