//! The deterministic merge gate.

use std::collections::BTreeMap;

use tart_vtime::{EventStamp, VirtualTime, WireClock, WireClockError, WireId};

/// What a [`MergeGate`] can tell its caller when asked for the next message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateDecision<T> {
    /// The earliest pending message is safe to process.
    Deliver {
        /// The wire it arrived on.
        wire: WireId,
        /// The message's own virtual time.
        vt: VirtualTime,
        /// The effective dequeue time: `max(vt, component clock)` (§II.E).
        dequeue_vt: VirtualTime,
        /// The payload.
        msg: T,
    },
    /// A message is pending but cannot yet be proven earliest — the gate is
    /// in **pessimism delay** (§II.E). Under curiosity-driven propagation
    /// the caller should probe the `lagging` wires.
    Blocked {
        /// Stamp of the held message.
        head: EventStamp,
        /// Wires that could still produce an earlier event, paired with the
        /// virtual time through which their silence is needed.
        lagging: Vec<(WireId, VirtualTime)>,
    },
    /// No messages are pending on any wire.
    Idle,
}

/// Counters the gate maintains for overhead accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateMetrics {
    /// Messages delivered.
    pub delivered: u64,
    /// Messages that arrived in a different order than their virtual times
    /// (the "# Msgs Received out of RT-order" series of Fig 4).
    pub out_of_order_arrivals: u64,
    /// Number of distinct pessimism-delay episodes: transitions from a
    /// deliverable/idle gate into a blocked one.
    pub pessimism_episodes: u64,
}

/// Merges a component's input wires into a single deterministic stream.
///
/// The gate owns one [`WireClock`] per input wire and applies the paper's
/// delivery rule: the pending message with the smallest [`EventStamp`] is
/// deliverable iff every other wire's earliest possible future stamp is
/// larger. Ties are impossible by construction — stamps embed the wire id
/// (§II.E footnote 2).
#[derive(Clone, Debug)]
pub struct MergeGate<T> {
    /// Keyed by wire id: deterministic iteration order.
    wires: BTreeMap<WireId, WireClock<T>>,
    clock: VirtualTime,
    max_vt_arrived: VirtualTime,
    was_blocked: bool,
    metrics: GateMetrics,
}

impl<T> MergeGate<T> {
    /// Creates a gate over the given input wires.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty or contains duplicates.
    pub fn new(wires: impl IntoIterator<Item = WireId>) -> Self {
        let mut map = BTreeMap::new();
        for w in wires {
            let prev = map.insert(w, WireClock::new(w));
            assert!(prev.is_none(), "duplicate input wire {w}");
        }
        assert!(
            !map.is_empty(),
            "a merge gate needs at least one input wire"
        );
        MergeGate {
            wires: map,
            clock: VirtualTime::ZERO,
            max_vt_arrived: VirtualTime::ZERO,
            was_blocked: false,
            metrics: GateMetrics::default(),
        }
    }

    /// The component clock: the virtual time through which the component has
    /// already computed. Dequeue times never precede it.
    pub fn clock(&self) -> VirtualTime {
        self.clock
    }

    /// Advances the component clock (typically to the completion time of the
    /// handler that just ran). The clock never moves backward.
    pub fn advance_clock(&mut self, vt: VirtualTime) {
        if vt > self.clock {
            self.clock = vt;
        }
    }

    /// Accepts a data message from `wire` stamped `vt`.
    ///
    /// # Errors
    ///
    /// Returns [`WireClockError::NonMonotonicMessage`] if the wire protocol
    /// is violated (senders must emit strictly increasing virtual times).
    pub fn push_message(
        &mut self,
        wire: WireId,
        vt: VirtualTime,
        msg: T,
    ) -> Result<(), WireClockError> {
        let clock = self
            .wires
            .get_mut(&wire)
            .unwrap_or_else(|| panic!("message on unknown wire {wire}"));
        clock.push_message(vt, msg)?;
        if vt < self.max_vt_arrived {
            self.metrics.out_of_order_arrivals += 1;
        } else {
            self.max_vt_arrived = vt;
        }
        Ok(())
    }

    /// Accepts a silence promise from `wire` through `vt` (never retracts).
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not an input of this gate.
    pub fn promise_silence(&mut self, wire: WireId, vt: VirtualTime) {
        self.wires
            .get_mut(&wire)
            .unwrap_or_else(|| panic!("silence on unknown wire {wire}"))
            .promise_silence_through(vt);
    }

    /// The watermark through which `wire` is fully accounted.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not an input of this gate.
    pub fn accounted_through(&self, wire: WireId) -> VirtualTime {
        self.wires[&wire].accounted_through()
    }

    /// Whether `wire` has ever delivered a message or silence promise.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not an input of this gate.
    pub fn has_heard(&self, wire: WireId) -> bool {
        self.wires[&wire].has_heard_anything()
    }

    /// The earliest virtual time a pending or future message on `wire`
    /// could carry (the sender-oracle building block).
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not an input of this gate.
    pub fn earliest_possible_vt(&self, wire: WireId) -> VirtualTime {
        self.wires[&wire].earliest_possible_stamp().vt
    }

    /// Total messages pending across all wires.
    pub fn pending_len(&self) -> usize {
        self.wires.values().map(WireClock::pending_len).sum()
    }

    /// The overhead counters.
    pub fn metrics(&self) -> GateMetrics {
        self.metrics
    }

    /// Stamp of the earliest pending message, if any (does not check
    /// deliverability).
    pub fn head_stamp(&self) -> Option<EventStamp> {
        self.wires.values().filter_map(WireClock::head_stamp).min()
    }

    /// Attempts to dequeue the next message in deterministic order.
    ///
    /// Non-destructive when blocked or idle: calling repeatedly while
    /// waiting for silence is the expected usage.
    pub fn try_next(&mut self) -> GateDecision<T> {
        let Some(head) = self.head_stamp() else {
            self.was_blocked = false;
            return GateDecision::Idle;
        };
        let mut lagging = Vec::new();
        for (id, wire) in &self.wires {
            if *id == head.wire {
                continue;
            }
            let earliest = wire.earliest_possible_stamp();
            if earliest < head {
                // This wire could still produce an earlier event; its
                // silence is needed through the head's virtual time.
                lagging.push((*id, head.vt));
            }
        }
        if !lagging.is_empty() {
            if !self.was_blocked {
                self.metrics.pessimism_episodes += 1;
                self.was_blocked = true;
            }
            return GateDecision::Blocked { head, lagging };
        }
        self.was_blocked = false;
        let (vt, msg) = self
            .wires
            .get_mut(&head.wire)
            .expect("head wire exists")
            .pop()
            .expect("head message exists");
        self.metrics.delivered += 1;
        let dequeue_vt = vt.max_with(self.clock);
        GateDecision::Deliver {
            wire: head.wire,
            vt,
            dequeue_vt,
            msg,
        }
    }

    /// Iterates over the input wire ids in deterministic (ascending) order.
    pub fn wire_ids(&self) -> impl Iterator<Item = WireId> + '_ {
        self.wires.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn w(n: u32) -> WireId {
        WireId::new(n)
    }

    fn gate2() -> MergeGate<&'static str> {
        MergeGate::new([w(1), w(2)])
    }

    #[test]
    #[should_panic(expected = "at least one input wire")]
    fn empty_gate_rejected() {
        let _: MergeGate<u8> = MergeGate::new([]);
    }

    #[test]
    #[should_panic(expected = "duplicate input wire")]
    fn duplicate_wire_rejected() {
        let _: MergeGate<u8> = MergeGate::new([w(1), w(1)]);
    }

    #[test]
    fn idle_when_empty() {
        let mut g = gate2();
        assert_eq!(g.try_next(), GateDecision::Idle);
        assert_eq!(g.pending_len(), 0);
        assert_eq!(g.head_stamp(), None);
    }

    #[test]
    fn paper_example_delivers_in_vt_order() {
        // §II.E: Sender1's message (vt 233000) arrives before Sender2's
        // (vt 202000); the gate must deliver Sender2's first.
        let mut g = gate2();
        g.push_message(w(1), vt(233_000), "s1").unwrap();
        match g.try_next() {
            GateDecision::Blocked { head, lagging } => {
                assert_eq!(head, EventStamp::new(vt(233_000), w(1)));
                assert_eq!(lagging, vec![(w(2), vt(233_000))]);
            }
            other => panic!("expected block, got {other:?}"),
        }
        g.push_message(w(2), vt(202_000), "s2").unwrap();
        // One arrival out of real-time order (202000 after 233000).
        assert_eq!(g.metrics().out_of_order_arrivals, 1);
        match g.try_next() {
            GateDecision::Deliver {
                wire,
                vt: t,
                msg,
                dequeue_vt,
            } => {
                assert_eq!((wire, t, msg), (w(2), vt(202_000), "s2"));
                assert_eq!(dequeue_vt, vt(202_000));
            }
            other => panic!("{other:?}"),
        }
        // s1 still blocked: wire 2 not yet silent through 233000.
        assert!(matches!(g.try_next(), GateDecision::Blocked { .. }));
        g.promise_silence(w(2), vt(232_999));
        // Still blocked: could produce an event AT 233000, and wire 2 < ...
        // no wait: earliest possible on wire2 is (233000, w2) which is
        // greater than (233000, w1) by tie-break, so deliverable.
        match g.try_next() {
            GateDecision::Deliver { wire, msg, .. } => {
                assert_eq!((wire, msg), (w(1), "s1"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(g.metrics().delivered, 2);
        assert_eq!(g.metrics().pessimism_episodes, 2);
    }

    #[test]
    fn tie_break_by_wire_id() {
        let mut g = gate2();
        g.push_message(w(2), vt(100), "high wire").unwrap();
        g.push_message(w(1), vt(100), "low wire").unwrap();
        match g.try_next() {
            GateDecision::Deliver { wire, .. } => assert_eq!(wire, w(1)),
            other => panic!("{other:?}"),
        }
        match g.try_next() {
            GateDecision::Deliver { wire, .. } => assert_eq!(wire, w(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tie_with_possible_lower_wire_blocks() {
        // Wire 2 has a message at t; wire 1 silent only through t-1. Wire 1
        // could still produce a message at exactly t, which would win the
        // tie-break — so the gate must hold.
        let mut g = gate2();
        g.push_message(w(2), vt(100), "m").unwrap();
        g.promise_silence(w(1), vt(99));
        assert!(matches!(g.try_next(), GateDecision::Blocked { .. }));
        g.promise_silence(w(1), vt(100));
        assert!(matches!(g.try_next(), GateDecision::Deliver { .. }));
    }

    #[test]
    fn tie_with_possible_higher_wire_delivers() {
        // Mirror image: wire 1 holds the message; wire 2 silent through t-1.
        // Wire 2's earliest possible stamp is (t, w2) which loses the
        // tie-break, so the gate can deliver immediately.
        let mut g = gate2();
        g.push_message(w(1), vt(100), "m").unwrap();
        g.promise_silence(w(2), vt(99));
        assert!(matches!(g.try_next(), GateDecision::Deliver { .. }));
    }

    #[test]
    fn single_wire_never_blocks() {
        let mut g: MergeGate<u32> = MergeGate::new([w(7)]);
        g.push_message(w(7), vt(10), 1).unwrap();
        g.push_message(w(7), vt(20), 2).unwrap();
        assert!(matches!(g.try_next(), GateDecision::Deliver { msg: 1, .. }));
        assert!(matches!(g.try_next(), GateDecision::Deliver { msg: 2, .. }));
        assert_eq!(g.try_next(), GateDecision::Idle);
        assert_eq!(g.metrics().pessimism_episodes, 0);
    }

    #[test]
    fn dequeue_vt_respects_component_clock() {
        let mut g: MergeGate<u32> = MergeGate::new([w(1)]);
        g.advance_clock(vt(500));
        g.push_message(w(1), vt(100), 9).unwrap();
        match g.try_next() {
            GateDecision::Deliver {
                vt: t, dequeue_vt, ..
            } => {
                assert_eq!(t, vt(100));
                assert_eq!(dequeue_vt, vt(500), "max(msg vt, clock)");
            }
            other => panic!("{other:?}"),
        }
        // Clock never moves backward.
        g.advance_clock(vt(200));
        assert_eq!(g.clock(), vt(500));
    }

    #[test]
    fn blocked_is_nondestructive_and_episode_counted_once() {
        let mut g = gate2();
        g.push_message(w(1), vt(50), "m").unwrap();
        for _ in 0..5 {
            assert!(matches!(g.try_next(), GateDecision::Blocked { .. }));
        }
        assert_eq!(g.metrics().pessimism_episodes, 1, "one episode, many polls");
        g.promise_silence(w(2), vt(50));
        assert!(matches!(g.try_next(), GateDecision::Deliver { .. }));
        assert_eq!(g.pending_len(), 0);
    }

    #[test]
    fn lagging_excludes_wires_with_later_messages() {
        let mut g: MergeGate<&str> = MergeGate::new([w(1), w(2), w(3)]);
        g.push_message(w(2), vt(100), "head").unwrap();
        g.push_message(w(3), vt(200), "later").unwrap();
        match g.try_next() {
            GateDecision::Blocked { lagging, .. } => {
                // Wire 3 has a pending later message: not lagging.
                // Wire 1 has nothing: lagging, needed through 100.
                assert_eq!(lagging, vec![(w(1), vt(100))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn protocol_violation_surfaces() {
        let mut g = gate2();
        g.promise_silence(w(1), vt(100));
        assert!(g.push_message(w(1), vt(50), "late").is_err());
    }

    #[test]
    #[should_panic(expected = "unknown wire")]
    fn unknown_wire_panics() {
        let mut g = gate2();
        let _ = g.push_message(w(9), vt(1), "x");
    }

    #[test]
    fn wire_ids_in_order() {
        let g: MergeGate<u8> = MergeGate::new([w(5), w(2), w(9)]);
        assert_eq!(g.wire_ids().collect::<Vec<_>>(), vec![w(2), w(5), w(9)]);
    }

    #[test]
    fn accounted_through_tracks_both_kinds() {
        let mut g = gate2();
        g.push_message(w(1), vt(100), "m").unwrap();
        g.promise_silence(w(2), vt(40));
        assert_eq!(g.accounted_through(w(1)), vt(100));
        assert_eq!(g.accounted_through(w(2)), vt(40));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    /// Per-wire strictly increasing virtual times, as senders must produce.
    fn arb_wire_times() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(1u64..50, 0..12).prop_map(|gaps| {
            let mut t = 0;
            gaps.into_iter()
                .map(|g| {
                    t += g;
                    t
                })
                .collect()
        })
    }

    /// Drives a gate to completion given an arrival interleaving, returning
    /// the delivered (wire, vt) sequence. `order` indexes into the flattened
    /// arrival list to pick which wire delivers its next message.
    fn run(wires: &[Vec<u64>], interleave_seed: u64) -> Vec<(WireId, u64)> {
        let ids: Vec<WireId> = (0..wires.len() as u32).map(WireId::new).collect();
        let mut gate: MergeGate<u64> = MergeGate::new(ids.iter().copied());
        let mut cursors = vec![0usize; wires.len()];
        let mut delivered = Vec::new();
        let mut rng_state = interleave_seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next_rand = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        loop {
            // Wires with messages left to "arrive".
            let live: Vec<usize> = (0..wires.len())
                .filter(|&i| cursors[i] < wires[i].len())
                .collect();
            if live.is_empty() {
                break;
            }
            let pick = live[(next_rand() % live.len() as u64) as usize];
            let t = wires[pick][cursors[pick]];
            cursors[pick] += 1;
            gate.push_message(WireId::new(pick as u32), vt(t), t)
                .unwrap();
            // Greedily drain whatever has become deliverable.
            while let GateDecision::Deliver { wire, vt: t, .. } = gate.try_next() {
                delivered.push((wire, t.as_ticks()));
            }
        }
        // End of stream: all senders promise silence forever.
        for id in ids {
            gate.promise_silence(id, VirtualTime::MAX);
        }
        while let GateDecision::Deliver { wire, vt: t, .. } = gate.try_next() {
            delivered.push((wire, t.as_ticks()));
        }
        delivered
    }

    proptest! {
        /// The determinism theorem: delivery order is independent of the
        /// real-time arrival interleaving.
        #[test]
        fn delivery_order_independent_of_arrival_order(
            wires in proptest::collection::vec(arb_wire_times(), 1..5),
            seed_a in any::<u64>(),
            seed_b in any::<u64>(),
        ) {
            let a = run(&wires, seed_a);
            let b = run(&wires, seed_b);
            prop_assert_eq!(a, b);
        }

        /// Deliveries come out sorted by (virtual time, wire id) — exactly
        /// the paper's merge semantics.
        #[test]
        fn deliveries_are_stamp_sorted(
            wires in proptest::collection::vec(arb_wire_times(), 1..5),
            seed in any::<u64>(),
        ) {
            let delivered = run(&wires, seed);
            let total: usize = wires.iter().map(Vec::len).sum();
            prop_assert_eq!(delivered.len(), total, "nothing lost, nothing duplicated");
            let stamps: Vec<EventStamp> = delivered
                .iter()
                .map(|&(w, t)| EventStamp::new(vt(t), w))
                .collect();
            for pair in stamps.windows(2) {
                prop_assert!(pair[0] < pair[1], "out of order: {:?}", pair);
            }
        }
    }
}
