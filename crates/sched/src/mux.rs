//! Routing incoming wires to per-component merge gates.

use std::collections::BTreeMap;

use tart_vtime::{ComponentId, VirtualTime, WireClockError, WireId};

use crate::{GateDecision, MergeGate};

/// An engine-level multiplexer: one [`MergeGate`] per hosted component, plus
/// the wire → component routing table.
///
/// An execution engine hosts several components, each with its own logical
/// input queue (§II.B: "there is one logical queue of all messages waiting
/// to enter a component"). The mux routes arriving envelopes to the right
/// gate and lets the engine poll components for ready work in a
/// deterministic order.
///
/// # Example
///
/// ```
/// use tart_sched::{GateDecision, InputMux};
/// use tart_vtime::{ComponentId, VirtualTime, WireId};
///
/// let merger = ComponentId::new(0);
/// let mut mux: InputMux<&str> = InputMux::new();
/// mux.add_component(merger, [WireId::new(1), WireId::new(2)]);
/// mux.push_message(WireId::new(1), VirtualTime::from_ticks(10), "hello").unwrap();
/// mux.promise_silence(WireId::new(2), VirtualTime::from_ticks(10));
/// let (who, decision) = mux.poll().expect("merger is ready");
/// assert_eq!(who, merger);
/// assert!(matches!(decision, GateDecision::Deliver { .. }));
/// ```
#[derive(Clone, Debug, Default)]
pub struct InputMux<T> {
    gates: BTreeMap<ComponentId, MergeGate<T>>,
    route: BTreeMap<WireId, ComponentId>,
}

impl<T> InputMux<T> {
    /// Creates an empty mux.
    pub fn new() -> Self {
        InputMux {
            gates: BTreeMap::new(),
            route: BTreeMap::new(),
        }
    }

    /// Registers a component and its input wires.
    ///
    /// # Panics
    ///
    /// Panics if the component is already registered, a wire is already
    /// routed elsewhere, or `wires` is empty.
    pub fn add_component(&mut self, id: ComponentId, wires: impl IntoIterator<Item = WireId>) {
        let wires: Vec<WireId> = wires.into_iter().collect();
        for w in &wires {
            let prev = self.route.insert(*w, id);
            assert!(prev.is_none(), "wire {w} already routed to {:?}", prev);
        }
        let prev = self.gates.insert(id, MergeGate::new(wires));
        assert!(prev.is_none(), "component {id} already registered");
    }

    /// The component a wire delivers to, if routed.
    pub fn target_of(&self, wire: WireId) -> Option<ComponentId> {
        self.route.get(&wire).copied()
    }

    /// Mutable access to a component's gate.
    ///
    /// # Panics
    ///
    /// Panics if the component is not registered.
    pub fn gate_mut(&mut self, id: ComponentId) -> &mut MergeGate<T> {
        self.gates
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown component {id}"))
    }

    /// Shared access to a component's gate.
    ///
    /// # Panics
    ///
    /// Panics if the component is not registered.
    pub fn gate(&self, id: ComponentId) -> &MergeGate<T> {
        self.gates
            .get(&id)
            .unwrap_or_else(|| panic!("unknown component {id}"))
    }

    /// Routes a data message to the owning gate.
    ///
    /// # Errors
    ///
    /// Propagates [`WireClockError`] from the gate.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not routed to any component.
    pub fn push_message(
        &mut self,
        wire: WireId,
        vt: VirtualTime,
        msg: T,
    ) -> Result<(), WireClockError> {
        let target = self.route[&wire];
        self.gates
            .get_mut(&target)
            .expect("routed component exists")
            .push_message(wire, vt, msg)
    }

    /// Routes a silence promise to the owning gate.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not routed to any component.
    pub fn promise_silence(&mut self, wire: WireId, vt: VirtualTime) {
        let target = self.route[&wire];
        self.gates
            .get_mut(&target)
            .expect("routed component exists")
            .promise_silence(wire, vt);
    }

    /// Polls components in deterministic (id) order and returns the first
    /// deliverable message, or `None` when every gate is idle or blocked.
    pub fn poll(&mut self) -> Option<(ComponentId, GateDecision<T>)> {
        for (id, gate) in self.gates.iter_mut() {
            let decision = gate.try_next();
            if matches!(decision, GateDecision::Deliver { .. }) {
                return Some((*id, decision));
            }
        }
        None
    }

    /// Collects the blocked components and their lagging wires — the
    /// curiosity-probe work list.
    pub fn blocked(&mut self) -> Vec<(ComponentId, GateDecision<T>)> {
        let mut out = Vec::new();
        for (id, gate) in self.gates.iter_mut() {
            let decision = gate.try_next();
            if matches!(decision, GateDecision::Blocked { .. }) {
                out.push((*id, decision));
            }
        }
        out
    }

    /// Iterates over registered component ids in deterministic order.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.gates.keys().copied()
    }

    /// Total pending messages across all gates.
    pub fn pending_len(&self) -> usize {
        self.gates.values().map(MergeGate::pending_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn w(n: u32) -> WireId {
        WireId::new(n)
    }

    fn c(n: u32) -> ComponentId {
        ComponentId::new(n)
    }

    fn two_component_mux() -> InputMux<u32> {
        let mut mux = InputMux::new();
        mux.add_component(c(0), [w(0)]);
        mux.add_component(c(1), [w(1), w(2)]);
        mux
    }

    #[test]
    fn routing_and_polling() {
        let mut mux = two_component_mux();
        assert_eq!(mux.target_of(w(0)), Some(c(0)));
        assert_eq!(mux.target_of(w(2)), Some(c(1)));
        assert_eq!(mux.target_of(w(9)), None);

        mux.push_message(w(1), vt(5), 11).unwrap();
        // c1 blocked on w2; c0 idle → poll yields nothing.
        assert!(mux.poll().is_none());
        let blocked = mux.blocked();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].0, c(1));

        mux.promise_silence(w(2), vt(5));
        let (id, decision) = mux.poll().unwrap();
        assert_eq!(id, c(1));
        assert!(matches!(decision, GateDecision::Deliver { msg: 11, .. }));
        assert!(mux.poll().is_none());
    }

    #[test]
    fn poll_order_is_deterministic_by_component_id() {
        let mut mux = two_component_mux();
        mux.push_message(w(0), vt(100), 1).unwrap(); // c0 ready
        mux.push_message(w(1), vt(1), 2).unwrap();
        mux.promise_silence(w(2), vt(1)); // c1 ready too
        let (first, _) = mux.poll().unwrap();
        assert_eq!(first, c(0), "lowest component id polls first");
        let (second, _) = mux.poll().unwrap();
        assert_eq!(second, c(1));
    }

    #[test]
    fn pending_and_ids() {
        let mut mux = two_component_mux();
        assert_eq!(mux.component_ids().collect::<Vec<_>>(), vec![c(0), c(1)]);
        mux.push_message(w(0), vt(1), 0).unwrap();
        mux.push_message(w(1), vt(1), 0).unwrap();
        assert_eq!(mux.pending_len(), 2);
        assert_eq!(mux.gate(c(1)).pending_len(), 1);
        mux.gate_mut(c(0)).advance_clock(vt(9));
        assert_eq!(mux.gate(c(0)).clock(), vt(9));
    }

    #[test]
    #[should_panic(expected = "already routed")]
    fn wire_cannot_feed_two_components() {
        let mut mux: InputMux<u8> = InputMux::new();
        mux.add_component(c(0), [w(0)]);
        mux.add_component(c(1), [w(0)]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn component_cannot_register_twice() {
        let mut mux: InputMux<u8> = InputMux::new();
        mux.add_component(c(0), [w(0)]);
        mux.add_component(c(0), [w(1)]);
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn unknown_gate_lookup_panics() {
        let mux: InputMux<u8> = InputMux::new();
        let _ = mux.gate(c(9));
    }
}
