//! Deterministic pessimistic scheduling for TART.
//!
//! Unlike Jefferson's optimistic Time Warp, "TART's scheduling algorithm is
//! pessimistic: a scheduler processes input messages in strict virtual time
//! order without rollback" (§II.D). The decision of *when the earliest
//! pending message is safe to dequeue* is made by a [`MergeGate`]: a message
//! stamped `t` on wire `w` may be delivered only once every other input wire
//! can no longer produce an event stamped before `(t, w)` — either because a
//! pending message proves it, or because the sender promised silence.
//!
//! The gate is pure logic over [`tart_vtime::WireClock`]s; the simulator and
//! the real engine both drive it, supplying real transports and real time.
//! Its central property — **the delivery sequence is a function of the
//! message set alone, independent of arrival interleaving** — is what makes
//! checkpoint–replay recovery correct, and is enforced here by property
//! tests.
//!
//! # Example
//!
//! ```
//! use tart_sched::{GateDecision, MergeGate};
//! use tart_vtime::{VirtualTime, WireId};
//!
//! let vt = VirtualTime::from_ticks;
//! let (w1, w2) = (WireId::new(1), WireId::new(2));
//! let mut gate: MergeGate<&str> = MergeGate::new([w1, w2]);
//!
//! // Sender1's message arrives FIRST in real time, but at a LATER virtual
//! // time (the paper's running example: 233000 vs 202000).
//! gate.push_message(w1, vt(233_000), "from sender 1").unwrap();
//! // Pessimism delay: wire 2 might still produce something earlier.
//! assert!(matches!(gate.try_next(), GateDecision::Blocked { .. }));
//!
//! gate.push_message(w2, vt(202_000), "from sender 2").unwrap();
//! // Now the gate delivers in virtual-time order: Sender2 first.
//! match gate.try_next() {
//!     GateDecision::Deliver { wire, msg, .. } => {
//!         assert_eq!(wire, w2);
//!         assert_eq!(msg, "from sender 2");
//!     }
//!     other => panic!("expected delivery, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
mod mux;

pub use gate::{GateDecision, GateMetrics, MergeGate};
pub use mux::InputMux;
