//! Virtual time and virtual duration newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in ticks since the epoch of a run.
///
/// One tick corresponds to one nanosecond, matching the paper's Java
/// implementation ("in our implementation, a tick is a nanosecond", §II.E).
/// Virtual time is intended to approximate real time, but correctness only
/// requires that (a) causally later events carry later virtual times and
/// (b) all virtual-time computations are deterministic (§II.D).
///
/// # Example
///
/// ```
/// use tart_vtime::{VirtualTime, VirtualDuration};
///
/// let t = VirtualTime::from_micros(50);
/// assert_eq!(t.as_ticks(), 50_000);
/// assert_eq!(t + VirtualDuration::from_ticks(1), VirtualTime::from_ticks(50_001));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualTime(u64);

/// A span of virtual time in ticks, e.g. an estimator's predicted compute
/// or transmission time.
///
/// # Example
///
/// ```
/// use tart_vtime::VirtualDuration;
///
/// let per_iter = VirtualDuration::from_micros(61);
/// assert_eq!((per_iter * 3).as_ticks(), 183_000);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The start of virtual time (tick zero).
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The greatest representable virtual time; used as an "unbounded"
    /// sentinel for silence promises of finished senders.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates a virtual time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        VirtualTime(ticks)
    }

    /// Creates a virtual time from microseconds (1 µs = 1000 ticks).
    pub const fn from_micros(micros: u64) -> Self {
        VirtualTime(micros * 1_000)
    }

    /// Creates a virtual time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        VirtualTime(millis * 1_000_000)
    }

    /// Returns the raw tick count.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Returns this time expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the immediately following tick, saturating at [`VirtualTime::MAX`].
    pub const fn next(self) -> Self {
        VirtualTime(self.0.saturating_add(1))
    }

    /// Returns the immediately preceding tick, saturating at [`VirtualTime::ZERO`].
    pub const fn prev(self) -> Self {
        VirtualTime(self.0.saturating_sub(1))
    }

    /// Returns the later of `self` and `other`.
    ///
    /// This implements the dequeue rule of §II.E: "the dequeued virtual time
    /// of that new message will be the maximum of its virtual time and" the
    /// component's current clock.
    pub fn max_with(self, other: VirtualTime) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the duration elapsed since `earlier`, or `None` if `earlier`
    /// is actually later than `self`.
    pub fn since(self, earlier: VirtualTime) -> Option<VirtualDuration> {
        self.0.checked_sub(earlier.0).map(VirtualDuration)
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, d: VirtualDuration) -> Self {
        VirtualTime(self.0.saturating_add(d.0))
    }
}

impl VirtualDuration {
    /// The zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);
    /// One tick.
    pub const TICK: VirtualDuration = VirtualDuration(1);

    /// Creates a duration from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        VirtualDuration(ticks)
    }

    /// Creates a duration from microseconds (1 µs = 1000 ticks).
    pub const fn from_micros(micros: u64) -> Self {
        VirtualDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        VirtualDuration(millis * 1_000_000)
    }

    /// Returns the raw tick count.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Returns this duration expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` if this duration is zero ticks long.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Creates a duration from a non-negative floating-point tick count,
    /// rounding to the nearest tick.
    ///
    /// Negative and non-finite inputs round to zero; estimates must always
    /// move virtual time forward, never backward.
    pub fn from_ticks_f64(ticks: f64) -> Self {
        if ticks.is_finite() && ticks > 0.0 {
            VirtualDuration(ticks.round() as u64)
        } else {
            VirtualDuration(0)
        }
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(
            self.0
                .checked_add(rhs.0)
                .expect("virtual time overflow: run exceeded ~584 years of ticks"),
        )
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        *self = *self + rhs;
    }
}

impl Sub<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time underflow: subtracted past tick zero"),
        )
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_add(rhs.0)
                .expect("virtual duration overflow"),
        )
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        *self = *self + rhs;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual duration underflow"),
        )
    }
}

impl SubAssign for VirtualDuration {
    fn sub_assign(&mut self, rhs: VirtualDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0.checked_mul(rhs).expect("virtual duration overflow"))
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == VirtualTime::MAX {
            write!(f, "vt:MAX")
        } else {
            write!(f, "vt:{}", self.0)
        }
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for VirtualTime {
    fn from(ticks: u64) -> Self {
        VirtualTime(ticks)
    }
}

impl From<VirtualTime> for u64 {
    fn from(t: VirtualTime) -> u64 {
        t.0
    }
}

impl From<u64> for VirtualDuration {
    fn from(ticks: u64) -> Self {
        VirtualDuration(ticks)
    }
}

impl From<VirtualDuration> for u64 {
    fn from(d: VirtualDuration) -> u64 {
        d.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(VirtualTime::from_micros(61).as_ticks(), 61_000);
        assert_eq!(VirtualTime::from_millis(2).as_ticks(), 2_000_000);
        assert_eq!(VirtualDuration::from_micros(400).as_ticks(), 400_000);
        assert_eq!(VirtualDuration::from_millis(1).as_ticks(), 1_000_000);
        assert_eq!(VirtualTime::from_ticks(7).as_micros_f64(), 0.007);
    }

    #[test]
    fn paper_example_arrival_times() {
        // §II.E: messages arriving at Sender1/Sender2 at 50000 and 80000
        // ticks with sentence lengths 3 and 2 yield arrival times
        // 233000 and 202000 with a 61000-tick/iteration estimator.
        let est = VirtualDuration::from_ticks(61_000);
        let m1 = VirtualTime::from_ticks(50_000) + est * 3;
        let m2 = VirtualTime::from_ticks(80_000) + est * 2;
        assert_eq!(m1.as_ticks(), 233_000);
        assert_eq!(m2.as_ticks(), 202_000);
        assert!(m2 < m1, "Sender2's message must be processed first");
    }

    #[test]
    fn next_prev_saturate() {
        assert_eq!(VirtualTime::ZERO.prev(), VirtualTime::ZERO);
        assert_eq!(VirtualTime::MAX.next(), VirtualTime::MAX);
        assert_eq!(VirtualTime::from_ticks(5).next().as_ticks(), 6);
        assert_eq!(VirtualTime::from_ticks(5).prev().as_ticks(), 4);
    }

    #[test]
    fn dequeue_rule_max_with() {
        let clock = VirtualTime::from_ticks(233_000);
        let early_msg = VirtualTime::from_ticks(100_000);
        let late_msg = VirtualTime::from_ticks(300_000);
        assert_eq!(early_msg.max_with(clock), clock);
        assert_eq!(late_msg.max_with(clock), late_msg);
    }

    #[test]
    fn since_returns_none_for_future() {
        let a = VirtualTime::from_ticks(10);
        let b = VirtualTime::from_ticks(30);
        assert_eq!(b.since(a), Some(VirtualDuration::from_ticks(20)));
        assert_eq!(a.since(b), None);
    }

    #[test]
    fn duration_arithmetic() {
        let d = VirtualDuration::from_ticks(100);
        assert_eq!((d * 3).as_ticks(), 300);
        assert_eq!((d / 4).as_ticks(), 25);
        assert_eq!((d + d).as_ticks(), 200);
        assert_eq!((d - VirtualDuration::from_ticks(40)).as_ticks(), 60);
        assert!(VirtualDuration::ZERO.is_zero());
        assert!(!VirtualDuration::TICK.is_zero());
    }

    #[test]
    fn from_ticks_f64_rounds_and_clamps() {
        assert_eq!(VirtualDuration::from_ticks_f64(1.4).as_ticks(), 1);
        assert_eq!(VirtualDuration::from_ticks_f64(1.6).as_ticks(), 2);
        assert_eq!(VirtualDuration::from_ticks_f64(-5.0).as_ticks(), 0);
        assert_eq!(VirtualDuration::from_ticks_f64(f64::NAN).as_ticks(), 0);
        assert_eq!(VirtualDuration::from_ticks_f64(f64::INFINITY).as_ticks(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_minus_larger_duration_panics() {
        let _ = VirtualTime::from_ticks(5) - VirtualDuration::from_ticks(6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VirtualTime::from_ticks(42)), "vt:42");
        assert_eq!(format!("{}", VirtualTime::MAX), "vt:MAX");
        assert_eq!(format!("{}", VirtualDuration::from_ticks(9)), "9t");
    }

    #[test]
    fn conversions_round_trip() {
        let t: VirtualTime = 123u64.into();
        let back: u64 = t.into();
        assert_eq!(back, 123);
        let d: VirtualDuration = 55u64.into();
        let back: u64 = d.into();
        assert_eq!(back, 55);
    }
}
