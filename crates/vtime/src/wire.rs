//! Receiver-side per-wire tick accounting.

use std::collections::VecDeque;
use std::fmt;

use crate::{EventStamp, VirtualTime, WireId};

/// Errors raised when a sender violates the wire protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireClockError {
    /// A message arrived whose virtual time is not later than the wire's
    /// accounted watermark. Senders must emit messages in strictly
    /// increasing virtual-time order, and may never send data into a range
    /// they already promised silent.
    NonMonotonicMessage {
        /// Virtual time of the offending message.
        got: VirtualTime,
        /// Watermark the wire was already accounted through.
        accounted_through: VirtualTime,
    },
}

impl fmt::Display for WireClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireClockError::NonMonotonicMessage {
                got,
                accounted_through,
            } => write!(
                f,
                "message at {got} arrived on a wire already accounted through {accounted_through}"
            ),
        }
    }
}

impl std::error::Error for WireClockError {}

/// Tracks one input wire at a receiver: the pending (not yet dequeued)
/// messages and the watermark through which every tick is accounted as
/// either data or silence.
///
/// A wire is a reliable FIFO stream in which each tick is either a *data*
/// tick carrying a message or a *silence* tick (§II.D, §II.F.1). The sender
/// emits messages in increasing virtual-time order; receiving a message at
/// time `t` therefore implicitly accounts for every tick up to and including
/// `t`. Explicit silence promises (lazy, curiosity-driven, or aggressive —
/// §II.G.3) extend the watermark without data.
///
/// The key query for pessimistic scheduling is
/// [`earliest_possible_stamp`](WireClock::earliest_possible_stamp): the
/// smallest event stamp any *future or pending* message on this wire can
/// carry. A competing message is safe to deliver once its stamp is smaller
/// than that bound for every other wire.
///
/// # Example
///
/// ```
/// use tart_vtime::{VirtualTime, WireClock, WireId};
///
/// let vt = VirtualTime::from_ticks;
/// let mut w: WireClock<&str> = WireClock::new(WireId::new(7));
/// w.push_message(vt(202_000), "from sender 2")?;
/// assert_eq!(w.accounted_through(), vt(202_000));
/// assert_eq!(w.earliest_possible_stamp().vt, vt(202_000));
/// assert_eq!(w.pop(), Some((vt(202_000), "from sender 2")));
/// // Now empty: the earliest possible future message is one tick past the
/// // watermark.
/// assert_eq!(w.earliest_possible_stamp().vt, vt(202_001));
/// # Ok::<(), tart_vtime::WireClockError>(())
/// ```
#[derive(Clone, Debug)]
pub struct WireClock<T> {
    id: WireId,
    pending: VecDeque<(VirtualTime, T)>,
    /// Every tick `<= accounted` is known to be either silence or a data
    /// tick already received. Future messages must have `vt > accounted`
    /// unless they are still queued in `pending`.
    accounted: VirtualTime,
    /// Whether tick 0 itself has been accounted for. `accounted == ZERO`
    /// is ambiguous between "nothing heard yet" and "silent through tick 0";
    /// this flag disambiguates.
    heard_anything: bool,
}

impl<T> WireClock<T> {
    /// Creates a wire clock with nothing yet accounted for.
    pub fn new(id: WireId) -> Self {
        WireClock {
            id,
            pending: VecDeque::new(),
            accounted: VirtualTime::ZERO,
            heard_anything: false,
        }
    }

    /// The wire's identity (also the deterministic tie-breaker).
    pub fn id(&self) -> WireId {
        self.id
    }

    /// The watermark through which every tick is accounted (data or silence).
    ///
    /// Returns [`VirtualTime::ZERO`] when nothing has been heard; use
    /// [`has_heard_anything`](WireClock::has_heard_anything) to distinguish
    /// that case from an explicit promise of silence through tick zero.
    pub fn accounted_through(&self) -> VirtualTime {
        self.accounted
    }

    /// Whether any message or silence promise has ever arrived.
    pub fn has_heard_anything(&self) -> bool {
        self.heard_anything
    }

    /// Number of pending (received but not yet dequeued) messages.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no messages are pending.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Accepts a data message stamped `vt`.
    ///
    /// # Errors
    ///
    /// Returns [`WireClockError::NonMonotonicMessage`] if `vt` does not lie
    /// strictly beyond the accounted watermark (equal is allowed only for
    /// the very first tick ever heard).
    pub fn push_message(&mut self, vt: VirtualTime, msg: T) -> Result<(), WireClockError> {
        let min_ok = if self.heard_anything {
            self.accounted.next()
        } else {
            VirtualTime::ZERO
        };
        if vt < min_ok {
            return Err(WireClockError::NonMonotonicMessage {
                got: vt,
                accounted_through: self.accounted,
            });
        }
        self.accounted = vt;
        self.heard_anything = true;
        self.pending.push_back((vt, msg));
        Ok(())
    }

    /// Accepts a promise that the wire is silent through `vt`.
    ///
    /// Promises never retract: a promise below the current watermark is a
    /// harmless no-op (it can legitimately happen when a lazily propagated
    /// silence races a curiosity reply).
    pub fn promise_silence_through(&mut self, vt: VirtualTime) {
        if !self.heard_anything || vt > self.accounted {
            self.accounted = self.accounted.max(vt);
            self.heard_anything = true;
        }
    }

    /// The smallest event stamp any pending or future message on this wire
    /// can carry.
    ///
    /// * With a pending message, that message's own stamp.
    /// * Otherwise, one tick past the accounted watermark (or tick zero if
    ///   nothing has been heard yet).
    pub fn earliest_possible_stamp(&self) -> EventStamp {
        match self.pending.front() {
            Some((vt, _)) => EventStamp::new(*vt, self.id),
            None => {
                let vt = if self.heard_anything {
                    self.accounted.next()
                } else {
                    VirtualTime::ZERO
                };
                EventStamp::new(vt, self.id)
            }
        }
    }

    /// The stamp of the pending head message, if any.
    pub fn head_stamp(&self) -> Option<EventStamp> {
        self.pending
            .front()
            .map(|(vt, _)| EventStamp::new(*vt, self.id))
    }

    /// Removes and returns the pending head message.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.pending.pop_front()
    }

    /// Peeks at the pending head message.
    pub fn peek(&self) -> Option<(&VirtualTime, &T)> {
        self.pending.front().map(|(vt, m)| (vt, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn fresh_wire_knows_nothing() {
        let w: WireClock<u32> = WireClock::new(WireId::new(1));
        assert!(!w.has_heard_anything());
        assert!(w.is_idle());
        assert_eq!(
            w.earliest_possible_stamp(),
            EventStamp::new(vt(0), WireId::new(1))
        );
    }

    #[test]
    fn message_advances_watermark() {
        let mut w = WireClock::new(WireId::new(1));
        w.push_message(vt(100), "a").unwrap();
        assert_eq!(w.accounted_through(), vt(100));
        assert_eq!(w.pending_len(), 1);
        w.push_message(vt(101), "b").unwrap();
        assert_eq!(w.accounted_through(), vt(101));
        assert_eq!(w.pop(), Some((vt(100), "a")));
        // Popping does not move the watermark back.
        assert_eq!(w.accounted_through(), vt(101));
    }

    #[test]
    fn first_message_may_be_at_tick_zero() {
        let mut w = WireClock::new(WireId::new(1));
        w.push_message(vt(0), "boot").unwrap();
        assert_eq!(w.accounted_through(), vt(0));
        // But a second message at tick zero is non-monotonic.
        assert!(w.push_message(vt(0), "dup").is_err());
    }

    #[test]
    fn rejects_message_into_promised_silence() {
        let mut w = WireClock::new(WireId::new(1));
        w.promise_silence_through(vt(500));
        let err = w.push_message(vt(300), "late").unwrap_err();
        assert_eq!(
            err,
            WireClockError::NonMonotonicMessage {
                got: vt(300),
                accounted_through: vt(500)
            }
        );
        // Error formats meaningfully.
        assert!(err.to_string().contains("vt:300"));
        // Boundary: exactly at the watermark is also rejected...
        assert!(w.push_message(vt(500), "边").is_err());
        // ...one past it is fine.
        w.push_message(vt(501), "ok").unwrap();
    }

    #[test]
    fn silence_promises_never_retract() {
        let mut w: WireClock<()> = WireClock::new(WireId::new(1));
        w.promise_silence_through(vt(500));
        w.promise_silence_through(vt(300));
        assert_eq!(w.accounted_through(), vt(500));
    }

    #[test]
    fn silence_through_zero_counts_as_heard() {
        let mut w: WireClock<()> = WireClock::new(WireId::new(4));
        w.promise_silence_through(vt(0));
        assert!(w.has_heard_anything());
        assert_eq!(w.earliest_possible_stamp().vt, vt(1));
    }

    #[test]
    fn earliest_possible_stamp_tracks_state() {
        let mut w = WireClock::new(WireId::new(2));
        w.promise_silence_through(vt(99));
        assert_eq!(w.earliest_possible_stamp().vt, vt(100));
        w.push_message(vt(150), 'x').unwrap();
        assert_eq!(w.earliest_possible_stamp().vt, vt(150));
        assert_eq!(w.head_stamp().unwrap().vt, vt(150));
        w.pop().unwrap();
        assert_eq!(w.earliest_possible_stamp().vt, vt(151));
        assert_eq!(w.head_stamp(), None);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut w = WireClock::new(WireId::new(3));
        for (t, m) in [(10, 'a'), (20, 'b'), (30, 'c')] {
            w.push_message(vt(t), m).unwrap();
        }
        assert_eq!(w.peek(), Some((&vt(10), &'a')));
        assert_eq!(w.pop(), Some((vt(10), 'a')));
        assert_eq!(w.pop(), Some((vt(20), 'b')));
        assert_eq!(w.pop(), Some((vt(30), 'c')));
        assert_eq!(w.pop(), None);
    }
}
