//! Closed tick intervals and canonical interval sets.
//!
//! Every tick on a wire must be accounted for as either a *data* tick or a
//! *silence* tick (§II.F.1). Receivers track the ticks they have heard about
//! with an [`IntervalSet`]; after a failover or a lossy link, the holes in
//! that set are precisely the tick ranges that must be replayed (§II.F.4).

use std::fmt;

use crate::VirtualTime;

/// A closed, non-empty range of virtual-time ticks `[lo, hi]`.
///
/// # Example
///
/// ```
/// use tart_vtime::{Interval, VirtualTime};
///
/// let i = Interval::new(VirtualTime::from_ticks(10), VirtualTime::from_ticks(20));
/// assert!(i.contains(VirtualTime::from_ticks(15)));
/// assert_eq!(i.len_ticks(), 11);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    lo: VirtualTime,
    hi: VirtualTime,
}

impl Interval {
    /// Creates the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`; intervals are never empty.
    pub fn new(lo: VirtualTime, hi: VirtualTime) -> Self {
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval { lo, hi }
    }

    /// Creates the single-tick interval `[t, t]`.
    pub fn point(t: VirtualTime) -> Self {
        Interval { lo: t, hi: t }
    }

    /// The inclusive lower bound.
    pub const fn lo(self) -> VirtualTime {
        self.lo
    }

    /// The inclusive upper bound.
    pub const fn hi(self) -> VirtualTime {
        self.hi
    }

    /// Number of ticks covered (saturating at `u64::MAX`).
    pub fn len_ticks(self) -> u64 {
        (self.hi.as_ticks() - self.lo.as_ticks()).saturating_add(1)
    }

    /// Returns `true` if `t` lies inside the interval.
    pub fn contains(self, t: VirtualTime) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// Returns `true` if the two intervals share at least one tick.
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` if the two intervals overlap or are adjacent
    /// (e.g. `[1,3]` and `[4,6]`), i.e. their union is a single interval.
    pub fn touches(self, other: Interval) -> bool {
        let extended_hi = self.hi.next();
        let other_extended_hi = other.hi.next();
        self.lo <= other_extended_hi && other.lo <= extended_hi
    }

    /// Returns the intersection, if non-empty.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.lo.as_ticks(), self.hi.as_ticks())
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A canonical set of ticks: sorted, disjoint, non-adjacent closed intervals.
///
/// The representation is always normalized, so two `IntervalSet`s covering
/// the same ticks compare equal regardless of insertion order — a property
/// the replay protocol relies on when comparing received-tick accounts.
///
/// # Example
///
/// ```
/// use tart_vtime::{Interval, IntervalSet, VirtualTime};
///
/// let vt = VirtualTime::from_ticks;
/// let mut s = IntervalSet::new();
/// s.insert(Interval::new(vt(0), vt(4)));
/// s.insert(Interval::new(vt(10), vt(14)));
/// s.insert(Interval::new(vt(5), vt(9))); // bridges the gap
/// assert_eq!(s.iter().count(), 1);
/// assert!(s.contains(vt(12)));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct IntervalSet {
    /// Sorted by `lo`; pairwise disjoint and non-adjacent.
    runs: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet { runs: Vec::new() }
    }

    /// Returns `true` if the set covers no ticks.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of ticks covered.
    pub fn len_ticks(&self) -> u64 {
        self.runs.iter().map(|r| r.len_ticks()).sum()
    }

    /// Returns `true` if tick `t` is covered.
    pub fn contains(&self, t: VirtualTime) -> bool {
        match self.runs.binary_search_by(|r| r.lo().cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.runs[i - 1].contains(t),
        }
    }

    /// Returns `true` if every tick of `iv` is covered.
    pub fn covers(&self, iv: Interval) -> bool {
        match self.runs.binary_search_by(|r| r.lo().cmp(&iv.lo())) {
            Ok(i) => self.runs[i].hi() >= iv.hi(),
            Err(0) => false,
            Err(i) => self.runs[i - 1].contains(iv.lo()) && self.runs[i - 1].hi() >= iv.hi(),
        }
    }

    /// Inserts an interval, merging with any overlapping or adjacent runs.
    pub fn insert(&mut self, iv: Interval) {
        // Find the first run that could touch `iv`.
        let start = self.runs.partition_point(|r| r.hi().next() < iv.lo());
        let mut lo = iv.lo();
        let mut hi = iv.hi();
        let mut end = start;
        while end < self.runs.len() && self.runs[end].lo() <= hi.next() {
            lo = lo.min(self.runs[end].lo());
            hi = hi.max(self.runs[end].hi());
            end += 1;
        }
        self.runs
            .splice(start..end, std::iter::once(Interval::new(lo, hi)));
    }

    /// Inserts a single tick.
    pub fn insert_point(&mut self, t: VirtualTime) {
        self.insert(Interval::point(t));
    }

    /// Removes all ticks of `iv` from the set.
    pub fn remove(&mut self, iv: Interval) {
        let mut out = Vec::with_capacity(self.runs.len() + 1);
        for r in &self.runs {
            match r.intersect(iv) {
                None => out.push(*r),
                Some(cut) => {
                    if r.lo() < cut.lo() {
                        out.push(Interval::new(r.lo(), cut.lo().prev()));
                    }
                    if cut.hi() < r.hi() {
                        out.push(Interval::new(cut.hi().next(), r.hi()));
                    }
                }
            }
        }
        self.runs = out;
    }

    /// Returns the largest `t` such that every tick in `[from, t]` is
    /// covered, or `None` if `from` itself is not covered.
    ///
    /// This is the receiver's *watermark* computation: how far a wire's tick
    /// account is contiguous starting from the next tick it needs.
    pub fn contiguous_through(&self, from: VirtualTime) -> Option<VirtualTime> {
        match self.runs.binary_search_by(|r| r.lo().cmp(&from)) {
            Ok(i) => Some(self.runs[i].hi()),
            Err(0) => None,
            Err(i) => {
                let r = self.runs[i - 1];
                r.contains(from).then_some(r.hi())
            }
        }
    }

    /// Returns the gaps (uncovered sub-intervals) inside `within`, in order.
    ///
    /// After a failover, the receiver calls this over the range from its
    /// restored checkpoint time to the present; each returned gap becomes a
    /// replay request to the corresponding sender (§II.F.4).
    pub fn gaps_within(&self, within: Interval) -> Vec<Interval> {
        let mut gaps = Vec::new();
        let mut cursor = within.lo();
        for r in &self.runs {
            if r.hi() < cursor {
                continue;
            }
            if r.lo() > within.hi() {
                break;
            }
            if r.lo() > cursor {
                gaps.push(Interval::new(cursor, r.lo().prev().min(within.hi())));
            }
            if r.hi() >= within.hi() {
                return gaps;
            }
            cursor = r.hi().next();
        }
        if cursor <= within.hi() {
            gaps.push(Interval::new(cursor, within.hi()));
        }
        gaps
    }

    /// Iterates over the normalized runs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.runs.iter().copied()
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        for iv in other.iter() {
            out.insert(iv);
        }
        out
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.runs.iter()).finish()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        let mut s = IntervalSet::new();
        for iv in iter {
            s.insert(iv);
        }
        s
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(vt(lo), vt(hi))
    }

    #[test]
    fn interval_basics() {
        let i = iv(10, 20);
        assert_eq!(i.len_ticks(), 11);
        assert!(i.contains(vt(10)) && i.contains(vt(20)));
        assert!(!i.contains(vt(9)) && !i.contains(vt(21)));
        assert_eq!(Interval::point(vt(5)).len_ticks(), 1);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn interval_rejects_inverted_bounds() {
        let _ = iv(5, 4);
    }

    #[test]
    fn overlap_and_touch() {
        assert!(iv(0, 5).overlaps(iv(5, 9)));
        assert!(!iv(0, 5).overlaps(iv(6, 9)));
        assert!(iv(0, 5).touches(iv(6, 9)));
        assert!(!iv(0, 5).touches(iv(7, 9)));
        assert_eq!(iv(0, 5).intersect(iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(0, 2).intersect(iv(3, 9)), None);
    }

    #[test]
    fn insert_merges_overlapping_and_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 4));
        s.insert(iv(10, 14));
        assert_eq!(s.iter().count(), 2);
        s.insert(iv(5, 9));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![iv(0, 14)]);
        assert_eq!(s.len_ticks(), 15);
    }

    #[test]
    fn insert_is_order_independent() {
        let mut a = IntervalSet::new();
        a.insert(iv(0, 3));
        a.insert(iv(8, 9));
        a.insert(iv(4, 7));
        let mut b = IntervalSet::new();
        b.insert(iv(4, 7));
        b.insert(iv(0, 3));
        b.insert(iv(8, 9));
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![iv(0, 9)]);
    }

    #[test]
    fn contains_and_covers() {
        let s: IntervalSet = [iv(0, 4), iv(10, 14)].into_iter().collect();
        assert!(s.contains(vt(0)) && s.contains(vt(4)) && s.contains(vt(12)));
        assert!(!s.contains(vt(5)) && !s.contains(vt(15)));
        assert!(s.covers(iv(10, 14)));
        assert!(s.covers(iv(11, 12)));
        assert!(!s.covers(iv(3, 11)));
        assert!(!s.covers(iv(20, 30)));
    }

    #[test]
    fn contiguous_through_watermark() {
        let s: IntervalSet = [iv(0, 4), iv(6, 9)].into_iter().collect();
        assert_eq!(s.contiguous_through(vt(0)), Some(vt(4)));
        assert_eq!(s.contiguous_through(vt(3)), Some(vt(4)));
        assert_eq!(s.contiguous_through(vt(5)), None);
        assert_eq!(s.contiguous_through(vt(6)), Some(vt(9)));
        assert_eq!(s.contiguous_through(vt(10)), None);
        assert_eq!(IntervalSet::new().contiguous_through(vt(0)), None);
    }

    #[test]
    fn gaps_within_finds_replay_ranges() {
        let s: IntervalSet = [iv(5, 9), iv(15, 19)].into_iter().collect();
        assert_eq!(
            s.gaps_within(iv(0, 24)),
            vec![iv(0, 4), iv(10, 14), iv(20, 24)]
        );
        assert_eq!(s.gaps_within(iv(5, 9)), vec![]);
        assert_eq!(s.gaps_within(iv(6, 16)), vec![iv(10, 14)]);
        assert_eq!(IntervalSet::new().gaps_within(iv(3, 7)), vec![iv(3, 7)]);
    }

    #[test]
    fn remove_splits_runs() {
        let mut s: IntervalSet = [iv(0, 9)].into_iter().collect();
        s.remove(iv(3, 5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![iv(0, 2), iv(6, 9)]);
        s.remove(iv(0, 100));
        assert!(s.is_empty());
    }

    #[test]
    fn union_combines() {
        let a: IntervalSet = [iv(0, 4)].into_iter().collect();
        let b: IntervalSet = [iv(5, 9), iv(20, 21)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![iv(0, 9), iv(20, 21)]);
    }

    #[test]
    fn debug_is_nonempty() {
        let s: IntervalSet = [iv(1, 2)].into_iter().collect();
        assert!(!format!("{s:?}").is_empty());
        assert_eq!(format!("{:?}", IntervalSet::new()), "{}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    /// Arbitrary small intervals over a compact tick universe so that overlap
    /// and adjacency cases are exercised densely.
    fn arb_interval() -> impl Strategy<Value = Interval> {
        (0u64..200, 0u64..20).prop_map(|(lo, len)| Interval::new(vt(lo), vt(lo + len)))
    }

    fn model_of(ivs: &[Interval]) -> BTreeSet<u64> {
        let mut m = BTreeSet::new();
        for iv in ivs {
            m.extend(iv.lo().as_ticks()..=iv.hi().as_ticks());
        }
        m
    }

    proptest! {
        #[test]
        fn insert_matches_naive_set_model(ivs in proptest::collection::vec(arb_interval(), 0..30)) {
            let set: IntervalSet = ivs.iter().copied().collect();
            let model = model_of(&ivs);
            prop_assert_eq!(set.len_ticks(), model.len() as u64);
            for t in 0u64..=230 {
                prop_assert_eq!(set.contains(vt(t)), model.contains(&t), "tick {}", t);
            }
            // Canonical form: sorted, disjoint, non-adjacent.
            let runs: Vec<_> = set.iter().collect();
            for w in runs.windows(2) {
                prop_assert!(w[0].hi().next() < w[1].lo());
            }
        }

        #[test]
        fn insertion_order_is_irrelevant(ivs in proptest::collection::vec(arb_interval(), 0..20)) {
            let forward: IntervalSet = ivs.iter().copied().collect();
            let reverse: IntervalSet = ivs.iter().rev().copied().collect();
            prop_assert_eq!(forward, reverse);
        }

        #[test]
        fn gaps_partition_the_window(
            ivs in proptest::collection::vec(arb_interval(), 0..15),
            lo in 0u64..200,
            len in 0u64..60,
        ) {
            let set: IntervalSet = ivs.iter().copied().collect();
            let window = Interval::new(vt(lo), vt(lo + len));
            let gaps = set.gaps_within(window);
            // Each gap tick is uncovered; each non-gap tick in the window is covered.
            let gap_set: IntervalSet = gaps.iter().copied().collect();
            for t in lo..=lo + len {
                prop_assert_eq!(gap_set.contains(vt(t)), !set.contains(vt(t)), "tick {}", t);
            }
            // Gaps are within the window and sorted.
            for g in &gaps {
                prop_assert!(g.lo() >= window.lo() && g.hi() <= window.hi());
            }
            for w in gaps.windows(2) {
                prop_assert!(w[0].hi() < w[1].lo());
            }
        }

        #[test]
        fn remove_then_contains_is_false(
            ivs in proptest::collection::vec(arb_interval(), 1..15),
            cut in arb_interval(),
        ) {
            let mut set: IntervalSet = ivs.iter().copied().collect();
            set.remove(cut);
            for t in cut.lo().as_ticks()..=cut.hi().as_ticks() {
                prop_assert!(!set.contains(vt(t)));
            }
        }

        #[test]
        fn contiguous_through_agrees_with_scan(
            ivs in proptest::collection::vec(arb_interval(), 0..15),
            from in 0u64..230,
        ) {
            let set: IntervalSet = ivs.iter().copied().collect();
            let got = set.contiguous_through(vt(from));
            let expected = if set.contains(vt(from)) {
                let mut t = from;
                while set.contains(vt(t + 1)) {
                    t += 1;
                }
                Some(vt(t))
            } else {
                None
            };
            prop_assert_eq!(got, expected);
        }
    }
}
