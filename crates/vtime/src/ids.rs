//! Identity newtypes for the entities of a deployed TART application.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name($repr);

        impl $name {
            /// Creates an id from its raw numeric value.
            pub const fn new(raw: $repr) -> Self {
                $name(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for $repr {
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Identifies a wire: a directed, reliable, FIFO stream of ticks from one
    /// sender port to one receiver port.
    ///
    /// Wire ids double as the deterministic tie-breaker when two messages
    /// carry the same virtual time (§II.E, footnote 2), so they must be
    /// assigned identically on every run — in TART they come from the static
    /// wiring of the application, which is known prior to deployment.
    WireId, "w", u32
);

id_newtype!(
    /// Identifies a component within an application.
    ComponentId, "c", u32
);

id_newtype!(
    /// Identifies an execution engine (a machine or container hosting
    /// components, with an associated passive backup).
    EngineId, "e", u32
);

id_newtype!(
    /// Identifies a port on a component. Ports are the named endpoints wires
    /// attach to; input ports receive messages, output ports send them.
    PortId, "p", u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_raw_values() {
        assert!(WireId::new(1) < WireId::new(2));
        assert!(ComponentId::new(10) > ComponentId::new(9));
    }

    #[test]
    fn debug_display_prefixes() {
        assert_eq!(format!("{:?}", WireId::new(3)), "w3");
        assert_eq!(format!("{}", ComponentId::new(4)), "c4");
        assert_eq!(format!("{}", EngineId::new(5)), "e5");
        assert_eq!(format!("{}", PortId::new(6)), "p6");
    }

    #[test]
    fn raw_round_trip() {
        let w = WireId::from(7u32);
        assert_eq!(u32::from(w), 7);
        assert_eq!(w.raw(), 7);
        let p = PortId::from(2u16);
        assert_eq!(u16::from(p), 2);
    }

    #[test]
    #[allow(clippy::disallowed_types)] // verifies the Hash impl specifically
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(WireId::new(1), "a");
        m.insert(WireId::new(2), "b");
        assert_eq!(m[&WireId::new(2)], "b");
    }
}
