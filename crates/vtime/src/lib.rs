//! Virtual time primitives for TART (Time-Aware Run-Time).
//!
//! TART forces a network of stateful components to execute deterministically
//! by stamping every message with a *virtual time* and processing messages in
//! strict virtual-time order. This crate provides the foundational vocabulary
//! shared by every other crate in the workspace:
//!
//! * [`VirtualTime`] / [`VirtualDuration`] — discretized time in *ticks*
//!   (one tick is one nanosecond, as in the paper's implementation);
//! * identity newtypes ([`WireId`], [`ComponentId`], [`EngineId`],
//!   [`PortId`]) used for placement and for deterministic tie-breaking;
//! * [`EventStamp`] — a totally ordered (virtual time, wire) pair implementing
//!   the paper's deterministic tie-breaking rule (§II.E, footnote 2);
//! * [`Interval`] and [`IntervalSet`] — closed tick ranges used to account
//!   for every tick on a wire as *data* or *silence* (§II.F.1) and to detect
//!   replay gaps after failures (§II.F.4);
//! * [`WireClock`] — the per-wire watermark a receiver keeps: how far the
//!   sender has promised silence, plus the queue of pending data ticks.
//!
//! # Example
//!
//! ```
//! use tart_vtime::{VirtualTime, VirtualDuration, WireId, EventStamp};
//!
//! let dequeue = VirtualTime::from_ticks(50_000);
//! let estimate = VirtualDuration::from_ticks(3 * 61_000);
//! let arrival = dequeue + estimate;
//! assert_eq!(arrival.as_ticks(), 233_000);
//!
//! // Deterministic tie-break: equal times order by wire id.
//! let a = EventStamp::new(arrival, WireId::new(1));
//! let b = EventStamp::new(arrival, WireId::new(2));
//! assert!(a < b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod interval;
mod stamp;
mod time;
mod wire;

pub use ids::{ComponentId, EngineId, PortId, WireId};
pub use interval::{Interval, IntervalSet};
pub use stamp::EventStamp;
pub use time::{VirtualDuration, VirtualTime};
pub use wire::{WireClock, WireClockError};
