//! Totally ordered event stamps: virtual time plus deterministic tie-break.

use crate::{VirtualTime, WireId};

/// A totally ordered event identifier: a virtual time plus the wire the
/// event travels on.
///
/// The paper requires that "in the rare event that messages from two
/// different schedulers arrive at the identical time, there must be a
/// deterministic tie-breaking rule, e.g. using ID numbers of the wires to
/// break ties" (§II.E footnote 2). `EventStamp` is exactly that rule,
/// packaged as a type so schedulers can sort on it directly.
///
/// # Example
///
/// ```
/// use tart_vtime::{EventStamp, VirtualTime, WireId};
///
/// let t = VirtualTime::from_ticks(202_000);
/// let earlier_wire = EventStamp::new(t, WireId::new(0));
/// let later_wire = EventStamp::new(t, WireId::new(1));
/// assert!(earlier_wire < later_wire);
/// assert!(EventStamp::new(t.prev(), WireId::new(9)) < earlier_wire);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventStamp {
    /// The virtual time of the event. Compared first.
    pub vt: VirtualTime,
    /// The wire carrying the event. Compared second, as the tie-break.
    pub wire: WireId,
}

impl EventStamp {
    /// Creates a stamp from a virtual time and a wire id.
    pub const fn new(vt: VirtualTime, wire: WireId) -> Self {
        EventStamp { vt, wire }
    }

    /// The smallest possible stamp, ordering before every real event.
    pub const MIN: EventStamp = EventStamp {
        vt: VirtualTime::ZERO,
        wire: WireId::new(0),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualTime;

    #[test]
    fn orders_by_time_first() {
        let a = EventStamp::new(VirtualTime::from_ticks(10), WireId::new(99));
        let b = EventStamp::new(VirtualTime::from_ticks(11), WireId::new(0));
        assert!(a < b);
    }

    #[test]
    fn ties_broken_by_wire_id() {
        let t = VirtualTime::from_ticks(10);
        let a = EventStamp::new(t, WireId::new(1));
        let b = EventStamp::new(t, WireId::new(2));
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn min_orders_first() {
        let any = EventStamp::new(VirtualTime::from_ticks(1), WireId::new(0));
        assert!(EventStamp::MIN < any);
        assert_eq!(EventStamp::MIN, EventStamp::MIN);
    }

    #[test]
    fn sorting_a_batch_is_deterministic() {
        let t1 = VirtualTime::from_ticks(100);
        let t2 = VirtualTime::from_ticks(200);
        let mut v = vec![
            EventStamp::new(t2, WireId::new(0)),
            EventStamp::new(t1, WireId::new(2)),
            EventStamp::new(t1, WireId::new(1)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                EventStamp::new(t1, WireId::new(1)),
                EventStamp::new(t1, WireId::new(2)),
                EventStamp::new(t2, WireId::new(0)),
            ]
        );
    }
}
