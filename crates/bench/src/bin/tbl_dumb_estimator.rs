//! §III.A second study — the "dumb" constant estimator.
//!
//! "We re-ran the experiment, this time substituting a 'dumb' estimator
//! that always predicted a computation time of 600 µs … In the non-variable
//! case the dumb estimator slightly outperforms the smart estimator with
//! non-prescient silence estimates … But in the more variable cases the
//! variation in number of iterations behaves just like operating system
//! jitter, and does affect the overhead: it steadily increases, reaching a
//! high of 13 % for the case where the number of iterations is in the range
//! from 1 to 19."

use tart_bench::{print_table, quick_mode};
use tart_sim::{ExecMode, FanInSim, IterationDist, SimConfig};

fn main() {
    let quick = quick_mode();
    let messages = if quick { 3_000 } else { 50_000 };
    println!("Dumb-estimator study: {messages} messages per sender per point");

    let mut base = SimConfig::paper_iii_a();
    base.messages_per_sender = messages;

    let mut rows = Vec::new();
    let mut dumb_overheads = Vec::new();
    for stage in IterationDist::paper_stages() {
        let sd = stage.compute_sd_micros(base.true_ns_per_iteration as f64 / 1_000.0);
        let run = |dumb: bool, mode: ExecMode| {
            let mut cfg = base.clone();
            cfg.iterations = stage;
            cfg.dumb_estimator = dumb;
            cfg.mode = mode;
            FanInSim::new(cfg).run()
        };
        let nondet = run(false, ExecMode::NonDeterministic);
        let smart = run(false, ExecMode::Deterministic);
        let dumb = run(true, ExecMode::Deterministic);
        let smart_ovh = smart.overhead_percent_vs(&nondet);
        let dumb_ovh = dumb.overhead_percent_vs(&nondet);
        dumb_overheads.push(dumb_ovh);
        rows.push(vec![
            format!("{sd:.1}"),
            format!("{:.1}", nondet.avg_latency_micros()),
            format!("{:.1}", smart.avg_latency_micros()),
            format!("{smart_ovh:+.1}%"),
            format!("{:.1}", dumb.avg_latency_micros()),
            format!("{dumb_ovh:+.1}%"),
        ]);
    }
    print_table(
        "Dumb (600 µs constant) vs smart estimator (paper: dumb overhead grows to ~13 %)",
        &[
            "SD µs",
            "non-det µs",
            "smart µs",
            "smart ovh",
            "dumb µs",
            "dumb ovh",
        ],
        &rows,
    );

    let first = dumb_overheads[0];
    let last = *dumb_overheads.last().expect("stages ran");
    assert!(
        last > first + 1.0,
        "dumb-estimator overhead must grow with variability: {first:.1}% → {last:.1}%"
    );
    assert!(
        last > 5.0,
        "at full variability the dumb estimator should hurt noticeably, got {last:.1}%"
    );
    println!(
        "\nShape check PASSED: dumb-estimator overhead grows {first:+.1}% → {last:+.1}% across \
         variability stages (paper: up to ~13 %); the smart estimator stays flat."
    );
}
