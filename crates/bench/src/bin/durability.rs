//! Tiered durability — the contract, measured.
//!
//! Two halves, matching the two normative claims in `DURABILITY.md`:
//!
//! - **Raw lanes** — the same WAL appended through the Strict lane (fsync
//!   before the call returns) and the Buffered lane (staged into a group
//!   commit window, flushed at the window deadline or the record cap).
//!   Reports appends/s per tier and the fsync latency distribution each
//!   lane actually paid (from the per-tier obs histograms the flusher
//!   records). The Buffered lane must buy ≥ 5x the Strict lane's append
//!   rate — that ratio is the whole reason the tier exists.
//! - **Crash drill** — a mixed-tier cluster (ledger Strict, ingest
//!   Buffered, cache InMemory, one engine each) crash-looped for seeded
//!   rounds via [`Cluster::crash_with_report`] + recovery from disk.
//!   Across every round: the Strict component loses **zero** inputs, the
//!   Buffered component loses at most one flush window
//!   ([`BUFFERED_MAX_RECORDS`]), and the InMemory component's inputs show
//!   up only in the memory-only bucket. The ledger's deduplicated outputs
//!   at the end must be the exact sequence 1..=sent — zero loss,
//!   end to end.
//!
//! Full runs write `BENCH_durability.json` at the workspace root
//! (committed — later sessions diff against it). `--quick` trims counts,
//! leaves the baseline untouched, and *gates*: Strict loss must be 0,
//! Buffered loss ≤ one window, Buffered/Strict appends/s ≥ 5x, and — when
//! a committed baseline exists — the current ratio must be at least half
//! the committed one. Ratios only, never absolute rates: CI hardware
//! varies, "buffered divided by strict on the same box" does not.

// Measurement harness (tart-lint tier: Exempt): its purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use tart_bench::{json_f64, print_table, quick_mode};
use tart_engine::{
    Cluster, ClusterConfig, DurabilityPolicy, FsyncPolicy, Histogram, ObsHub, OutputRecord,
    Placement, Wal, BUFFERED_MAX_RECORDS,
};
use tart_estimator::EstimatorSpec;
use tart_model::{
    AppSpec, BlockId, CheckpointMode, CkptCell, Component, Ctx, RestoreError, Snapshot, Value,
};
use tart_obs::hist::bucket_upper_bound;
use tart_vtime::{ComponentId, EngineId, PortId, VirtualTime};

// ---------------------------------------------------------------------------
// Raw lane microbench
// ---------------------------------------------------------------------------

/// Appends `n` records through one lane of a fresh WAL and returns
/// (appends per second, the fsync histogram that lane populated).
fn lane_bench(tier: DurabilityPolicy, label: &str, n: usize) -> (f64, Histogram) {
    let dir = std::env::temp_dir().join(format!(
        "tart-bench-durability-{label}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let body = [0xA5u8; 64];
    let hub = Arc::new(ObsHub::new());
    // FsyncPolicy::Never so the only syncs are the ones the lane itself
    // demands — exactly what the tier contract prices.
    let mut wal = Wal::create(&dir, 4 << 20, FsyncPolicy::Never).expect("create wal");
    wal.set_obs(Arc::clone(&hub));
    let t0 = Instant::now();
    for _ in 0..n {
        wal.append_lane(&body, tier).expect("append_lane");
    }
    wal.sync().expect("final sync");
    let per_sec = n as f64 / t0.elapsed().as_secs_f64();
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();
    let snap = hub.snapshot();
    let hist = if matches!(tier, DurabilityPolicy::Strict) {
        snap.wal_fsync_strict_ns
    } else {
        snap.wal_fsync_buffered_ns
    };
    (per_sec, hist)
}

/// Percentile from the log-bucketed histogram: the upper bound of the
/// bucket holding the p-th sample (the same resolution the obs report has).
fn hist_percentile_ns(h: &Histogram, p: f64) -> u64 {
    let total = h.count();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64 * p).ceil() as u64).max(1);
    let mut acc = 0u64;
    for (idx, count) in h.nonzero_buckets() {
        acc += count;
        if acc >= target {
            return bucket_upper_bound(idx);
        }
    }
    h.max()
}

// ---------------------------------------------------------------------------
// Mixed-tier crash drill
// ---------------------------------------------------------------------------

/// A sequence-stamping echo: acks every message with a monotonically
/// increasing sequence number it checkpoints. Distinct output sequences ==
/// distinct inputs processed, which is what the loss accounting counts.
struct Echo {
    seq: CkptCell<u64>,
}

impl Component for Echo {
    fn on_message(&mut self, _port: PortId, _msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(0), 1);
        self.seq.update(|s| *s += 1);
        ctx.send(PortId::new(1), Value::I64(*self.seq.get() as i64));
    }

    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        let mut snap = Snapshot::new(vt);
        if let Some(chunk) = self.seq.take_chunk(mode) {
            snap.put("seq", chunk);
        }
        snap
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        for (field, chunk) in snapshot.iter() {
            match field {
                "seq" => self
                    .seq
                    .apply_chunk(chunk)
                    .map_err(|source| RestoreError::Corrupt {
                        field: field.to_owned(),
                        source,
                    })?,
                other => {
                    return Err(RestoreError::UnknownField {
                        field: other.to_owned(),
                    })
                }
            }
        }
        Ok(())
    }
}

const TIERED: &[(&str, &str)] = &[
    ("Ledger", "ledger"),
    ("Ingest", "ingest"),
    ("Cache", "cache"),
];

fn mixed_app() -> AppSpec {
    let mut b = AppSpec::builder();
    for (name, wire) in TIERED {
        let c = b.component(
            name,
            Arc::new(|| {
                Box::new(Echo {
                    seq: CkptCell::new(0),
                }) as Box<dyn Component>
            }),
        );
        b.wire_in(&format!("{wire}_in"), c, PortId::new(0));
        b.wire_out(c, PortId::new(1), &format!("{wire}_out"));
    }
    b.build().expect("mixed-tier topology is valid")
}

/// One engine per component, so each engine carries exactly one tier.
fn mixed_placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for (i, (name, _)) in TIERED.iter().enumerate() {
        let c = spec.component_by_name(name).expect("component exists");
        p.assign(c.id(), EngineId::new(i as u32));
    }
    p
}

fn mixed_config(spec: &AppSpec, dir: &std::path::Path) -> ClusterConfig {
    let id = |name: &str| -> ComponentId { spec.component_by_name(name).expect("exists").id() };
    let mut config = ClusterConfig::logical_time()
        .with_checkpoint_every(4)
        .with_durability(dir, FsyncPolicy::Always)
        .with_component_tier(id("Ledger"), DurabilityPolicy::Strict)
        .with_component_tier(
            id("Ingest"),
            DurabilityPolicy::Buffered {
                flush_window: Duration::from_secs(3600),
            },
        )
        .with_component_tier(id("Cache"), DurabilityPolicy::InMemory);
    for (name, _) in TIERED {
        config = config.with_estimator(id(name), EstimatorSpec::per_iteration(BlockId(0), 10_000));
    }
    config
}

/// A tiny deterministic LCG so every round's traffic mix is seeded.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

struct DrillOutcome {
    strict_lost_total: u64,
    buffered_lost_total: u64,
    buffered_lost_max_round: u64,
    recover_secs: Vec<f64>,
}

/// Crash-loops a mixed-tier cluster for `rounds` seeded rounds and
/// accounts per-tier loss against the contract.
fn crash_drill(rounds: usize, seed: u64) -> DrillOutcome {
    let dir = std::env::temp_dir().join(format!(
        "tart-bench-durability-drill-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let spec = mixed_app();
    let ledger = spec.component_by_name("Ledger").expect("exists").id();
    let ingest = spec.component_by_name("Ingest").expect("exists").id();
    let cache = spec.component_by_name("Cache").expect("exists").id();

    let mut cluster = Cluster::deploy(
        spec.clone(),
        mixed_placement(&spec),
        mixed_config(&spec, &dir),
    )
    .expect("deploys");

    let mut rng = seed;
    let mut out = DrillOutcome {
        strict_lost_total: 0,
        buffered_lost_total: 0,
        buffered_lost_max_round: 0,
        recover_secs: Vec::with_capacity(rounds),
    };
    let mut sent_ledger = 0u64;
    let mut sent_ingest = 0u64;
    let mut lost_ingest = 0u64;
    let mut outputs: Vec<OutputRecord> = Vec::new();

    for round in 0..rounds {
        // Seeded traffic mix, interleaved so Strict barriers pin earlier
        // Buffered records the way live mixed traffic does.
        let k_ledger = 4 + lcg(&mut rng) % 8;
        let k_ingest = 4 + lcg(&mut rng) % 8;
        let k_cache = 2 + lcg(&mut rng) % 4;
        let k_max = k_ledger.max(k_ingest).max(k_cache);
        let mut round_cache = 0u64;
        for i in 0..k_max {
            if i < k_ledger {
                sent_ledger += 1;
                send(&cluster, "ledger_in", sent_ledger);
            }
            if i < k_ingest {
                sent_ingest += 1;
                send(&cluster, "ingest_in", sent_ingest);
            }
            if i < k_cache {
                round_cache += 1;
                send(&cluster, "cache_in", round_cache);
            }
        }
        // Let the ledger chew through everything it will ever be asked to
        // prove it kept; the crash may land mid-flight anywhere else.
        await_distinct(&cluster, &mut outputs, "ledger_out", sent_ledger, round);

        let snap = cluster.obs_snapshot();
        assert_eq!(snap.divergences_detected, 0, "clean drill must not diverge");

        let (crash_outputs, report) = cluster.crash_with_report();
        outputs.extend(crash_outputs);
        let strict_lost = report.lost_inputs.get(&ledger).copied().unwrap_or(0);
        let buffered_lost = report.lost_inputs.get(&ingest).copied().unwrap_or(0);
        let memory_only = report.memory_only_inputs.get(&cache).copied().unwrap_or(0);
        assert_eq!(
            strict_lost, 0,
            "round {round}: Strict inputs must survive every crash"
        );
        assert!(
            buffered_lost <= BUFFERED_MAX_RECORDS as u64,
            "round {round}: Buffered loss {buffered_lost} exceeds one flush window"
        );
        assert_eq!(
            memory_only, round_cache,
            "round {round}: every InMemory input is memory-only by contract"
        );
        out.strict_lost_total += strict_lost;
        out.buffered_lost_total += buffered_lost;
        out.buffered_lost_max_round = out.buffered_lost_max_round.max(buffered_lost);
        lost_ingest += buffered_lost;

        let t0 = Instant::now();
        let (recovered, recovery) = Cluster::recover_from_disk(
            spec.clone(),
            mixed_placement(&spec),
            mixed_config(&spec, &dir),
        )
        .expect("recovery from disk succeeds");
        out.recover_secs.push(t0.elapsed().as_secs_f64());
        cluster = recovered;

        for c in &recovery.components {
            let (want, peers_only) = match c.component {
                id if id == ledger => (sent_ledger, false),
                id if id == ingest => (sent_ingest - lost_ingest, false),
                id if id == cache => (0, true),
                other => panic!("unexpected component {other:?} in recovery report"),
            };
            assert_eq!(
                c.recovered_inputs, want,
                "round {round}: recovered inputs for {:?}",
                c.component
            );
            assert_eq!(c.replay_from_peers_only, peers_only);
        }
    }

    // End-to-end Strict transparency: after dedup, the ledger acked every
    // request exactly once, in sequence, across every crash.
    await_distinct(&cluster, &mut outputs, "ledger_out", sent_ledger, rounds);
    cluster.finish_inputs();
    outputs.extend(cluster.shutdown());
    let ledger_wire = *outputs
        .iter()
        .find(|o| o.consumer == "ledger_out")
        .map(|o| &o.wire)
        .expect("ledger produced output");
    let mut seqs: Vec<i64> = Cluster::dedup_outputs(outputs)
        .iter()
        .filter(|o| o.wire == ledger_wire)
        .map(|o| o.payload.as_i64().expect("ack seq"))
        .collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (1..=sent_ledger as i64).collect::<Vec<_>>(),
        "Strict tier must be transparent end to end"
    );
    std::fs::remove_dir_all(&dir).ok();
    out
}

fn send(cluster: &Cluster, wire: &str, v: u64) {
    cluster
        .injector(wire)
        .expect("injector")
        .send(Value::I64(v as i64));
}

/// Polls until `expected` *distinct* sequence numbers arrived on `consumer`
/// (replay stutter duplicates, it never skips).
fn await_distinct(
    cluster: &Cluster,
    outputs: &mut Vec<OutputRecord>,
    consumer: &str,
    expected: u64,
    round: usize,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        outputs.extend(cluster.take_outputs());
        let mut seqs: Vec<i64> = outputs
            .iter()
            .filter(|o| o.consumer == consumer)
            .filter_map(|o| o.payload.as_i64())
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        if seqs.len() as u64 >= expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "round {round}: timed out waiting for {consumer}: {} of {expected} acks",
            seqs.len()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let quick = quick_mode();
    let strict_n = if quick { 400 } else { 2_000 };
    let buffered_n = if quick { 20_000 } else { 100_000 };
    let rounds = if quick { 3 } else { 10 };

    println!(
        "Durability contract: {strict_n} strict + {buffered_n} buffered lane appends, \
         {rounds} mixed-tier crash rounds"
    );

    let (strict_rate, strict_hist) = lane_bench(DurabilityPolicy::Strict, "strict", strict_n);
    let (buffered_rate, buffered_hist) = lane_bench(
        DurabilityPolicy::Buffered {
            flush_window: Duration::from_millis(10),
        },
        "buffered",
        buffered_n,
    );
    let ratio = buffered_rate / strict_rate;
    let us = 1e-3;
    let strict_p50 = hist_percentile_ns(&strict_hist, 0.50) as f64 * us;
    let strict_p99 = hist_percentile_ns(&strict_hist, 0.99) as f64 * us;
    let buffered_p50 = hist_percentile_ns(&buffered_hist, 0.50) as f64 * us;
    let buffered_p99 = hist_percentile_ns(&buffered_hist, 0.99) as f64 * us;

    print_table(
        "WAL lanes (same log, one flusher)",
        &[
            "tier",
            "appends/s",
            "fsyncs",
            "fsync p50 (us)",
            "fsync p99 (us)",
        ],
        &[
            vec![
                "Strict (fsync per append)".into(),
                format!("{strict_rate:.0}"),
                format!("{}", strict_hist.count()),
                format!("{strict_p50:.0}"),
                format!("{strict_p99:.0}"),
            ],
            vec![
                "Buffered (group commit)".into(),
                format!("{buffered_rate:.0}"),
                format!("{}", buffered_hist.count()),
                format!("{buffered_p50:.0}"),
                format!("{buffered_p99:.0}"),
            ],
            vec![
                "buffered/strict".into(),
                format!("{ratio:.1}x"),
                String::new(),
                String::new(),
                String::new(),
            ],
        ],
    );

    let drill = crash_drill(rounds, 0xD17E);
    let mut rec = drill.recover_secs.clone();
    rec.sort_by(f64::total_cmp);
    let ms = 1_000.0;
    let recover_p50 = percentile(&rec, 0.50) * ms;
    let recover_p99 = percentile(&rec, 0.99) * ms;

    print_table(
        "Mixed-tier crash drill",
        &["quantity", "value"],
        &[
            vec!["rounds".into(), format!("{rounds}")],
            vec![
                "Strict inputs lost (total)".into(),
                format!("{}", drill.strict_lost_total),
            ],
            vec![
                "Buffered inputs lost (worst round)".into(),
                format!(
                    "{} (window cap {})",
                    drill.buffered_lost_max_round, BUFFERED_MAX_RECORDS
                ),
            ],
            vec![
                "recover from disk p50 (ms)".into(),
                format!("{recover_p50:.2}"),
            ],
            vec![
                "recover from disk p99 (ms)".into(),
                format!("{recover_p99:.2}"),
            ],
        ],
    );

    // Contract gates hold in EVERY mode — they are the durability semantics,
    // not a performance budget.
    assert_eq!(drill.strict_lost_total, 0, "Strict loss must be zero");
    assert!(
        drill.buffered_lost_max_round <= BUFFERED_MAX_RECORDS as u64,
        "Buffered loss must fit one flush window"
    );

    // Baseline comparison BEFORE overwriting the file. Ratios only.
    let baseline = std::fs::read_to_string("BENCH_durability.json").ok();
    let mut regressions = Vec::new();
    if let Some(base) = &baseline {
        if let Some(was) = json_f64(base, "buffered_over_strict") {
            if ratio < was / 2.0 {
                regressions.push(format!(
                    "buffered_over_strict: {ratio:.1}x vs committed {was:.1}x"
                ));
            }
        }
    } else {
        eprintln!("no committed BENCH_durability.json — first run, nothing to compare");
    }

    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"durability\",\n  \"mode\": \"full\",\n  \
             \"strict_appends\": {strict_n},\n  \"buffered_appends\": {buffered_n},\n  \
             \"strict_appends_per_sec\": {strict_rate:.0},\n  \
             \"buffered_appends_per_sec\": {buffered_rate:.0},\n  \
             \"buffered_over_strict\": {ratio:.1},\n  \
             \"strict_fsync_p50_us\": {strict_p50:.0},\n  \
             \"strict_fsync_p99_us\": {strict_p99:.0},\n  \
             \"buffered_fsync_p50_us\": {buffered_p50:.0},\n  \
             \"buffered_fsync_p99_us\": {buffered_p99:.0},\n  \
             \"crash_rounds\": {rounds},\n  \
             \"strict_lost_total\": {},\n  \
             \"buffered_lost_total\": {},\n  \
             \"buffered_lost_max_round\": {},\n  \
             \"flush_window_cap_records\": {BUFFERED_MAX_RECORDS},\n  \
             \"recover_p50_ms\": {recover_p50:.2},\n  \"recover_p99_ms\": {recover_p99:.2}\n}}\n",
            drill.strict_lost_total, drill.buffered_lost_total, drill.buffered_lost_max_round,
        );
        std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
        println!("wrote BENCH_durability.json");
    }

    if quick {
        tart_bench::write_quick_ratios("durability", &[("buffered_over_strict", ratio)]);
        assert!(
            ratio >= 5.0,
            "Buffered lane must be ≥5x Strict appends/s, got {ratio:.1}x \
             (strict {strict_rate:.0}/s, buffered {buffered_rate:.0}/s)"
        );
        assert!(
            regressions.is_empty(),
            ">2x regression vs committed baseline: {regressions:?}"
        );
        println!(
            "quick gates passed (strict loss 0, buffered loss ≤ one window, \
             buffered ≥5x strict, no >2x baseline regression)"
        );
    }
}
