//! Ablation — pessimism through layered merges (a fan-in *tree*).
//!
//! Pessimism delay arises only where streams merge: a receiver must prove
//! the earliest pending message safe against every other input wire. In a
//! multi-layer merge tree, each layer adds its own pessimism wait — and its
//! own probe traffic — so determinism overhead should *compound* with merge
//! depth. The paper measures a single merge (Fig 1/Fig 5); this ablation
//! runs real engines on a 4-leaf binary merge tree and compares one merge
//! layer against two, under non-deterministic, curiosity, and lazy
//! execution.
//!
//! Topology (depth 2):
//!
//! ```text
//! client1 → Leaf1 ─┐
//! client2 → Leaf2 ─┴→ Mid1 ─┐
//! client3 → Leaf3 ─┐        ├→ Root → consumer
//! client4 → Leaf4 ─┴→ Mid2 ─┘
//! ```

use std::sync::Arc;
use std::time::Duration;

use tart_bench::{print_table, quick_mode, run_live, RelayMerger};
use tart_engine::{ClusterConfig, Placement};
use tart_estimator::EstimatorSpec;
use tart_model::reference::ConstantService;
use tart_model::{AppSpec, Component};
use tart_silence::SilencePolicy;
use tart_vtime::{EngineId, PortId, VirtualDuration};

fn relay() -> Arc<dyn Fn() -> Box<dyn Component> + Send + Sync> {
    Arc::new(|| Box::new(RelayMerger::default()) as Box<dyn Component>)
}

fn service() -> Arc<dyn Fn() -> Box<dyn Component> + Send + Sync> {
    Arc::new(|| Box::new(ConstantService::new()) as Box<dyn Component>)
}

/// Depth-1: the Fig 5 shape (two leaves, one merge).
fn depth1() -> AppSpec {
    let mut b = AppSpec::builder();
    let root = b.component("Root", relay());
    let l1 = b.component("Leaf1", service());
    let l2 = b.component("Leaf2", service());
    b.wire_in("client1", l1, PortId::new(0));
    b.wire_in("client2", l2, PortId::new(0));
    b.wire(l1, PortId::new(1), root, PortId::new(0));
    b.wire(l2, PortId::new(1), root, PortId::new(0));
    b.wire_out(root, PortId::new(1), "consumer");
    b.build().expect("depth-1 tree is valid")
}

/// Depth-2: four leaves, two mid merges, one root merge.
fn depth2() -> AppSpec {
    let mut b = AppSpec::builder();
    let root = b.component("Root", relay());
    let mid1 = b.component("Mid1", relay());
    let mid2 = b.component("Mid2", relay());
    let leaves: Vec<_> = (1..=4)
        .map(|i| b.component(&format!("Leaf{i}"), service()))
        .collect();
    for (i, leaf) in leaves.iter().enumerate() {
        b.wire_in(&format!("client{}", i + 1), *leaf, PortId::new(0));
        let mid = if i < 2 { mid1 } else { mid2 };
        b.wire(*leaf, PortId::new(1), mid, PortId::new(0));
    }
    b.wire(mid1, PortId::new(1), root, PortId::new(0));
    b.wire(mid2, PortId::new(1), root, PortId::new(0));
    b.wire_out(root, PortId::new(1), "consumer");
    b.build().expect("depth-2 tree is valid")
}

fn config(spec: &AppSpec, policy: Option<SilencePolicy>) -> ClusterConfig {
    let mut cfg = ClusterConfig::real_time();
    for c in spec.components() {
        cfg = cfg.with_estimator(
            c.id(),
            EstimatorSpec::constant(VirtualDuration::from_micros(50)),
        );
        cfg.min_work
            .insert(c.id(), VirtualDuration::from_micros(50));
    }
    cfg.idle_poll_micros = 100;
    match policy {
        Some(p) => cfg.with_silence(p),
        None => cfg.non_deterministic(),
    }
}

/// Leaves on engine 0, merges on engine 1 — merge pessimism always crosses
/// the transport, as in §III.C.
fn placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name().starts_with("Leaf") { 0 } else { 1 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

fn main() {
    let quick = quick_mode();
    let requests = if quick { 300 } else { 2_000 };
    let gap = Duration::from_micros(1_000);
    println!(
        "Merge-tree ablation: {requests} requests at 1/ms, leaves on engine 0, merges on engine 1"
    );

    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for (depth, spec_fn) in [(1usize, depth1 as fn() -> AppSpec), (2, depth2)] {
        let nondet = run_live(
            spec_fn(),
            placement(&spec_fn()),
            config(&spec_fn(), None),
            requests,
            gap,
            100,
        );
        let curiosity = run_live(
            spec_fn(),
            placement(&spec_fn()),
            config(&spec_fn(), Some(SilencePolicy::Curiosity)),
            requests,
            gap,
            100,
        );
        let lazy = run_live(
            spec_fn(),
            placement(&spec_fn()),
            config(&spec_fn(), Some(SilencePolicy::Lazy)),
            requests,
            gap,
            100,
        );
        let cur_ovh = (curiosity.mean_us() - nondet.mean_us()) / nondet.mean_us() * 100.0;
        overheads.push((depth, cur_ovh));
        rows.push(vec![
            depth.to_string(),
            format!("{:.0}", nondet.mean_us()),
            format!("{:.0}", curiosity.mean_us()),
            format!("{cur_ovh:+.1}%"),
            format!("{:.0}", lazy.percentile_us(50.0)),
        ]);
    }
    print_table(
        "Merge-tree depth vs determinism overhead (real engines)",
        &[
            "merge layers",
            "non-det µs",
            "curiosity µs",
            "cur ovh",
            "lazy p50 µs",
        ],
        &rows,
    );
    println!(
        "\nWith transitive curiosity probing, determinism overhead stays bounded as merge \
         layers stack (depth 1: {:+.1}%, depth 2: {:+.1}%); lazy propagation instead pays \
         roughly one inter-arrival gap per merge layer.",
        overheads[0].1, overheads[1].1
    );
    assert!(
        overheads[1].1 < 60.0,
        "cascaded probes must keep layered merges responsive, got {:+.1}%",
        overheads[1].1
    );
}
