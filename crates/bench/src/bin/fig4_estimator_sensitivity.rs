//! Fig 4 — sensitivity of performance to the estimator coefficient.
//!
//! §III.B imports measured execution times (right-skewed, mean
//! 61.827 µs/iteration) into the simulation and sweeps the estimator's
//! assumed coefficient from 48 to 70 µs/iteration at 1000 msg/s/sender over
//! one minute (120,000 messages total). The paper reports: best latency
//! near the regression value (60–62 flat), out-of-order arrivals under 10 %
//! and ~1.5 curiosity probes per message at the optimum, both rising as the
//! estimator degrades.

use tart_bench::{print_table, quick_mode};
use tart_sim::{EmpiricalCorpus, ExecMode, FanInSim, SimConfig};

fn main() {
    let quick = quick_mode();
    // One simulated minute at 1000 msg/s/sender = 60 000 per sender.
    let messages = if quick { 3_000 } else { 60_000 };
    println!("Fig 4 reproduction: {messages} messages per sender per point, empirical jitter");

    // The imported measurement corpus (§III.B): 10 000 samples with the
    // regression-mean 61 827 ns/iteration and right-skewed residuals. (The
    // fig2 harness shows how to produce a live-measured corpus; the
    // synthetic one keeps this figure host-independent.)
    let corpus = EmpiricalCorpus::synthetic(2009, 61_827.0, 0.17, 19, 526);
    let base = {
        let mut cfg = SimConfig::paper_iii_b(corpus);
        cfg.messages_per_sender = messages;
        cfg
    };

    // Non-deterministic reference (estimator-independent).
    let nondet = {
        let mut cfg = base.clone();
        cfg.mode = ExecMode::NonDeterministic;
        FanInSim::new(cfg).run()
    };

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for coeff_us in (48..=70).step_by(2) {
        let mut cfg = base.clone();
        cfg.estimator_ns_per_iteration = coeff_us * 1_000;
        let det = FanInSim::new(cfg).run();
        series.push((
            coeff_us,
            det.avg_latency_micros(),
            det.out_of_order,
            det.probes,
        ));
        rows.push(vec![
            coeff_us.to_string(),
            format!("{:.1}", det.avg_latency_micros()),
            format!("{:.1}", nondet.avg_latency_micros()),
            det.out_of_order.to_string(),
            format!("{:.1}%", det.out_of_order_fraction() * 100.0),
            det.probes.to_string(),
            format!("{:.2}", det.probes_per_message()),
        ]);
    }
    print_table(
        "Fig 4 — sensitivity to estimator coefficient (paper: minimum near 60–62 µs/iter)",
        &[
            "µs/iter",
            "det latency µs",
            "non-det µs",
            "# OOO",
            "OOO %",
            "# probes",
            "probes/msg",
        ],
        &rows,
    );

    // Shape checks: the latency curve should be lowest in the neighbourhood
    // of the true coefficient (60–64) and higher at both extremes.
    let latency_at = |c: u64| {
        series
            .iter()
            .find(|(coeff, ..)| *coeff == c)
            .map(|(_, l, ..)| *l)
            .expect("coefficient swept")
    };
    let near_true = latency_at(60).min(latency_at(62)).min(latency_at(64));
    assert!(
        latency_at(48) > near_true,
        "under-estimation (48) should cost latency: {} vs {near_true}",
        latency_at(48)
    );
    let (_, _, ooo_at_62, probes_at_62) = series
        .iter()
        .copied()
        .find(|(c, ..)| *c == 62)
        .expect("62 swept");
    let total = (messages * 2) as f64;
    assert!(
        (ooo_at_62 as f64) < total * 0.25,
        "near the true coefficient, out-of-order arrivals stay low"
    );
    println!(
        "\nShape check PASSED: latency minimum near the regression coefficient; at 62 µs/iter \
         OOO={:.1}% and probes/msg={:.2} (paper: <10% and ≈1.5).",
        ooo_at_62 as f64 / total * 100.0,
        probes_at_62 as f64 / total,
    );
}
