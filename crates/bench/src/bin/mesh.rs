//! Open-loop multi-engine mesh benchmark: does aggregate delivered
//! throughput scale with engine count?
//!
//! Topology: `shards == engines` independent lanes, each
//! `client{i} → Ingress{i} → Egress{i} → consumer{i}`, with `Ingress{i}`
//! placed on engine `i` and `Egress{i}` on engine `(i+1) % engines` — every
//! lane crosses an engine boundary (except the one-engine baseline), so the
//! run exercises the epoch-swapped routing table and cross-engine delivery,
//! not just per-engine schedulers.
//!
//! Methodology — **open loop**. Each lane is offered a fixed Poisson
//! arrival rate ([`PoissonProcess`], seeded [`DetRng`], identical schedule
//! every run); the injector sends at the *scheduled* instant regardless of
//! how the system is doing, and latency is measured from the scheduled
//! arrival, not the actual send. A closed loop (send, wait, send) would let
//! a slow system slow the load down and hide queueing delay — the classic
//! coordinated-omission mistake. Under open loop, delivered throughput
//! equals offered throughput only while the mesh has capacity; the
//! `scaling_1_to_8` gate (aggregate delivered rate at 8 engines ≥ 5x the
//! 1-engine rate) therefore asserts that eight engines actually *sustain*
//! eight lanes' aggregate load, and `lost == 0` asserts every scheduled
//! message was delivered.
//!
//! Latency percentiles (p50/p99, measured from scheduled arrival) are
//! reported but never gated: on a shared 1-CPU runner the OS scheduler
//! adds multi-millisecond noise that says nothing about the code. Rates
//! are gated only as *ratios* (scaling, and vs the committed baseline's
//! own scaling) — absolute rates vary with runner hardware.
//!
//! `--quick` runs a short window, gates, and never touches the committed
//! `BENCH_mesh.json`; a full run rewrites it.

// Measurement harness (tart-lint tier: Exempt): its purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use tart_bench::{json_f64, print_table, quick_mode};
use tart_engine::{Cluster, ClusterConfig, Placement};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{ConstantService, IN_PORT, OUT_PORT};
use tart_model::{AppSpec, BlockId, Component, Value};
use tart_stats::{DetRng, PoissonProcess};
use tart_vtime::EngineId;

/// Engine counts swept by one run, in order.
const ENGINE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// How long after the injection window a run may keep draining before
/// undelivered messages count as lost.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);
/// Output-poll interval while waiting for deliveries.
const POLL: Duration = Duration::from_micros(500);

/// One engine-count's measurements.
struct RunResult {
    engines: usize,
    offered_per_sec: f64,
    delivered_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    delivered: usize,
    lost: usize,
    max_inject_lag_ms: f64,
}

fn main() {
    let quick = quick_mode();
    // Offered rate per lane and injection-window length. Aggregate offered
    // load at 16 engines (16x the per-lane rate) must stay well under the
    // single-host pipeline capacity, or the open-loop premise — delivered
    // tracks offered — collapses into a queueing measurement.
    let (rate_per_shard, window_secs) = if quick { (800.0, 1.2) } else { (1_500.0, 4.0) };

    let mut results = Vec::new();
    for engines in ENGINE_COUNTS {
        let r = run_mesh(engines, rate_per_shard, window_secs);
        eprintln!(
            "mesh {:>2} engines: {:.0} msgs/s delivered ({} msgs, {} lost), \
             p50 {:.2} ms, p99 {:.2} ms",
            r.engines, r.delivered_per_sec, r.delivered, r.lost, r.p50_ms, r.p99_ms
        );
        results.push(r);
    }

    print_table(
        "Open-loop mesh scaling",
        &[
            "engines",
            "offered/s",
            "delivered/s",
            "p50 ms",
            "p99 ms",
            "lost",
            "inj lag ms",
        ],
        &results
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.engines),
                    format!("{:.0}", r.offered_per_sec),
                    format!("{:.0}", r.delivered_per_sec),
                    format!("{:.2}", r.p50_ms),
                    format!("{:.2}", r.p99_ms),
                    format!("{}", r.lost),
                    format!("{:.2}", r.max_inject_lag_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Losing a message is a correctness failure regardless of mode: the
    // local router is reliable and the drain window is generous.
    for r in &results {
        assert_eq!(
            r.lost,
            0,
            "{} engines lost {} of {} messages",
            r.engines,
            r.lost,
            r.delivered + r.lost
        );
    }

    let rate_of = |engines: usize| -> f64 {
        results
            .iter()
            .find(|r| r.engines == engines)
            .map(|r| r.delivered_per_sec)
            .expect("engine count was swept")
    };
    let scaling_1_to_8 = rate_of(8) / rate_of(1);
    println!("aggregate delivered scaling 1→8 engines: {scaling_1_to_8:.2}x");

    // Baseline comparison BEFORE overwriting the file. Ratios only —
    // absolute rates vary with runner hardware, the scaling ratio does not.
    let baseline = std::fs::read_to_string("BENCH_mesh.json").ok();
    let mut regressions = Vec::new();
    if let Some(base) = &baseline {
        if let Some(was) = json_f64(base, "scaling_1_to_8") {
            if scaling_1_to_8 < was / 2.0 {
                regressions.push(format!(
                    "scaling_1_to_8: {scaling_1_to_8:.2}x vs committed {was:.2}x"
                ));
            }
        }
    } else {
        eprintln!("no committed BENCH_mesh.json — first run, nothing to compare");
    }

    if !quick {
        let mut json = format!(
            "{{\n  \"bench\": \"mesh\",\n  \"mode\": \"full\",\n  \
             \"open_loop_rate_per_shard\": {rate_per_shard:.0},\n  \
             \"window_secs\": {window_secs:.1},\n  \
             \"scaling_1_to_8\": {scaling_1_to_8:.2},\n  \"results\": [\n"
        );
        for (i, r) in results.iter().enumerate() {
            let comma = if i + 1 < results.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"engines\": {}, \"offered_msgs_per_sec\": {:.0}, \
                 \"delivered_msgs_per_sec\": {:.0}, \"p50_ms\": {:.2}, \
                 \"p99_ms\": {:.2}, \"delivered\": {}, \"lost\": {}, \
                 \"max_inject_lag_ms\": {:.2}}}{comma}\n",
                r.engines,
                r.offered_per_sec,
                r.delivered_per_sec,
                r.p50_ms,
                r.p99_ms,
                r.delivered,
                r.lost,
                r.max_inject_lag_ms,
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write("BENCH_mesh.json", &json).expect("write BENCH_mesh.json");
        println!("wrote BENCH_mesh.json");
    }

    if quick {
        tart_bench::write_quick_ratios("mesh", &[("scaling_1_to_8", scaling_1_to_8)]);
        assert!(
            scaling_1_to_8 >= 5.0,
            "8 engines must sustain ≥5x the 1-engine aggregate rate, got {scaling_1_to_8:.2}x"
        );
        assert!(
            regressions.is_empty(),
            ">2x regression vs committed baseline: {regressions:?}"
        );
        println!("quick gates passed (1→8 scaling ≥5x, zero loss, no >2x baseline regression)");
    }
}

/// Builds the `shards`-lane mesh and the ring placement that makes each
/// lane cross one engine boundary.
fn mesh_app(shards: usize) -> (AppSpec, Placement) {
    let mut builder = AppSpec::builder();
    let mut lanes = Vec::with_capacity(shards);
    let service = || Arc::new(|| Box::new(ConstantService::new()) as Box<dyn Component>);
    for i in 0..shards {
        let ingress = builder.component(&format!("Ingress{i}"), service());
        let egress = builder.component(&format!("Egress{i}"), service());
        builder.wire_in(&format!("client{i}"), ingress, IN_PORT);
        builder.wire(ingress, OUT_PORT, egress, IN_PORT);
        builder.wire_out(egress, OUT_PORT, &format!("consumer{i}"));
        lanes.push((ingress, egress));
    }
    let spec = builder.build().expect("valid mesh topology");
    let mut placement = Placement::new();
    for (i, (ingress, egress)) in lanes.iter().enumerate() {
        placement.assign(*ingress, EngineId::new(i as u32));
        placement.assign(*egress, EngineId::new(((i + 1) % shards) as u32));
    }
    (spec, placement)
}

/// Runs one engine count: deterministic Poisson schedule, paced injection,
/// delivery matching by payload id.
fn run_mesh(engines: usize, rate_per_shard: f64, window_secs: f64) -> RunResult {
    let shards = engines;
    let (spec, placement) = mesh_app(shards);
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(64);
    for c in spec.components() {
        config = config.with_estimator(c.id(), EstimatorSpec::per_iteration(BlockId(0), 400_000));
    }
    config.idle_poll_micros = 200;

    // Per-lane Poisson schedules, merged and sorted. The vector index after
    // the sort is the message's global id — it rides in the payload so the
    // consumer side can look the scheduled instant back up.
    let mut schedule: Vec<(f64, usize)> = Vec::new();
    for shard in 0..shards {
        let mut rng = DetRng::seed_from(0xA11C_E5ED ^ shard as u64);
        let mut arrivals = PoissonProcess::new(1.0 / rate_per_shard);
        loop {
            let t = arrivals.next_arrival(&mut rng);
            if t >= window_secs {
                break;
            }
            schedule.push((t, shard));
        }
    }
    schedule.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = schedule.len();

    let cluster = Cluster::deploy(spec, placement, config).expect("mesh deploys");
    let injectors: Vec<_> = (0..shards)
        .map(|i| cluster.injector(&format!("client{i}")).expect("injector"))
        .collect();

    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let mut delivered = 0usize;
    let mut last_receipt = 0.0f64;
    let mut max_inject_lag = 0.0f64;
    std::thread::scope(|s| {
        let injector = s.spawn(|| {
            let mut max_lag = 0.0f64;
            for (id, &(offset, shard)) in schedule.iter().enumerate() {
                // Pace to the scheduled instant: coarse sleep, then yield
                // out the sub-millisecond remainder (spinning would starve
                // the engines on a small host).
                loop {
                    let now = start.elapsed().as_secs_f64();
                    if now >= offset {
                        break;
                    }
                    let remaining = offset - now;
                    if remaining > 0.0005 {
                        std::thread::sleep(Duration::from_secs_f64(remaining - 0.0003));
                    } else {
                        std::thread::yield_now();
                    }
                }
                max_lag = max_lag.max(start.elapsed().as_secs_f64() - offset);
                injectors[shard].send(Value::I64(id as i64));
            }
            cluster.finish_inputs();
            max_lag
        });
        let deadline = start + Duration::from_secs_f64(window_secs) + DRAIN_TIMEOUT;
        while delivered < total && Instant::now() < deadline {
            let outs = cluster.take_outputs();
            if outs.is_empty() {
                std::thread::sleep(POLL);
                continue;
            }
            let now = start.elapsed().as_secs_f64();
            for out in outs {
                let id = out
                    .payload
                    .as_i64()
                    .expect("mesh payload is the schedule id") as usize;
                // Latency from the *scheduled* arrival — queueing delay
                // from injector lag counts against the system, as it must.
                latencies.push((now - schedule[id].0).max(0.0));
                delivered += 1;
                last_receipt = now;
            }
        }
        max_inject_lag = injector.join().expect("injector thread");
    });
    // Anything racing the final poll surfaces in the shutdown drain; it
    // was delivered, just late.
    let rest = cluster.shutdown();
    if !rest.is_empty() {
        let now = start.elapsed().as_secs_f64();
        for out in rest {
            let id = out
                .payload
                .as_i64()
                .expect("mesh payload is the schedule id") as usize;
            latencies.push((now - schedule[id].0).max(0.0));
            delivered += 1;
            last_receipt = now;
        }
    }

    assert!(delivered > 0, "mesh delivered nothing");
    latencies.sort_by(f64::total_cmp);
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize] * 1_000.0;
    RunResult {
        engines,
        offered_per_sec: rate_per_shard * shards as f64,
        delivered_per_sec: delivered as f64 / last_receipt,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        delivered,
        lost: total - delivered,
        max_inject_lag_ms: max_inject_lag * 1_000.0,
    }
}
