//! Ablation — silence propagation strategies (§II.G.3).
//!
//! Compares lazy, curiosity, aggressive and hyper-aggressive (bias)
//! propagation in the §III.A simulation, reporting latency, probe traffic
//! and explicit silence volume. The paper measures lazy vs curiosity
//! (Fig 5) and describes aggressive/hyper-aggressive qualitatively; this
//! ablation quantifies all four under identical load.

// Measurement harness (tart-lint tier: Exempt): its entire purpose is wall-clock timing.
#![allow(clippy::disallowed_types)]

use tart_bench::{print_table, quick_mode};
use tart_silence::SilencePolicy;
use tart_sim::{ExecMode, FanInSim, SimConfig};
use tart_vtime::VirtualDuration;

fn main() {
    let quick = quick_mode();
    let messages = if quick { 3_000 } else { 30_000 };
    println!("Silence-policy ablation: {messages} messages per sender");

    let mut base = SimConfig::paper_iii_a();
    base.messages_per_sender = messages;

    let nondet = {
        let mut cfg = base.clone();
        cfg.mode = ExecMode::NonDeterministic;
        FanInSim::new(cfg).run()
    };

    let policies = [
        ("lazy", SilencePolicy::Lazy),
        ("curiosity", SilencePolicy::Curiosity),
        (
            "aggressive (200µs)",
            SilencePolicy::Aggressive {
                max_quiet: VirtualDuration::from_micros(200),
            },
        ),
        (
            "hyper-aggressive (bias 100µs)",
            SilencePolicy::HyperAggressive {
                bias: VirtualDuration::from_micros(100),
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut by_name = std::collections::HashMap::new();
    for (name, policy) in policies {
        let mut cfg = base.clone();
        cfg.silence = policy;
        let report = FanInSim::new(cfg).run();
        by_name.insert(name, report.avg_latency_micros());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", report.avg_latency_micros()),
            format!("{:+.1}%", report.overhead_percent_vs(&nondet)),
            report.probes.to_string(),
            report.silence_advances.to_string(),
            format!(
                "{:.1}",
                report.pessimism_delay_ns as f64 / 1_000.0 / report.completed.max(1) as f64
            ),
        ]);
    }
    rows.insert(
        0,
        vec![
            "non-deterministic".into(),
            format!("{:.1}", nondet.avg_latency_micros()),
            "—".into(),
            "0".into(),
            "0".into(),
            "0.0".into(),
        ],
    );
    print_table(
        "Silence propagation ablation (§II.G.3)",
        &[
            "policy",
            "latency µs",
            "ovh vs non-det",
            "probes",
            "silence msgs",
            "pessimism µs/msg",
        ],
        &rows,
    );

    assert!(
        by_name["lazy"] > by_name["curiosity"],
        "lazy must cost more than curiosity"
    );
    println!("\nShape check PASSED: lazy > curiosity in latency, as in Fig 5.");
}
