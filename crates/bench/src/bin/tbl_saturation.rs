//! §III.A throughput experiment — saturation is unaffected by determinism.
//!
//! "We estimated throughput by increasing the message rates of the external
//! clients from the initial 1000 messages/second gradually until the system
//! became unstable … In both deterministic and non-deterministic execution
//! modes, the system saturated at 1235 messages/second."
//!
//! The physical capacity of the Fig 1 system is the merger: 400 µs/message
//! from two senders → 1250 msg/s per sender. The reproduced claim is that
//! the deterministic and non-deterministic saturation points coincide (the
//! paper's "we were unable to detect any throughput degradation due to
//! determinism at all").

use tart_bench::{print_table, quick_mode};
use tart_sim::{find_saturation, ExecMode, SimConfig};

fn main() {
    let quick = quick_mode();
    let messages = if quick { 2_000 } else { 10_000 };
    let budget_us = 50_000.0;
    println!("Saturation ramp: {messages} messages per sender per probe, budget {budget_us} µs");

    let mut base = SimConfig::paper_iii_a();
    base.messages_per_sender = messages;

    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for (label, mode, prescient) in [
        ("non-deterministic", ExecMode::NonDeterministic, false),
        ("deterministic", ExecMode::Deterministic, false),
        ("prescient", ExecMode::Deterministic, true),
    ] {
        let mut cfg = base.clone();
        cfg.mode = mode;
        cfg.prescient = prescient;
        let result = find_saturation(&cfg, budget_us);
        rates.push(result.saturation_rate_per_sec);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", result.saturation_rate_per_sec),
            result.probes.len().to_string(),
        ]);
    }
    print_table(
        "Throughput saturation (paper: both modes saturate at 1235 msg/s/sender)",
        &["mode", "saturation msg/s/sender", "ramp probes"],
        &rows,
    );

    let ratio = rates[1] / rates[0];
    assert!(
        (0.95..=1.05).contains(&ratio),
        "determinism must not change the saturation point: det {} vs nondet {}",
        rates[1],
        rates[0]
    );
    if !quick {
        assert!(
            (1_100.0..=1_350.0).contains(&rates[0]),
            "saturation should sit near the merger's 1250 msg/s capacity, got {}",
            rates[0]
        );
    }
    println!(
        "\nShape check PASSED: det/non-det saturation ratio {ratio:.3} (paper: 1.000), both near \
         the 1250 msg/s physical capacity."
    );
}
