//! Hot-path throughput baseline: the repo's perf trajectory starts here.
//!
//! Four measurements, written to `BENCH_throughput.json` at the workspace
//! root (committed — later sessions diff against it):
//!
//! 1. **Local pipeline** — messages/sec through a deployed two-engine
//!    cluster on the in-process router (inject → process → output), run at
//!    two message counts (short and 10x sustained). The sustained/short
//!    ratio is a *scaling-flatness* probe: per-message cost that grows
//!    with component state (the classic mistake is an O(state) hash or
//!    scan on the delivery path) drives it toward zero, while honest
//!    O(1) per-message work keeps it near 1 regardless of host speed.
//! 2. **TCP loopback** — envelopes/sec over a real socket, one frame per
//!    envelope (`write_frame`/`read_frame`) vs the batch frame
//!    (`write_batch`/`read_batch`, 64 envelopes per `write_all`).
//! 3. **WAL appends** — records/sec under `FsyncPolicy::Always` (one
//!    `sync_all` per record) vs `GroupCommit` (one per 64-record window).
//! 4. **Checkpoint bytes** — serialized size of a full `CkptMap` snapshot
//!    vs the incremental delta after touching a few keys.
//!
//! `--quick` runs reduced iteration counts, leaves the committed baseline
//! untouched, and *gates*: the run's own
//! batching and group-commit speedups must each be ≥ 2x, and — when a
//! committed `BENCH_throughput.json` exists — the current speedups must be
//! at least half the committed ones. Speedup *ratios* are compared, never
//! absolute rates: CI hardware varies wildly, but "batching divided by
//! not-batching on the same box" does not.

// Measurement harness (tart-lint tier: Exempt): its purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use tart_bench::{json_f64, print_table, quick_mode};
use tart_engine::net::{read_batch, read_frame, write_batch, write_frame};
use tart_engine::{Cluster, ClusterConfig, Envelope, FsyncPolicy, Placement, Wal};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{BlockId, CheckpointMode, CkptMap, Value};
use tart_vtime::{EngineId, VirtualTime, WireId};

/// Envelopes per batch frame on the TCP path (mirrors the writer thread's
/// drain cap order of magnitude; 64 is a typical busy-link fill).
const BATCH: usize = 64;
/// Group-commit window used for the WAL comparison.
const GROUP: FsyncPolicy = FsyncPolicy::GroupCommit {
    max_records: 64,
    max_delay: Duration::from_millis(5),
};

fn main() {
    let quick = quick_mode();
    let (pipeline_msgs, tcp_envelopes, wal_records) = if quick {
        (200, 20_000, 96)
    } else {
        (2_000, 200_000, 512)
    };

    let local = local_pipeline(pipeline_msgs);
    let sustained_msgs = pipeline_msgs * 10;
    let sustained = local_pipeline(sustained_msgs);
    let pipeline_scaling = sustained / local;
    let (unbatched, batched) = tcp_loopback(tcp_envelopes);
    let (wal_always, wal_group) = wal_appends(wal_records);
    let (full_bytes, delta_bytes) = checkpoint_bytes();

    let tcp_speedup = batched / unbatched;
    let wal_speedup = wal_group / wal_always;
    let ckpt_ratio = full_bytes as f64 / delta_bytes as f64;

    print_table(
        "Hot-path throughput baseline",
        &["measurement", "value"],
        &[
            vec!["local pipeline msgs/sec".into(), format!("{local:.0}")],
            vec![
                "local pipeline sustained (10x) msgs/sec".into(),
                format!("{sustained:.0}"),
            ],
            vec![
                "pipeline scaling (sustained/short)".into(),
                format!("{pipeline_scaling:.2}"),
            ],
            vec!["tcp unbatched env/sec".into(), format!("{unbatched:.0}")],
            vec!["tcp batched env/sec".into(), format!("{batched:.0}")],
            vec!["tcp batching speedup".into(), format!("{tcp_speedup:.2}x")],
            vec!["wal Always appends/sec".into(), format!("{wal_always:.0}")],
            vec![
                "wal GroupCommit appends/sec".into(),
                format!("{wal_group:.0}"),
            ],
            vec![
                "wal group-commit speedup".into(),
                format!("{wal_speedup:.2}x"),
            ],
            vec!["full checkpoint bytes".into(), format!("{full_bytes}")],
            vec!["delta checkpoint bytes".into(), format!("{delta_bytes}")],
            vec!["full/delta ratio".into(), format!("{ckpt_ratio:.1}x")],
        ],
    );

    // Baseline comparison BEFORE overwriting the file. Ratios only.
    let baseline = std::fs::read_to_string("BENCH_throughput.json").ok();
    let mut regressions = Vec::new();
    if let Some(base) = &baseline {
        for (key, now) in [
            ("tcp_speedup", tcp_speedup),
            ("wal_speedup", wal_speedup),
            ("pipeline_scaling", pipeline_scaling),
        ] {
            if let Some(was) = json_f64(base, key) {
                if now < was / 2.0 {
                    regressions.push(format!("{key}: {now:.2}x vs committed {was:.2}x"));
                }
            }
        }
    } else {
        eprintln!("no committed BENCH_throughput.json — first run, nothing to compare");
    }

    // Quick mode gates against the committed baseline but never refreshes
    // it — only a full run's numbers are worth committing.
    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"throughput\",\n  \"mode\": \"full\",\n  \
             \"local_pipeline_msgs_per_sec\": {local:.0},\n  \
             \"local_pipeline_sustained_msgs_per_sec\": {sustained:.0},\n  \
             \"local_pipeline_sustained_msgs\": {sustained_msgs},\n  \
             \"pipeline_scaling\": {pipeline_scaling:.2},\n  \
             \"tcp_unbatched_env_per_sec\": {unbatched:.0},\n  \
             \"tcp_batched_env_per_sec\": {batched:.0},\n  \
             \"tcp_batch_size\": {BATCH},\n  \"tcp_speedup\": {tcp_speedup:.2},\n  \
             \"wal_always_appends_per_sec\": {wal_always:.0},\n  \
             \"wal_group_commit_appends_per_sec\": {wal_group:.0},\n  \
             \"wal_group_max_records\": 64,\n  \"wal_group_max_delay_ms\": 5,\n  \
             \"wal_speedup\": {wal_speedup:.2},\n  \
             \"checkpoint_full_bytes\": {full_bytes},\n  \
             \"checkpoint_delta_bytes\": {delta_bytes},\n  \
             \"checkpoint_full_over_delta\": {ckpt_ratio:.1}\n}}\n",
        );
        std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
        println!("wrote BENCH_throughput.json");
    }

    if quick {
        tart_bench::write_quick_ratios(
            "throughput",
            &[
                ("tcp_speedup", tcp_speedup),
                ("wal_speedup", wal_speedup),
                ("pipeline_scaling", pipeline_scaling),
            ],
        );
        assert!(
            tcp_speedup >= 2.0,
            "batched TCP must be ≥2x over per-envelope frames, got {tcp_speedup:.2}x"
        );
        assert!(
            wal_speedup >= 2.0,
            "group commit must be ≥2x over per-record fsync, got {wal_speedup:.2}x"
        );
        assert!(
            ckpt_ratio >= 2.0,
            "a sparse delta must be far smaller than a full snapshot, got {ckpt_ratio:.1}x"
        );
        assert!(
            pipeline_scaling >= 0.5,
            "pipeline throughput must stay flat at 10x the message count \
             (superlinear per-message cost?), got scaling {pipeline_scaling:.2}"
        );
        assert!(
            regressions.is_empty(),
            ">2x regression vs committed baseline: {regressions:?}"
        );
        println!("quick gates passed (speedups ≥2x, flat scaling, no >2x baseline regression)");
    }
}

/// Messages/sec through a real two-engine cluster on the in-process router.
fn local_pipeline(messages: usize) -> f64 {
    let spec = fan_in_app(2).expect("valid app");
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(64);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config.idle_poll_micros = 50;
    let mut placement = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        placement.assign(c.id(), EngineId::new(engine));
    }
    let cluster = Cluster::deploy(spec, placement, config).expect("deploys");
    let clients = [
        cluster.injector("client1").expect("injector"),
        cluster.injector("client2").expect("injector"),
    ];
    let start = Instant::now();
    for i in 0..messages {
        clients[i % 2].send(Value::from(format!("alpha beta gamma {i}")));
    }
    cluster.finish_inputs();
    // Hold a hub handle so the report can be written OUTSIDE the timed
    // window (the file write would otherwise count against throughput).
    let obs = std::sync::Arc::clone(cluster.obs());
    let outs = cluster.shutdown();
    let secs = start.elapsed().as_secs_f64();
    assert!(!outs.is_empty(), "pipeline produced outputs");
    match tart_engine::write_report(&obs.snapshot()) {
        Ok(path) => eprintln!("obs report written to {}", path.display()),
        Err(e) => eprintln!("obs report not written: {e}"),
    }
    messages as f64 / secs
}

/// A representative data envelope (string payload, mid-sized).
fn sample_envelope(i: usize) -> Envelope {
    Envelope::Data {
        wire: WireId::new(7),
        vt: VirtualTime::from_ticks(i as u64 + 1),
        prev_vt: VirtualTime::from_ticks(i as u64),
        payload: Value::from("the quick brown fox jumps over the lazy dog"),
    }
}

/// Envelopes/sec over a loopback socket: per-envelope frames vs batch
/// frames. The sink thread counts what it decodes; the measurement covers
/// connect → last byte acknowledged by the reader.
fn tcp_loopback(envelopes: usize) -> (f64, f64) {
    // Best of three: loopback throughput is at the mercy of the scheduler
    // (one bad core migration can triple a run), and the baseline gate
    // compares ratios of these numbers.
    let best = |batched: bool, produce: fn(&mut TcpStream, usize)| -> f64 {
        (0..3)
            .map(|_| tcp_run(envelopes, batched, produce))
            .fold(0.0f64, f64::max)
    };
    let unbatched = best(false, |stream, n| {
        let target = EngineId::new(1);
        for i in 0..n {
            write_frame(stream, target, &sample_envelope(i)).expect("frame write");
        }
    });
    let batched = best(true, |stream, n| {
        let target = EngineId::new(1);
        let mut scratch = BytesMut::with_capacity(8192);
        let mut batch = Vec::with_capacity(BATCH);
        let mut sent = 0;
        while sent < n {
            batch.clear();
            while batch.len() < BATCH && sent + batch.len() < n {
                batch.push((target, sample_envelope(sent + batch.len())));
            }
            sent += batch.len();
            write_batch(stream, &batch, &mut scratch).expect("batch write");
        }
    });
    (unbatched, batched)
}

/// Runs one TCP producer/sink pair; returns envelopes/sec. `batched` tells
/// the sink which framing to decode.
fn tcp_run(envelopes: usize, batched: bool, produce: impl FnOnce(&mut TcpStream, usize)) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let sink = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        conn.set_nodelay(true).ok();
        let mut seen = 0usize;
        if batched {
            while let Ok(Some(batch)) = read_batch(&mut conn) {
                seen += batch.len();
            }
        } else {
            while let Ok(Some(_)) = read_frame(&mut conn) {
                seen += 1;
            }
        }
        seen
    });
    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    stream.set_nodelay(true).expect("nodelay");
    let start = Instant::now();
    produce(&mut stream, envelopes);
    stream.flush().expect("flush");
    drop(stream);
    let seen = sink.join().expect("sink thread");
    let secs = start.elapsed().as_secs_f64();
    assert!(
        seen * 10 >= envelopes * 9,
        "sink decoded {seen}/{envelopes} envelopes"
    );
    seen as f64 / secs
}

/// Appends/sec under per-record fsync vs group commit, same record size.
fn wal_appends(records: usize) -> (f64, f64) {
    let body = [0x5au8; 64];
    let run = |policy: FsyncPolicy, tag: &str| -> f64 {
        let dir = std::env::temp_dir().join(format!("tart-bench-wal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut wal = Wal::create(&dir, u64::MAX, policy).expect("create wal");
        let start = Instant::now();
        for _ in 0..records {
            wal.append(&body).expect("append");
        }
        wal.sync().expect("final sync");
        let secs = start.elapsed().as_secs_f64();
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
        records as f64 / secs
    };
    (run(FsyncPolicy::Always, "always"), run(GROUP, "group"))
}

/// Serialized bytes of a full `CkptMap` snapshot vs the delta after
/// touching a handful of keys — the §II.F.2 incremental-checkpoint saving.
fn checkpoint_bytes() -> (usize, usize) {
    let mut map: CkptMap<String, u64> = CkptMap::new();
    for i in 0..1024u64 {
        map.insert(format!("key-{i:04}"), i);
    }
    let full = map
        .take_chunk(CheckpointMode::Full)
        .expect("full chunk")
        .bytes()
        .len();
    for i in 0..16u64 {
        map.insert(format!("key-{:04}", i * 61), i + 1_000_000);
    }
    let delta = map
        .take_chunk(CheckpointMode::Incremental)
        .expect("delta chunk")
        .bytes()
        .len();
    (full, delta)
}
