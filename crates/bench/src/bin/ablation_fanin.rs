//! Ablation — fan-in scaling (the paper's §IV conjecture).
//!
//! "If fan-in is high, or if sending components are remote, we conjecture
//! that curiosity-based silence propagation will have to be augmented with
//! other approaches including aggressive and hyper-aggressive silence
//! propagation." The paper leaves this unmeasured; this ablation tests it:
//! the Fig 1 system generalized to N senders, holding the merger's
//! utilization constant, comparing curiosity vs aggressive propagation as
//! N grows.

use tart_bench::{print_table, quick_mode};
use tart_silence::SilencePolicy;
use tart_sim::{ExecMode, FanInSim, SimConfig};
use tart_vtime::VirtualDuration;

fn main() {
    let quick = quick_mode();
    let total_messages: u64 = if quick { 8_000 } else { 60_000 };
    println!(
        "Fan-in ablation: ~{total_messages} total messages per point, merger held at 80% load"
    );

    let mut rows = Vec::new();
    let mut curiosity_ovh = Vec::new();
    let mut aggressive_ovh = Vec::new();
    for n in [2usize, 4, 8, 16] {
        // Hold the merger at 80 %: n senders × rate × 400 µs = 0.8.
        let interarrival_ns = (n as u64) * 500_000;
        let per_sender = total_messages / n as u64;
        let base = {
            let mut cfg = SimConfig::paper_iii_a();
            cfg.n_senders = n;
            cfg.mean_interarrival_ns = interarrival_ns;
            cfg.messages_per_sender = per_sender;
            cfg
        };
        let run = |mode: ExecMode, silence: SilencePolicy| {
            let mut cfg = base.clone();
            cfg.mode = mode;
            cfg.silence = silence;
            FanInSim::new(cfg).run()
        };
        let nondet = run(ExecMode::NonDeterministic, SilencePolicy::Curiosity);
        let curiosity = run(ExecMode::Deterministic, SilencePolicy::Curiosity);
        let aggressive = run(
            ExecMode::Deterministic,
            SilencePolicy::Aggressive {
                max_quiet: VirtualDuration::from_micros(100),
            },
        );
        let c_ovh = curiosity.overhead_percent_vs(&nondet);
        let a_ovh = aggressive.overhead_percent_vs(&nondet);
        curiosity_ovh.push(c_ovh);
        aggressive_ovh.push(a_ovh);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", nondet.avg_latency_micros()),
            format!("{:.1}", curiosity.avg_latency_micros()),
            format!("{c_ovh:+.1}%"),
            format!("{:.2}", curiosity.probes_per_message()),
            format!("{:.1}", aggressive.avg_latency_micros()),
            format!("{a_ovh:+.1}%"),
        ]);
    }
    print_table(
        "Fan-in scaling: curiosity vs aggressive silence (paper §IV conjecture)",
        &[
            "senders",
            "non-det µs",
            "curiosity µs",
            "cur ovh",
            "probes/msg",
            "aggressive µs",
            "agg ovh",
        ],
        &rows,
    );

    let conjecture_holds = aggressive_ovh.last().unwrap() <= curiosity_ovh.last().unwrap();
    println!(
        "\nAt fan-in 16: curiosity {:+.1}% vs aggressive {:+.1}% — the paper's conjecture that \
         aggressive propagation helps at high fan-in {}.",
        curiosity_ovh.last().unwrap(),
        aggressive_ovh.last().unwrap(),
        if conjecture_holds {
            "HOLDS"
        } else {
            "does NOT hold at this load"
        },
    );
}
