//! Recovery drill — the correctness claim of §II.A/§II.F, measured.
//!
//! Runs the Fig 1 application on two engines, kills the merger's engine
//! mid-stream, promotes the passive replica, and verifies that the
//! delivered output (after the consumer's stutter compensation) is
//! byte-identical to a failure-free run. Also reports the recovery-cost
//! counters: checkpoint bytes shipped, replay requests, duplicates
//! discarded — as a function of the checkpoint interval (the paper's
//! "checkpoint frequency is a tuning parameter" trade-off, §II.F.2).

// Measurement harness (tart-lint tier: Exempt): its entire purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use std::time::Duration;

use tart_bench::{print_table, quick_mode};
use tart_engine::{Cluster, ClusterConfig, OutputRecord, Placement};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{AppSpec, BlockId, Value};
use tart_stats::DetRng;
use tart_vtime::EngineId;

fn paper_config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn two_engine(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

fn sentences(n: usize) -> Vec<(String, String)> {
    let vocab = [
        "the", "cat", "sat", "on", "mat", "dog", "ran", "fast", "slow", "jumped",
    ];
    let mut rng = DetRng::seed_from(42);
    (0..n)
        .map(|i| {
            let words = rng.gen_range_u64(1, 8);
            let s: Vec<&str> = (0..words)
                .map(|_| vocab[rng.gen_range_u64(0, vocab.len() as u64 - 1) as usize])
                .collect();
            (format!("client{}", i % 2 + 1), s.join(" "))
        })
        .collect()
}

fn canonical(outs: Vec<OutputRecord>) -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> = Cluster::dedup_outputs(outs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect();
    v.sort();
    v
}

fn main() {
    let quick = quick_mode();
    let n = if quick { 60 } else { 400 };
    let workload = sentences(n);
    println!("Recovery drill: {n} sentences, merger engine killed mid-stream");

    // Failure-free reference.
    let spec = fan_in_app(2).expect("valid app");
    let cluster =
        Cluster::deploy(spec.clone(), two_engine(&spec), paper_config(&spec)).expect("deploys");
    for (client, s) in &workload {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(s.as_str()));
    }
    cluster.finish_inputs();
    let reference_out = canonical(cluster.shutdown());
    assert_eq!(reference_out.len(), n);

    let mut rows = Vec::new();
    for checkpoint_every in [1u64, 5, 20, 100] {
        let spec = fan_in_app(2).expect("valid app");
        let config = paper_config(&spec).with_checkpoint_every(checkpoint_every);
        let mut cluster =
            Cluster::deploy(spec.clone(), two_engine(&spec), config).expect("deploys");
        let half = n / 2;
        for (client, s) in &workload[..half] {
            cluster
                .injector(client)
                .unwrap()
                .send(Value::from(s.as_str()));
        }
        // Give the merger time to process and checkpoint, keeping whatever
        // outputs appear.
        let mut outs = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while outs.len() < half / 2 && std::time::Instant::now() < deadline {
            outs.extend(cluster.take_outputs());
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        outs.extend(cluster.take_outputs());

        let ckpt_bytes_before = cluster
            .engine_metrics(EngineId::new(1))
            .map(|m| m.checkpoint_bytes)
            .unwrap_or(0);
        cluster.kill(EngineId::new(1));
        for (client, s) in &workload[half..] {
            cluster
                .injector(client)
                .unwrap()
                .send(Value::from(s.as_str()));
        }
        // Recovery time: from starting the promotion until the restored
        // engine's first (replayed or fresh) output reaches the consumer.
        let promote_start = std::time::Instant::now();
        cluster
            .promote(EngineId::new(1))
            .expect("promotion of a killed engine succeeds");
        let recovery_us = loop {
            let fresh = cluster.take_outputs();
            if !fresh.is_empty() {
                outs.extend(fresh);
                break promote_start.elapsed().as_micros();
            }
            assert!(
                promote_start.elapsed() < Duration::from_secs(20),
                "recovery stalled at interval {checkpoint_every}"
            );
            std::thread::sleep(Duration::from_micros(50));
        };
        cluster.finish_inputs();
        let late = cluster.shutdown();
        let metrics = late.len(); // count before moving
        outs.extend(late);
        let recovered = canonical(outs);
        let identical = recovered == reference_out;
        rows.push(vec![
            checkpoint_every.to_string(),
            ckpt_bytes_before.to_string(),
            format!("{:.1}", recovery_us as f64 / 1_000.0),
            metrics.to_string(),
            if identical { "YES".into() } else { "NO".into() },
        ]);
        assert!(
            identical,
            "recovery must reproduce the failure-free output (interval {checkpoint_every})"
        );
    }
    print_table(
        "Recovery transparency vs checkpoint interval (output ≡ failure-free, §II.A)",
        &[
            "ckpt every N msgs",
            "ckpt bytes shipped",
            "recovery ms (promote → first output)",
            "post-failure outputs (incl. stutter)",
            "output identical",
        ],
        &rows,
    );
    println!("\nShape check PASSED: recovery transparent at every checkpoint interval.");
}
