//! Ablation — checkpoint frequency and incremental checkpointing (§II.F.2).
//!
//! "The checkpoint frequency is a tuning parameter: more frequent
//! checkpointing reduces recovery time but increases overhead." This
//! ablation runs the Fig 1 application on one engine with a growing
//! word-count table and reports, per checkpoint interval: checkpoints
//! taken, total bytes shipped to the replica, and bytes per checkpoint —
//! demonstrating how the incremental `CkptMap` journal keeps frequent
//! checkpoints cheap compared to full-state captures.

// Measurement harness (tart-lint tier: Exempt): its entire purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use tart_bench::{print_table, quick_mode};
use tart_engine::{Cluster, ClusterConfig, Placement};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{BlockId, Value};
use tart_stats::DetRng;
use tart_vtime::EngineId;

fn main() {
    let quick = quick_mode();
    let n = if quick { 200 } else { 2_000 };
    println!("Checkpoint ablation: {n} sentences through the Fig 1 app");

    let mut rng = DetRng::seed_from(7);
    let workload: Vec<(String, String)> = (0..n)
        .map(|i| {
            let words: Vec<String> = (0..rng.gen_range_u64(1, 19))
                .map(|_| format!("word{}", rng.gen_range_u64(0, 500)))
                .collect();
            (format!("client{}", i % 2 + 1), words.join(" "))
        })
        .collect();

    let mut rows = Vec::new();
    for interval in [1u64, 10, 100, 1_000] {
        let spec = fan_in_app(2).expect("valid app");
        let mut config = ClusterConfig::logical_time().with_checkpoint_every(interval);
        for c in spec.components() {
            let est = if c.name().starts_with("Sender") {
                EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
            } else {
                EstimatorSpec::per_iteration(BlockId(0), 400_000)
            };
            config = config.with_estimator(c.id(), est);
        }
        let cluster = Cluster::deploy(
            spec,
            Placement::single_engine(&fan_in_app(2).unwrap()),
            config,
        )
        .expect("deploys");
        for (client, s) in &workload {
            cluster
                .injector(client)
                .unwrap()
                .send(Value::from(s.as_str()));
        }
        cluster.finish_inputs();
        // Metrics must be read before shutdown consumes the cluster.
        let wait = std::time::Instant::now();
        loop {
            let m = cluster.engine_metrics(EngineId::new(0)).expect("engine 0");
            if m.processed >= (n as u64) * 2 || wait.elapsed().as_secs() > 30 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let metrics = cluster.engine_metrics(EngineId::new(0)).expect("engine 0");
        let _ = cluster.shutdown();
        let per_ckpt = metrics
            .checkpoint_bytes
            .checked_div(metrics.checkpoints)
            .unwrap_or(0);
        rows.push(vec![
            interval.to_string(),
            metrics.checkpoints.to_string(),
            metrics.checkpoint_bytes.to_string(),
            per_ckpt.to_string(),
        ]);
    }
    print_table(
        "Checkpoint interval ablation (incremental CkptMap journaling, §II.F.2)",
        &[
            "every N msgs",
            "checkpoints",
            "total bytes",
            "bytes/checkpoint",
        ],
        &rows,
    );

    let total_at = |row: usize| rows[row][2].parse::<u64>().expect("numeric");
    assert!(
        total_at(0) > total_at(2),
        "frequent checkpointing must ship more total bytes"
    );
    let per_at = |row: usize| rows[row][3].parse::<u64>().expect("numeric");
    assert!(
        per_at(0) < per_at(2),
        "incremental deltas keep frequent checkpoints individually small"
    );
    println!(
        "\nShape check PASSED: total checkpoint volume rises with frequency while per-checkpoint \
         size falls (incremental journaling at work)."
    );
}
