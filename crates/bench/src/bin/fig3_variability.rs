//! Fig 3 — latency as a function of sender compute-time variability.
//!
//! §III.A simulates the Fig 1 system on a multiprocessor: senders take
//! 60 µs of virtual time per iteration (mean 10 iterations), Poisson
//! clients at 1 msg/1000 µs, a 400 µs merger, 20 µs curiosity probes, and
//! per-tick normal jitter (σ = 0.1). Variability is staged from constant
//! (every message 10 iterations) to uniform 1..=19. Three modes are
//! compared: Non-deterministic, Deterministic (curiosity, non-prescient),
//! and Prescient.
//!
//! Paper shape: latency grows with variability in all modes; determinism
//! costs 2.8 %–4.1 % throughout, prescience slightly less.

use tart_bench::{print_table, quick_mode};
use tart_sim::{ExecMode, FanInSim, IterationDist, SimConfig};

fn main() {
    let quick = quick_mode();
    let messages = if quick { 2_000 } else { 50_000 };
    println!("Fig 3 reproduction: {messages} messages per sender per point");

    let base = {
        let mut cfg = SimConfig::paper_iii_a();
        cfg.messages_per_sender = messages;
        cfg
    };

    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for stage in IterationDist::paper_stages() {
        let sd = stage.compute_sd_micros(base.true_ns_per_iteration as f64 / 1_000.0);
        let run = |mode: ExecMode, prescient: bool| {
            let mut cfg = base.clone();
            cfg.iterations = stage;
            cfg.mode = mode;
            cfg.prescient = prescient;
            FanInSim::new(cfg).run()
        };
        let nondet = run(ExecMode::NonDeterministic, false);
        let det = run(ExecMode::Deterministic, false);
        let prescient = run(ExecMode::Deterministic, true);
        let det_ovh = det.overhead_percent_vs(&nondet);
        let pre_ovh = prescient.overhead_percent_vs(&nondet);
        overheads.push((det_ovh, pre_ovh));
        rows.push(vec![
            format!("{sd:.1}"),
            format!("{:.1}", nondet.avg_latency_micros()),
            format!("{:.1}", det.avg_latency_micros()),
            format!("{det_ovh:+.1}%"),
            format!("{:.1}", prescient.avg_latency_micros()),
            format!("{pre_ovh:+.1}%"),
            format!("{:.2}", det.probes_per_message()),
        ]);
    }
    print_table(
        "Fig 3 — latency vs S.D. of sender compute time (paper: det overhead 2.8–4.1 %)",
        &[
            "SD µs",
            "non-det µs",
            "det µs",
            "det ovh",
            "prescient µs",
            "presc ovh",
            "probes/msg",
        ],
        &rows,
    );

    // Shape checks.
    let max_det = overheads.iter().map(|(d, _)| *d).fold(f64::MIN, f64::max);
    let all_reasonable = overheads.iter().all(|(d, p)| *d < 10.0 && *p <= *d + 1.0);
    assert!(
        max_det < 10.0 && all_reasonable,
        "determinism overhead should stay in the single-digit band; got {overheads:?}"
    );
    println!(
        "\nShape check PASSED: determinism overhead ≤ {max_det:.1}% across all variability stages; \
         prescient never worse than plain deterministic."
    );
}
