//! Fig 5 — a real (non-simulated) two-engine distributed run.
//!
//! §III.C: "We ran an actual multi-engine implementation, not a simulation,
//! of the TART protocols, using a variation of the application of Figure 1,
//! but with constant-time services and ad-hoc estimators. The Sender
//! components were on one engine, the Merger on a second. We compared
//! non-deterministic execution to deterministic execution with both lazy
//! and curiosity-based silence propagation." Fig 5 plots per-web-request
//! latency over ~2800 requests; curiosity stays under 20 % above
//! non-deterministic, while lazy shows millisecond-scale delays.
//!
//! Here the two "machines" are two engine threads joined by the in-process
//! transport (see DESIGN.md §3 for why this preserves the protocol path).

use std::time::Duration;

use tart_bench::{print_table, quick_mode, run_fig5};
use tart_engine::ClusterConfig;
use tart_estimator::EstimatorSpec;
use tart_silence::SilencePolicy;
use tart_vtime::VirtualDuration;

fn config(base: fn() -> ClusterConfig) -> ClusterConfig {
    let spec = tart_bench::fig5_app();
    let mut cfg = base();
    // "Ad-hoc estimators": constant 50 µs per service invocation.
    for c in spec.components() {
        cfg = cfg.with_estimator(
            c.id(),
            EstimatorSpec::constant(VirtualDuration::from_micros(50)),
        );
        cfg.min_work
            .insert(c.id(), VirtualDuration::from_micros(50));
    }
    cfg.idle_poll_micros = 100;
    cfg
}

fn main() {
    let quick = quick_mode();
    // The figure's x-axis runs to ~2809 web requests.
    let requests = if quick { 400 } else { 2_809 };
    let gap = Duration::from_micros(1_000);
    println!("Fig 5 reproduction: {requests} web requests, 1 request/ms alternating two clients");

    let nondet = run_fig5(
        config(ClusterConfig::real_time).non_deterministic(),
        requests,
        gap,
        100,
    );
    let curiosity = run_fig5(
        config(ClusterConfig::real_time).with_silence(SilencePolicy::Curiosity),
        requests,
        gap,
        100,
    );
    let lazy = run_fig5(
        config(ClusterConfig::real_time).with_silence(SilencePolicy::Lazy),
        requests,
        gap,
        100,
    );

    let rows = vec![
        vec![
            "non-deterministic".into(),
            format!("{:.0}", nondet.mean_us()),
            format!("{:.0}", nondet.percentile_us(50.0)),
            format!("{:.0}", nondet.percentile_us(95.0)),
        ],
        vec![
            "deterministic; curiosity".into(),
            format!("{:.0}", curiosity.mean_us()),
            format!("{:.0}", curiosity.percentile_us(50.0)),
            format!("{:.0}", curiosity.percentile_us(95.0)),
        ],
        vec![
            "deterministic; lazy".into(),
            format!("{:.0}", lazy.mean_us()),
            format!("{:.0}", lazy.percentile_us(50.0)),
            format!("{:.0}", lazy.percentile_us(95.0)),
        ],
    ];
    print_table(
        "Fig 5 — real two-engine run (paper: curiosity <20 % over non-det; lazy ms-scale)",
        &["mode", "mean µs", "p50 µs", "p95 µs"],
        &rows,
    );

    // The per-request latency series, bucketed as the figure plots it.
    let bucket = (requests / 8).max(1);
    let series_rows: Vec<Vec<String>> = nondet
        .bucket_means_us(bucket)
        .iter()
        .zip(curiosity.bucket_means_us(bucket).iter())
        .zip(lazy.bucket_means_us(bucket).iter())
        .enumerate()
        .map(|(i, ((n, c), l))| {
            vec![
                format!("{}..{}", i * bucket + 1, ((i + 1) * bucket).min(requests)),
                format!("{n:.0}"),
                format!("{c:.0}"),
                format!("{l:.0}"),
            ]
        })
        .collect();
    print_table(
        "Fig 5 — latency series per web-request bucket (µs)",
        &["requests", "non-det", "det curiosity", "det lazy"],
        &series_rows,
    );

    // Shape checks: curiosity ≈ non-det; lazy far worse (its pessimism
    // delays are bounded only by the other wire's next message, ~2 ms here).
    assert!(
        lazy.mean_us() > curiosity.mean_us() * 2.0,
        "lazy ({:.0} µs) should be far worse than curiosity ({:.0} µs)",
        lazy.mean_us(),
        curiosity.mean_us()
    );
    println!(
        "\nShape check PASSED: curiosity mean {:.0} µs vs non-det {:.0} µs ({:+.0}%); lazy mean \
         {:.0} µs ({:.1}× curiosity) — the paper's ordering.",
        curiosity.mean_us(),
        nondet.mean_us(),
        (curiosity.mean_us() - nondet.mean_us()) / nondet.mean_us() * 100.0,
        lazy.mean_us(),
        lazy.mean_us() / curiosity.mean_us(),
    );
}
