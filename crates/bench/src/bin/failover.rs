//! Failover latency — warm standby vs cold replay, measured.
//!
//! The availability claim of the warm-standby plane (DESIGN.md §16): with a
//! standby pre-applying streamed checkpoints to within the trailing
//! horizon, promotion replays only the unapplied tail, so kill → first
//! fresh output is bounded by the horizon instead of growing with the
//! checkpoint chain. This binary measures that claim on a heavy-state
//! ledger (tens of thousands of checkpointed keys, a long full+delta chain
//! per failure round) and writes `BENCH_failover.json` at the workspace
//! root (committed — later sessions diff against it):
//!
//! - **cold** — no standby: every promotion restores the whole chain from
//!   the passive replica — applying *and hash-verifying* every member,
//!   where each verification re-serializes the full ledger — then replays.
//! - **warm** — tight-horizon standby: members were applied and verified in
//!   the background as they streamed; promotion applies only the unapplied
//!   tail (a member or two) and replays the same tail.
//!
//! Each round kills the ledger engine mid-traffic (a burst lands in the
//! log while it is dead) and times kill → first post-recovery output.
//! `--quick` runs reduced parameters, leaves the committed baseline
//! untouched, and *gates*: warm p99 must undercut cold p99 by ≥ 5x, and —
//! when a committed `BENCH_failover.json` exists — the current speedup must
//! be at least half the committed one. Ratios only, never absolute
//! latencies: CI hardware varies, "cold divided by warm on the same box"
//! does not.

// Measurement harness (tart-lint tier: Exempt): its purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use tart_bench::{print_table, quick_mode};
use tart_engine::{Cluster, ClusterConfig, OutputRecord, Placement, StandbyConfig};
use tart_estimator::EstimatorSpec;
use tart_model::{
    AppSpec, BlockId, CheckpointMode, CkptCell, CkptMap, Component, Ctx, RestoreError, Snapshot,
    Value,
};
use tart_vtime::{EngineId, PortId, VirtualTime};

/// A ledger with deliberately heavy checkpointed state: every full
/// snapshot carries all `keys` accounts, so restoring a long chain costs
/// real work — the cost the warm standby amortizes away.
struct Ledger {
    accounts: CkptMap<String, u64>,
    seq: CkptCell<u64>,
}

impl Ledger {
    fn new(keys: usize) -> Self {
        let mut accounts = CkptMap::new();
        for k in 0..keys {
            accounts.insert(format!("acct-{k:06}"), 0);
        }
        Ledger {
            accounts,
            seq: CkptCell::new(0),
        }
    }
}

impl Component for Ledger {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(0), 1);
        let i = msg.as_i64().unwrap_or(0) as u64;
        let n = self.accounts.len() as u64;
        for stride in [1u64, 7, 13] {
            let key = format!("acct-{:06}", (i * stride) % n);
            let v = self.accounts.get(&key).copied().unwrap_or(0);
            self.accounts.insert(key, v + 1);
        }
        self.seq.update(|s| *s += 1);
        ctx.send(PortId::new(1), Value::I64(*self.seq.get() as i64));
    }

    fn checkpoint(&mut self, _mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        // Always a full capture — the §II.F.2 "large structure" checkpointed
        // wholesale, with no incremental journal. Every chain member carries
        // the entire ledger, so a cold restore pays the whole chain while
        // the standby absorbed all but the tail before the failure.
        let mut snap = Snapshot::new(vt);
        if let Some(chunk) = self.accounts.take_chunk(CheckpointMode::Full) {
            snap.put("accounts", chunk);
        }
        if let Some(chunk) = self.seq.take_chunk(CheckpointMode::Full) {
            snap.put("seq", chunk);
        }
        snap
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        for (field, chunk) in snapshot.iter() {
            let result = match field {
                "accounts" => self.accounts.apply_chunk(chunk),
                "seq" => self.seq.apply_chunk(chunk),
                other => {
                    return Err(RestoreError::UnknownField {
                        field: other.to_owned(),
                    })
                }
            };
            result.map_err(|source| RestoreError::Corrupt {
                field: field.to_owned(),
                source,
            })?;
        }
        Ok(())
    }
}

fn ledger_app(keys: usize) -> AppSpec {
    let mut b = AppSpec::builder();
    let ledger = b.component(
        "Ledger",
        Arc::new(move || Box::new(Ledger::new(keys)) as Box<dyn Component>),
    );
    b.wire_in("requests", ledger, PortId::new(0));
    b.wire_out(ledger, PortId::new(1), "acks");
    b.build().expect("ledger topology is valid")
}

struct Scenario {
    keys: usize,
    rounds: usize,
    msgs_per_round: usize,
    burst: usize,
}

/// Runs one failover scenario and returns per-round kill→first-fresh-output
/// latencies (seconds). `standby` decides warm vs cold.
fn run(s: &Scenario, standby: Option<StandbyConfig>) -> Vec<f64> {
    let warm = standby.is_some();
    let spec = ledger_app(s.keys);
    let mut config = ClusterConfig::logical_time()
        .with_checkpoint_every(1)
        .with_estimator(
            spec.component_by_name("Ledger").expect("ledger").id(),
            EstimatorSpec::per_iteration(BlockId(0), 10_000),
        );
    if let Some(sb) = standby {
        config = config.with_warm_standby(sb);
    }
    let placement = Placement::single_engine(&spec);
    let engine = EngineId::new(0);
    let mut cluster = Cluster::deploy(spec, placement, config).expect("deploys");

    let mut latencies = Vec::with_capacity(s.rounds);
    let mut sent = 0usize;
    let mut outputs: Vec<OutputRecord> = Vec::new();
    for round in 0..s.rounds {
        // Steady traffic: the chain grows one member per message.
        for _ in 0..s.msgs_per_round {
            cluster
                .injector("requests")
                .expect("injector")
                .send(Value::I64(sent as i64));
            sent += 1;
        }
        // Drain until the engine has chewed through the round (dedup later;
        // stutter makes raw counts over-complete, never under-complete).
        await_distinct(&cluster, &mut outputs, sent, "round ingest");
        if warm {
            // Let the standby absorb everything outside the one-tick
            // horizon. `pending <= 1` alone is not enough — it holds
            // vacuously while checkpoints are still in flight on the
            // control plane — so also require the applied count to go
            // quiet for several apply intervals.
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut last_applied = u64::MAX;
            let mut stable = 0;
            loop {
                if let Some(st) = cluster.standby_status(engine) {
                    assert!(!st.demoted, "bench stream must never diverge");
                    if st.anchored && st.pending <= 1 && st.applied == last_applied {
                        stable += 1;
                        if stable >= 8 {
                            break;
                        }
                    } else {
                        stable = 0;
                    }
                    last_applied = st.applied;
                }
                assert!(
                    Instant::now() < deadline,
                    "standby failed to catch up in round {round}: {:?}",
                    cluster.standby_status(engine)
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        // The measured drill: fail-stop, a burst lands in the log while the
        // engine is dead, promote, wait for the first post-recovery output.
        let t0 = Instant::now();
        cluster.kill(engine);
        for _ in 0..s.burst {
            cluster
                .injector("requests")
                .expect("injector")
                .send(Value::I64(sent as i64));
            sent += 1;
        }
        cluster
            .promote(engine)
            .expect("promotion of a killed engine succeeds");
        loop {
            let fresh = cluster.take_outputs();
            if !fresh.is_empty() {
                outputs.extend(fresh);
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "recovery stalled in round {round} ({} mode)",
                if warm { "warm" } else { "cold" }
            );
            std::thread::yield_now();
        }
        latencies.push(t0.elapsed().as_secs_f64());
        await_distinct(&cluster, &mut outputs, sent, "post-recovery burst");
    }
    // Every round must have ridden the intended path, or the comparison
    // is meaningless.
    let snap = cluster.obs_snapshot();
    if warm {
        assert_eq!(
            snap.warm_promotions as usize, s.rounds,
            "every warm-mode round must promote from the standby"
        );
    } else {
        assert_eq!(
            snap.cold_promotions as usize, s.rounds,
            "every cold-mode round must replay the full chain"
        );
    }
    assert_eq!(snap.standby_demotions, 0, "bench stream must never diverge");
    assert_eq!(snap.divergences_detected, 0);
    cluster.finish_inputs();
    outputs.extend(cluster.shutdown());

    // Transparency check: after stutter dedup the ledger acked every
    // request exactly once, in sequence — replay reproduced the run.
    let mut seqs: Vec<i64> = Cluster::dedup_outputs(outputs)
        .iter()
        .map(|o| o.payload.as_i64().expect("ack seq"))
        .collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (1..=sent as i64).collect::<Vec<_>>(),
        "{} failover must stay transparent",
        if warm { "warm" } else { "cold" }
    );
    latencies
}

/// Polls outputs until `expected` *distinct* sequence numbers arrived
/// (replay stutter duplicates, it never skips).
fn await_distinct(cluster: &Cluster, outputs: &mut Vec<OutputRecord>, expected: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        outputs.extend(cluster.take_outputs());
        let mut seqs: Vec<i64> = outputs.iter().filter_map(|o| o.payload.as_i64()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        if seqs.len() >= expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {} of {expected} acks",
            seqs.len()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let quick = quick_mode();
    // Quick keeps the full scenario shape (chain length and state size set
    // the cold/warm ratio) and trims only the round count, so its speedup
    // is comparable to the committed full-run baseline.
    let s = Scenario {
        keys: 20_000,
        rounds: if quick { 3 } else { 15 },
        msgs_per_round: 96,
        burst: 4,
    };
    let horizon = StandbyConfig {
        trailing_horizon_ticks: 1,
        apply_interval: Duration::from_millis(1),
    };
    println!(
        "Failover drill: {} rounds x {} msgs, {} ledger keys, burst {} while dead",
        s.rounds, s.msgs_per_round, s.keys, s.burst
    );

    let mut cold = run(&s, None);
    let mut warm = run(&s, Some(horizon));
    cold.sort_by(f64::total_cmp);
    warm.sort_by(f64::total_cmp);

    let ms = 1_000.0;
    let cold_p50 = percentile(&cold, 0.50) * ms;
    let cold_p99 = percentile(&cold, 0.99) * ms;
    let warm_p50 = percentile(&warm, 0.50) * ms;
    let warm_p99 = percentile(&warm, 0.99) * ms;
    let speedup_p50 = cold_p50 / warm_p50;
    let speedup_p99 = cold_p99 / warm_p99;

    print_table(
        "Kill → first fresh output (ms)",
        &["mode", "p50", "p99"],
        &[
            vec![
                "cold (full-chain replay)".into(),
                format!("{cold_p50:.2}"),
                format!("{cold_p99:.2}"),
            ],
            vec![
                "warm (standby tail replay)".into(),
                format!("{warm_p50:.2}"),
                format!("{warm_p99:.2}"),
            ],
            vec![
                "cold/warm speedup".into(),
                format!("{speedup_p50:.1}x"),
                format!("{speedup_p99:.1}x"),
            ],
        ],
    );

    // Baseline comparison BEFORE overwriting the file. Ratios only.
    let baseline = std::fs::read_to_string("BENCH_failover.json").ok();
    let mut regressions = Vec::new();
    if let Some(base) = &baseline {
        if let Some(was) = json_f64(base, "speedup_p99") {
            if speedup_p99 < was / 2.0 {
                regressions.push(format!(
                    "speedup_p99: {speedup_p99:.1}x vs committed {was:.1}x"
                ));
            }
        }
    } else {
        eprintln!("no committed BENCH_failover.json — first run, nothing to compare");
    }

    // Quick mode gates against the committed baseline but never refreshes
    // it — only a full run's numbers are worth committing.
    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"failover\",\n  \"mode\": \"full\",\n  \
             \"rounds\": {},\n  \"msgs_per_round\": {},\n  \
             \"ledger_keys\": {},\n  \"burst_while_dead\": {},\n  \
             \"trailing_horizon_ticks\": 1,\n  \
             \"cold_p50_ms\": {cold_p50:.2},\n  \"cold_p99_ms\": {cold_p99:.2},\n  \
             \"warm_p50_ms\": {warm_p50:.2},\n  \"warm_p99_ms\": {warm_p99:.2},\n  \
             \"speedup_p50\": {speedup_p50:.1},\n  \"speedup_p99\": {speedup_p99:.1}\n}}\n",
            s.rounds, s.msgs_per_round, s.keys, s.burst,
        );
        std::fs::write("BENCH_failover.json", &json).expect("write BENCH_failover.json");
        println!("wrote BENCH_failover.json");
    }

    if quick {
        tart_bench::write_quick_ratios(
            "failover",
            &[("speedup_p50", speedup_p50), ("speedup_p99", speedup_p99)],
        );
        assert!(
            speedup_p99 >= 5.0,
            "warm p99 must be ≥5x faster than cold, got {speedup_p99:.1}x \
             (cold {cold_p99:.2}ms, warm {warm_p99:.2}ms)"
        );
        assert!(
            regressions.is_empty(),
            ">2x regression vs committed baseline: {regressions:?}"
        );
        println!("quick gates passed (warm p99 ≥5x under cold, no >2x baseline regression)");
    }
}

/// Pulls `"key": <number>` out of a flat JSON document. Good enough for
/// the baseline file this binary itself writes.
fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
