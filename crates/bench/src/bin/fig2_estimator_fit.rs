//! Fig 2 — service-time distribution and linear-regression estimator fit.
//!
//! The paper executed Code Body 1 ten thousand times with uniform-random
//! iteration counts between 1 and 19 (each measurement looping 300× for
//! clock resolution), then fitted τ = β·ξ₁ through the origin, obtaining
//! β = 61.827 µs/iteration with R² = 0.9154, right-skewed residuals, and
//! near-zero residual–iteration correlation (§II.H).
//!
//! This harness repeats the experiment on the *actual Rust word-count
//! component*: it times `WordCountSender::on_message` on this host, fits the
//! same regression, and reports the same diagnostics. Absolute numbers
//! differ from a 2009 ThinkPad; the shape (high R², right skew, ~zero
//! correlation) is the reproduced result.

// Measurement harness (tart-lint tier: Exempt): its entire purpose is wall-clock timing.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use tart_bench::{print_table, quick_mode};
use tart_estimator::{Calibrator, Estimator};
use tart_model::reference::{WordCountSender, IN_PORT, SENDER_LOOP_BLOCK};
use tart_model::{Component, Features, RecordingCtx, Value};
use tart_stats::{DetRng, Histogram, UniformInt};
use tart_vtime::VirtualTime;

fn random_sentence(rng: &mut DetRng, words: u64) -> Value {
    // Code Body 1 takes `String[] sent` — the pre-split list form — so the
    // timed work is the loop body (hash-map get/put per word), not sentence
    // parsing. A vocabulary of ~1000 realistic-length words keeps the map
    // growing and the per-word cost dominant.
    let sentence: Vec<Value> = (0..words)
        .map(|_| Value::from(format!("vocabulary-word-{:04}", rng.gen_range_u64(0, 999))))
        .collect();
    Value::List(sentence)
}

fn main() {
    let quick = quick_mode();
    let samples = if quick { 1_000 } else { 10_000 };
    let inner_reps = if quick { 30 } else { 300 }; // paper footnote 3
    println!("Fig 2 reproduction: {samples} measurements, {inner_reps} inner reps each");

    let mut rng = DetRng::seed_from(2009);
    let iters = UniformInt::new(1, 19);
    let mut calibrator = Calibrator::new(500.min(samples));
    let mut per_iteration_means = vec![(0u64, 0.0f64); 20];

    // Stationarity: pre-insert the whole vocabulary so the hash map never
    // grows (and never rehashes) during measurement, and warm the caches.
    // (The 2009 study's 61 µs iterations dwarfed OS jitter; at this host's
    // sub-µs iteration cost, drift would otherwise dominate the residuals.)
    let mut component = WordCountSender::new();
    {
        let everything: Vec<Value> = (0..1_000)
            .map(|i| Value::from(format!("vocabulary-word-{i:04}")))
            .collect();
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        for _ in 0..20 {
            component.on_message(IN_PORT, &Value::List(everything.clone()), &mut ctx);
        }
    }

    for _ in 0..samples {
        let k = iters.sample_int(&mut rng);
        let sentence = random_sentence(&mut rng, k);
        // Median of 5 batches suppresses scheduler outliers (a deliberate
        // deviation from the paper's raw sampling; see DESIGN.md §3).
        let batch = (inner_reps / 5).max(1);
        let mut batch_ns: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
                    component.on_message(IN_PORT, &sentence, &mut ctx);
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        batch_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let per_call_ns = batch_ns[2].max(1.0);
        calibrator.add_sample(Features::single(SENDER_LOOP_BLOCK, k), per_call_ns as u64);
        per_iteration_means[k as usize].0 += 1;
        per_iteration_means[k as usize].1 += per_call_ns / 1_000.0; // µs
    }

    let (spec, fit) = calibrator
        .fit_through_origin(SENDER_LOOP_BLOCK)
        .expect("enough samples collected");
    let (_affine_spec, affine) = calibrator
        .fit_affine(SENDER_LOOP_BLOCK)
        .expect("enough samples collected");
    let coeff_us = spec
        .estimate(&Features::single(SENDER_LOOP_BLOCK, 1))
        .as_ticks() as f64
        / 1_000.0;

    let rows: Vec<Vec<String>> = (1..=19)
        .filter(|&k| per_iteration_means[k].0 > 0)
        .map(|k| {
            let (n, sum) = per_iteration_means[k];
            vec![
                k.to_string(),
                n.to_string(),
                format!("{:.3}", sum / n as f64),
                format!("{:.3}", coeff_us * k as f64),
            ]
        })
        .collect();
    print_table(
        "Fig 2 — service time vs iterations (measured on this host)",
        &["iterations", "samples", "mean measured µs", "fit µs"],
        &rows,
    );

    print_table(
        "Fig 2 — regression diagnostics (paper: β=61.827 µs/iter, R²=0.9154)",
        &[
            "fit",
            "β₀ (µs)",
            "β₁ (µs/iter)",
            "R²",
            "residual skew",
            "resid↔iter corr",
        ],
        &[
            vec![
                "through-origin (Eq. 2)".into(),
                "0".into(),
                format!("{coeff_us:.3}"),
                format!("{:.4}", fit.r_squared),
                format!("{:+.2}", fit.residuals.skewness()),
                format!("{:+.4}", fit.residual_correlation),
            ],
            vec![
                "affine (Eq. 1)".into(),
                format!("{:.3}", affine.intercept / 1_000.0),
                format!("{:.3}", affine.slope / 1_000.0),
                format!("{:.4}", affine.r_squared),
                format!("{:+.2}", affine.residuals.skewness()),
                format!("{:+.4}", affine.residual_correlation),
            ],
        ],
    );

    // Service-time histogram, as in the figure's scatter.
    let max_us = coeff_us * 19.0 * 2.0;
    let mut hist = Histogram::new(0.0, max_us, 20);
    let mut rng2 = DetRng::seed_from(7);
    for _ in 0..samples.min(2_000) {
        let k = iters.sample_int(&mut rng2);
        let sentence = random_sentence(&mut rng2, k);
        let start = Instant::now();
        for _ in 0..inner_reps {
            let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
            component.on_message(IN_PORT, &sentence, &mut ctx);
        }
        hist.record(start.elapsed().as_nanos() as f64 / inner_reps as f64 / 1_000.0);
    }
    println!("\nService-time distribution (µs/call):\n{}", hist.render());

    // The reproduced claims, asserted so CI catches regressions. The
    // affine fit absorbs this host's fixed per-call cost (the paper's
    // ThinkPad had negligible overhead relative to 61 µs iterations).
    let best_r2 = fit.r_squared.max(affine.r_squared);
    assert!(
        best_r2 > 0.55,
        "linear model should explain the bulk of variance, got {best_r2}"
    );
    assert!(
        affine.residual_correlation.abs() < 0.15,
        "good linear fit leaves no residual trend, got {}",
        affine.residual_correlation
    );
    println!(
        "\nShape check PASSED: linear fit R²={best_r2:.3}, residual skew {:+.2}, corr {:+.3}",
        affine.residuals.skewness(),
        affine.residual_correlation
    );
}
