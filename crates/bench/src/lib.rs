//! Shared harness for the TART reproduction's figure and table binaries.
//!
//! Each figure/table of the paper's evaluation (§III) has a binary in
//! `src/bin/` that regenerates it; this library carries what they share:
//! table rendering, the Fig 5 relay application, and the live measurement
//! loop that times requests through a real [`Cluster`].
//!
//! | Paper artifact | Binary |
//! |----------------|--------|
//! | Fig 2 (estimator fit) | `fig2_estimator_fit` |
//! | Fig 3 (latency vs variability) | `fig3_variability` |
//! | §III.A throughput text | `tbl_saturation` |
//! | §III.A dumb-estimator text | `tbl_dumb_estimator` |
//! | Fig 4 (estimator sensitivity) | `fig4_estimator_sensitivity` |
//! | Fig 5 (real two-engine run) | `fig5_distributed` |
//! | Recovery correctness (§II.F) | `tbl_recovery` |
//! | Silence-policy ablation (§II.G.3) | `ablation_silence` |
//! | Checkpoint-interval ablation (§II.F.2) | `ablation_checkpoint` |
//!
//! Every binary accepts `--quick` for a fast smoke run with reduced
//! parameters (used by CI); defaults reproduce the paper's scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Measurement harness (tart-lint tier: Exempt): its entire purpose is wall-clock timing.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tart_engine::{Cluster, ClusterConfig, Placement};
use tart_model::{AppSpec, BlockId, CheckpointMode, Component, Ctx, RestoreError, Snapshot, Value};
use tart_vtime::{EngineId, PortId, VirtualTime};

/// Returns `true` if `--quick` was passed (reduced-scale smoke run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Pulls `"key": <number>` out of a flat JSON document — good enough for
/// the committed `BENCH_*.json` baselines the bench binaries themselves
/// write, which is all the quick-mode ratio gates ever parse.
pub fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Writes `BENCH_<bench>.quick.json` with the ratios a quick run measured,
/// so CI can tabulate measured-vs-committed in the job step summary (the
/// `bench-summary` composite action greps these keys out of both files).
/// Quick files are never committed — the committed `BENCH_<bench>.json`
/// baseline only ever comes from a full run.
pub fn write_quick_ratios(bench: &str, ratios: &[(&str, f64)]) {
    let body: Vec<String> = ratios
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.2}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"mode\": \"quick\",\n{}\n}}\n",
        body.join(",\n")
    );
    let path = format!("BENCH_{bench}.quick.json");
    std::fs::write(&path, json).expect("write quick ratio report");
    println!("wrote {path}");
}

/// Prints a Markdown-style table: header row, separator, then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// A relay merger for the Fig 5 measurement: forwards each request's id so
/// the harness can match outputs back to send times ("constant-time
/// services", §III.C).
#[derive(Debug, Default)]
pub struct RelayMerger {
    forwarded: u64,
}

impl Component for RelayMerger {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(0), 1);
        self.forwarded += 1;
        ctx.send(PortId::new(1), msg.clone());
    }

    fn checkpoint(&mut self, _mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        Snapshot::new(vt)
    }

    fn restore(&mut self, _snapshot: &Snapshot) -> Result<(), RestoreError> {
        Ok(())
    }
}

/// Builds the Fig 5 application: two constant-time relay "senders" fanning
/// into a relay merger, all forwarding the request id.
///
/// # Panics
///
/// Panics if the topology fails validation (it cannot).
pub fn fig5_app() -> AppSpec {
    use tart_model::reference::ConstantService;
    let mut b = AppSpec::builder();
    let merger = b.component(
        "Merger",
        Arc::new(|| Box::new(RelayMerger::default()) as Box<dyn Component>),
    );
    let s1 = b.component(
        "Service1",
        Arc::new(|| Box::new(ConstantService::new()) as Box<dyn Component>),
    );
    let s2 = b.component(
        "Service2",
        Arc::new(|| Box::new(ConstantService::new()) as Box<dyn Component>),
    );
    b.wire_in("client1", s1, PortId::new(0));
    b.wire_in("client2", s2, PortId::new(0));
    b.wire(s1, PortId::new(1), merger, PortId::new(0));
    b.wire(s2, PortId::new(1), merger, PortId::new(0));
    b.wire_out(merger, PortId::new(1), "consumer");
    b.build().expect("fig5 topology is valid")
}

/// The two-machine placement of §III.C: "the Sender components were on one
/// engine, the Merger on a second."
pub fn fig5_placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    p.assign(
        spec.component_by_name("Service1").unwrap().id(),
        EngineId::new(0),
    );
    p.assign(
        spec.component_by_name("Service2").unwrap().id(),
        EngineId::new(0),
    );
    p.assign(
        spec.component_by_name("Merger").unwrap().id(),
        EngineId::new(1),
    );
    p
}

/// Result of one live Fig 5 run: per-request latencies in the order the
/// requests were sent.
#[derive(Clone, Debug)]
pub struct LiveRun {
    /// Per-request latency, microseconds.
    pub latencies_us: Vec<f64>,
}

impl LiveRun {
    /// Mean latency, µs.
    pub fn mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64
    }

    /// Nearest-rank percentile, µs.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn percentile_us(&self, p: f64) -> f64 {
        assert!(!self.latencies_us.is_empty(), "empty run");
        let mut v = self.latencies_us.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let rank = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[rank]
    }

    /// Averages over consecutive buckets of `size` requests — the series
    /// shape Fig 5 plots per web request.
    pub fn bucket_means_us(&self, size: usize) -> Vec<f64> {
        self.latencies_us
            .chunks(size.max(1))
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    }
}

/// Drives `requests` alternating web requests through a live cluster built
/// from `config`, measuring real end-to-end latency per request.
///
/// A heartbeat thread promises external silence every `heartbeat_us`
/// microseconds, standing in for the real-time silence tracking a TART
/// scheduler performs for idle external producers.
///
/// # Panics
///
/// Panics if the cluster fails to deploy or the run stalls for 30 seconds.
pub fn run_fig5(
    config: ClusterConfig,
    requests: usize,
    gap: Duration,
    heartbeat_us: u64,
) -> LiveRun {
    let spec = fig5_app();
    let placement = fig5_placement(&spec);
    run_live(spec, placement, config, requests, gap, heartbeat_us)
}

/// Generalized live measurement: drives `requests` id-stamped messages
/// through any relay topology whose external output echoes the request id,
/// alternating across all external producers, and measures real end-to-end
/// latency per request.
///
/// # Panics
///
/// Panics if the cluster fails to deploy or the run stalls for 30 seconds.
pub fn run_live(
    spec: AppSpec,
    placement: Placement,
    config: ClusterConfig,
    requests: usize,
    gap: Duration,
    heartbeat_us: u64,
) -> LiveRun {
    let clients: Vec<String> = spec
        .external_inputs()
        .iter()
        .map(|w| match w.from() {
            tart_model::Endpoint::External { name } => name.clone(),
            _ => unreachable!("external inputs start externally"),
        })
        .collect();
    let cluster = Cluster::deploy(spec, placement, config).expect("live topology deploys");

    // Heartbeat thread: idle external producers promise silence.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_cluster_inj: Vec<_> = clients
        .iter()
        .map(|n| cluster.injector(n).expect("injector").clone())
        .collect();
    let heartbeat = std::thread::spawn(move || {
        while !hb_stop.load(Ordering::Relaxed) {
            for inj in &hb_cluster_inj {
                inj.heartbeat();
            }
            std::thread::sleep(Duration::from_micros(heartbeat_us));
        }
    });

    let mut send_times: Vec<Instant> = Vec::with_capacity(requests);
    let mut latencies = vec![f64::NAN; requests];
    let mut received = 0usize;
    let deadline_slack = Duration::from_secs(30);
    let mut last_progress = Instant::now();

    for i in 0..requests {
        let client = &clients[i % clients.len()];
        send_times.push(Instant::now());
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::I64(i as i64));
        // Collect whatever has come back.
        for out in cluster.take_outputs() {
            if let Some(id) = out.payload.as_i64() {
                let id = id as usize;
                if id < requests && latencies[id].is_nan() {
                    latencies[id] = send_times[id].elapsed().as_nanos() as f64 / 1_000.0;
                    received += 1;
                    last_progress = Instant::now();
                }
            }
        }
        std::thread::sleep(gap);
    }
    cluster.finish_inputs();
    // Collect the bulk of the tail. Under lazy propagation the final
    // message on each wire cannot clear pessimism until end-of-stream, so
    // this wait is bounded and the graceful drain below resolves the rest.
    let tail_deadline = Instant::now() + Duration::from_secs(2);
    while received < requests && Instant::now() < tail_deadline {
        for out in cluster.take_outputs() {
            if let Some(id) = out.payload.as_i64() {
                let id = id as usize;
                if id < requests && latencies[id].is_nan() {
                    latencies[id] = send_times[id].elapsed().as_nanos() as f64 / 1_000.0;
                    received += 1;
                    last_progress = Instant::now();
                }
            }
        }
        assert!(
            last_progress.elapsed() < deadline_slack,
            "fig5 run stalled with {received}/{requests} responses"
        );
        std::thread::sleep(Duration::from_micros(50));
    }
    stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();
    // Drain: end-of-stream silence releases anything still held.
    for out in cluster.shutdown() {
        if let Some(id) = out.payload.as_i64() {
            let id = id as usize;
            if id < requests && latencies[id].is_nan() {
                latencies[id] = send_times[id].elapsed().as_nanos() as f64 / 1_000.0;
                received += 1;
            }
        }
    }
    assert_eq!(
        received, requests,
        "every request must eventually be answered"
    );
    LiveRun {
        latencies_us: latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_model::RecordingCtx;

    #[test]
    fn relay_merger_forwards_ids() {
        let mut m = RelayMerger::default();
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        m.on_message(PortId::new(0), &Value::I64(42), &mut ctx);
        assert_eq!(ctx.sends(), &[(PortId::new(1), Value::I64(42))]);
        let snap = m.checkpoint(CheckpointMode::Full, VirtualTime::ZERO);
        assert!(m.restore(&snap).is_ok());
    }

    #[test]
    fn fig5_topology_shape() {
        let spec = fig5_app();
        assert_eq!(spec.components().len(), 3);
        assert_eq!(spec.external_inputs().len(), 2);
        assert_eq!(spec.external_outputs().len(), 1);
        let p = fig5_placement(&spec);
        assert!(p.covers(&spec));
        assert_eq!(p.engines().len(), 2);
    }

    #[test]
    fn live_run_statistics() {
        let run = LiveRun {
            latencies_us: vec![100.0, 200.0, 300.0, 400.0],
        };
        assert_eq!(run.mean_us(), 250.0);
        assert_eq!(run.percentile_us(0.0), 100.0);
        assert_eq!(run.percentile_us(100.0), 400.0);
        assert_eq!(run.bucket_means_us(2), vec![150.0, 350.0]);
        assert_eq!(
            LiveRun {
                latencies_us: vec![]
            }
            .mean_us(),
            0.0
        );
    }

    #[test]
    fn table_rendering_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
