//! Criterion microbenchmarks — incremental vs full checkpoint cost
//! (§II.F.2's motivation for journaled state containers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tart_model::{CheckpointMode, CkptMap};

fn loaded_map(entries: usize) -> CkptMap<String, u64> {
    let mut m = CkptMap::new();
    for i in 0..entries {
        m.insert(format!("word{i}"), i as u64);
    }
    // Settle the journal so subsequent measurements isolate the deltas.
    let _ = m.take_chunk(CheckpointMode::Full);
    m
}

/// Full capture of an N-entry table.
fn bench_full_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_full");
    for entries in [100usize, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let mut m = loaded_map(entries);
                b.iter(|| std::hint::black_box(m.take_chunk(CheckpointMode::Full)));
            },
        );
    }
    group.finish();
}

/// Incremental capture after touching only 10 keys of an N-entry table —
/// the case incremental checkpointing exists for.
fn bench_incremental_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_incremental_10_dirty");
    for entries in [100usize, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let mut m = loaded_map(entries);
                b.iter(|| {
                    for i in 0..10 {
                        m.insert(format!("word{i}"), 99);
                    }
                    std::hint::black_box(m.take_chunk(CheckpointMode::Incremental))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_full_checkpoint, bench_incremental_checkpoint
}
criterion_main!(benches);
