//! Criterion benchmark — end-to-end simulation cost per silence policy.
//!
//! Times a complete §III.A simulation run (1000 messages/sender) under each
//! propagation strategy, measuring the simulator's wall-clock cost, which
//! tracks total protocol traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tart_silence::SilencePolicy;
use tart_sim::{ExecMode, FanInSim, SimConfig};
use tart_vtime::VirtualDuration;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_run_1000_msgs");
    let policies: Vec<(&str, ExecMode, SilencePolicy)> = vec![
        ("nondet", ExecMode::NonDeterministic, SilencePolicy::Lazy),
        ("lazy", ExecMode::Deterministic, SilencePolicy::Lazy),
        (
            "curiosity",
            ExecMode::Deterministic,
            SilencePolicy::Curiosity,
        ),
        (
            "aggressive",
            ExecMode::Deterministic,
            SilencePolicy::Aggressive {
                max_quiet: VirtualDuration::from_micros(200),
            },
        ),
    ];
    for (name, mode, policy) in policies {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(mode, policy),
            |b, &(mode, policy)| {
                b.iter(|| {
                    let mut cfg = SimConfig::paper_iii_a();
                    cfg.messages_per_sender = 1_000;
                    cfg.mode = mode;
                    cfg.silence = policy;
                    std::hint::black_box(FanInSim::new(cfg).run().completed)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_policies
}
criterion_main!(benches);
