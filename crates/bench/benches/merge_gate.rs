//! Criterion microbenchmarks for the deterministic merge gate — the
//! per-message cost of TART's scheduling decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tart_sched::{GateDecision, MergeGate};
use tart_vtime::{VirtualTime, WireId};

fn vt(t: u64) -> VirtualTime {
    VirtualTime::from_ticks(t)
}

/// Push + deliver one message through a gate with `fan_in` input wires, all
/// others silent — the steady-state fast path.
fn bench_gate_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_gate_deliver");
    for fan_in in [1u32, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(fan_in), &fan_in, |b, &n| {
            let mut gate: MergeGate<u64> = MergeGate::new((0..n).map(WireId::new));
            let mut t = 0u64;
            b.iter(|| {
                t += 10;
                for w in 0..n {
                    gate.promise_silence(WireId::new(w), vt(t - 1));
                }
                gate.push_message(WireId::new(0), vt(t), t)
                    .expect("monotone");
                for w in 1..n {
                    gate.promise_silence(WireId::new(w), vt(t));
                }
                match gate.try_next() {
                    GateDecision::Deliver { msg, .. } => std::hint::black_box(msg),
                    other => panic!("expected delivery, got {other:?}"),
                }
            });
        });
    }
    group.finish();
}

/// The blocked path: how expensive is discovering a pessimism delay?
fn bench_gate_blocked_poll(c: &mut Criterion) {
    c.bench_function("merge_gate_blocked_poll_8_wires", |b| {
        let mut gate: MergeGate<u64> = MergeGate::new((0..8).map(WireId::new));
        gate.push_message(WireId::new(0), vt(1_000), 1)
            .expect("monotone");
        b.iter(|| std::hint::black_box(gate.try_next()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gate_throughput, bench_gate_blocked_poll
}
criterion_main!(benches);
