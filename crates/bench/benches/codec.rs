//! Criterion microbenchmarks for the canonical codec — the cost of
//! serializing checkpoints and logged messages.

// Measurement harness (tart-lint tier: Exempt): its entire purpose is wall-clock timing.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tart_codec::{Decode, Encode};
use tart_model::Value;

fn sample_map(entries: usize) -> HashMap<String, u64> {
    (0..entries)
        .map(|i| (format!("word{i}"), i as u64))
        .collect()
}

fn sample_value() -> Value {
    Value::map([
        ("seq", Value::I64(42)),
        ("total", Value::I64(1_000_000)),
        (
            "words",
            Value::List(vec![Value::from("the"), Value::from("cat")]),
        ),
    ])
}

fn bench_map_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_hashmap_encode_canonical");
    for entries in [10usize, 100, 1_000] {
        let map = sample_map(entries);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &map, |b, m| {
            b.iter(|| std::hint::black_box(m.to_bytes()));
        });
    }
    group.finish();
}

fn bench_value_round_trip(c: &mut Criterion) {
    let v = sample_value();
    let bytes = v.to_bytes();
    c.bench_function("codec_value_encode", |b| {
        b.iter(|| std::hint::black_box(v.to_bytes()))
    });
    c.bench_function("codec_value_decode", |b| {
        b.iter(|| std::hint::black_box(Value::from_bytes(&bytes).expect("valid")))
    });
}

fn bench_crc(c: &mut Criterion) {
    let payload = vec![0xabu8; 4096];
    c.bench_function("crc32_4k", |b| {
        b.iter(|| std::hint::black_box(tart_codec::crc32(&payload)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_map_encode, bench_value_round_trip, bench_crc
}
criterion_main!(benches);
