//! TCP transport: the multi-host building block.
//!
//! The paper's §III.C measurement ran on two physical machines. The
//! in-process [`Router`] covers single-host deployments and
//! tests; this module extends it across hosts: every [`Envelope`] is
//! [`Encode`]-stable, so a frame is just a length-prefixed, CRC-protected
//! `(target engine, envelope)` pair on a TCP stream (which is itself
//! reliable and FIFO, matching the §II.A link model; loss at *failure* is
//! still covered by the replay protocol).
//!
//! Topology: each process runs a [`TcpInbound`] acceptor that delivers
//! arriving frames into its local router, and registers a
//! [`remote_engine`] proxy in that router for every engine hosted
//! elsewhere. Wires between hosts then work exactly like local ones.
//!
//! The outbound proxy is *self-healing*: when the connection breaks, its
//! writer reconnects with exponential backoff and jitter (see
//! [`ReconnectPolicy`]) while counting — never hiding — the frames lost in
//! the gap. Lost frames are exactly in-transit loss under the §II.A
//! failure model, so the replay protocol restores the stream once the link
//! heals; [`RemoteLink::health`] exposes the drop/reconnect counters so
//! operators can see it happening.
//!
//! # Example
//!
//! ```no_run
//! use tart_engine::net::{remote_engine, TcpInbound};
//! use tart_engine::{FaultPlan, Router};
//! use tart_vtime::EngineId;
//!
//! // Host B: accept frames for the engines it hosts.
//! let router_b = Router::new(FaultPlan::none());
//! let inbound = TcpInbound::listen("0.0.0.0:7400", router_b.clone())?;
//!
//! // Host A: route engine 1's traffic over TCP to host B.
//! let router_a = Router::new(FaultPlan::none());
//! let link = remote_engine(&router_a, EngineId::new(1), &format!("hostb:{}", inbound.port()))?;
//! assert!(link.health().connected);
//! # Ok::<(), std::io::Error>(())
//! ```

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core. Each wall-clock site also carries a line-scoped `tart-lint: allow`.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use tart_codec::{crc32, Decode, Encode};
use tart_stats::DetRng;
use tart_vtime::EngineId;

use crate::{Envelope, Router};

/// Maximum accepted frame body, guarding against corrupt length prefixes.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// How long the writer thread blocks on its queue between housekeeping
/// passes (reconnect attempts, stop-flag checks).
const WRITER_TICK: Duration = Duration::from_millis(10);

/// Writes one `(target, envelope)` frame:
/// `u32 BE body length | u32 BE crc32(body) | body`.
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_frame(w: &mut impl Write, target: EngineId, env: &Envelope) -> io::Result<()> {
    let body = (target, env.clone()).to_bytes();
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(&body).to_be_bytes());
    frame.extend_from_slice(&body);
    w.write_all(&frame)
}

/// Reads one frame; `Ok(None)` signals a clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns `InvalidData` on CRC mismatch, oversized length, or a malformed
/// body; `UnexpectedEof` on a mid-frame disconnect; and propagates other
/// I/O failures.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(EngineId, Envelope)>> {
    let mut header = [0u8; 8];
    // Distinguish clean EOF (no bytes) from a torn header.
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut header[1..])?,
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    if crc32(&body) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    <(EngineId, Envelope)>::from_bytes(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Accepts TCP connections and feeds every arriving frame into the local
/// router — the receive half of a multi-host deployment.
pub struct TcpInbound {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpInbound {
    /// Binds `addr` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn listen(addr: impl ToSocketAddrs, router: Router) -> io::Result<TcpInbound> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop_accept = Arc::clone(&stop);
        let streams_accept = Arc::clone(&streams);
        let accept_thread = std::thread::Builder::new()
            .name("tart-tcp-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop_accept.load(Ordering::Relaxed) {
                    // Reap finished connection threads so a long-lived
                    // acceptor doesn't accumulate handles forever.
                    conns.retain(|h| !h.is_finished());
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            if let Ok(clone) = stream.try_clone() {
                                streams_accept.lock().push(clone);
                            }
                            let router = router.clone();
                            let handle = std::thread::Builder::new()
                                .name("tart-tcp-conn".into())
                                .spawn(move || {
                                    let mut stream = stream;
                                    loop {
                                        match read_frame(&mut stream) {
                                            Ok(Some((target, env))) => router.send(target, env),
                                            Ok(None) | Err(_) => return,
                                        }
                                    }
                                })
                                .expect("spawn connection thread");
                            conns.push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                }
                // Connection threads exit when their peers disconnect.
                drop(conns);
            })
            .expect("spawn accept thread");
        Ok(TcpInbound {
            local,
            stop,
            streams,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound port (useful with a `0` bind).
    pub fn port(&self) -> u16 {
        self.local.port()
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Forcibly closes every currently-accepted connection (the listener
    /// keeps accepting new ones) — a receiver-side link sever for fault
    /// drills. Peers see a broken pipe on their next write and enter their
    /// reconnect loop.
    pub fn sever_connections(&self) {
        let mut streams = self.streams.lock();
        for s in streams.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for TcpInbound {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock connection threads stuck mid-read.
        self.sever_connections();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Backoff tuning for a [`remote_engine`] link.
#[derive(Clone, Debug)]
pub struct ReconnectPolicy {
    /// Delay before the first reconnect attempt of an outage.
    pub initial_backoff: Duration,
    /// Cap on the delay between attempts.
    pub max_backoff: Duration,
    /// Multiplier applied to the delay after each failed attempt.
    pub multiplier: f64,
    /// Fraction of each delay randomized (0.0 = none, 1.0 = the delay may
    /// double), de-synchronizing reconnect storms across links.
    pub jitter: f64,
    /// Attempts per outage before the link gives up (`0` = retry forever).
    pub max_attempts: u32,
}

impl Default for ReconnectPolicy {
    /// 50 ms → 5 s exponential (×2) with 50 % jitter, retrying forever.
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.5,
            max_attempts: 0,
        }
    }
}

/// A point-in-time view of a [`RemoteLink`]'s transport state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkHealth {
    /// Whether a TCP connection is currently established.
    pub connected: bool,
    /// Connection incarnations so far (1 after the initial connect).
    pub epoch: u64,
    /// Successful re-connections after an outage.
    pub reconnects: u64,
    /// Frames dropped because no connection was up (in-transit loss; the
    /// replay protocol recovers the stream contents).
    pub dropped_frames: u64,
    /// The writer exhausted [`ReconnectPolicy::max_attempts`] and stopped
    /// trying; frames keep being counted as dropped.
    pub gave_up: bool,
}

#[derive(Default)]
struct LinkState {
    connected: AtomicBool,
    epoch: AtomicU64,
    reconnects: AtomicU64,
    dropped_frames: AtomicU64,
    gave_up: AtomicBool,
}

/// Handle on the background writer created by [`remote_engine`]: exposes
/// link health and stops the writer (dropping the handle also stops it).
pub struct RemoteLink {
    engine: EngineId,
    stop: Arc<AtomicBool>,
    state: Arc<LinkState>,
    thread: Option<JoinHandle<()>>,
}

impl RemoteLink {
    /// The remote engine this link forwards to.
    pub fn engine(&self) -> EngineId {
        self.engine
    }

    /// A snapshot of the transport counters.
    pub fn health(&self) -> LinkHealth {
        LinkHealth {
            connected: self.state.connected.load(Ordering::Relaxed),
            epoch: self.state.epoch.load(Ordering::Relaxed),
            reconnects: self.state.reconnects.load(Ordering::Relaxed),
            dropped_frames: self.state.dropped_frames.load(Ordering::Relaxed),
            gave_up: self.state.gave_up.load(Ordering::Relaxed),
        }
    }

    /// Stops the writer thread and waits for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RemoteLink {
    fn drop(&mut self) {
        self.halt();
    }
}

impl std::fmt::Debug for RemoteLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLink")
            .field("engine", &self.engine)
            .field("health", &self.health())
            .finish()
    }
}

/// Registers `engine` in `router` as a remote engine reachable at `addr`
/// with the default [`ReconnectPolicy`]; see [`remote_engine_with`].
///
/// # Errors
///
/// Propagates the initial connection failure.
pub fn remote_engine(
    router: &Router,
    engine: EngineId,
    addr: impl ToSocketAddrs,
) -> io::Result<RemoteLink> {
    remote_engine_with(router, engine, addr, ReconnectPolicy::default())
}

/// Registers `engine` in `router` as a remote engine reachable at `addr`:
/// envelopes routed to it are forwarded over a dedicated TCP connection by
/// a background writer thread.
///
/// The initial connection is made synchronously (so a misconfigured
/// address fails fast). Afterwards the writer self-heals: on a broken
/// connection it drops queued envelopes (counting them — in-transit loss,
/// recovered by replay) while reconnecting under `policy`'s exponential
/// backoff with jitter. If `policy.max_attempts` is exhausted the link
/// gives up for good and only counts drops.
///
/// # Errors
///
/// Propagates address-resolution and initial-connection failures.
pub fn remote_engine_with(
    router: &Router,
    engine: EngineId,
    addr: impl ToSocketAddrs,
    policy: ReconnectPolicy,
) -> io::Result<RemoteLink> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        ));
    }
    let stream = TcpStream::connect(&addrs[..])?;
    stream.set_nodelay(true).ok();

    let (tx, rx) = unbounded::<Envelope>();
    router.register(engine, tx);
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(LinkState::default());
    state.connected.store(true, Ordering::Relaxed);
    state.epoch.store(1, Ordering::Relaxed);

    let stop_writer = Arc::clone(&stop);
    let state_writer = Arc::clone(&state);
    let thread = std::thread::Builder::new()
        .name(format!("tart-tcp-out-{}", engine.raw()))
        .spawn(move || {
            let mut rng = DetRng::seed_from(0x9e3779b9 ^ u64::from(engine.raw()));
            let mut stream = Some(stream);
            let mut backoff = policy.initial_backoff;
            let mut attempts: u32 = 0;
            // tart-lint: allow(WALLCLOCK) -- transport ops-plane: reconnect backoff pacing is real-time; frame contents, not arrival times, enter the log
            let mut next_attempt = Instant::now();
            loop {
                if stop_writer.load(Ordering::Relaxed) {
                    return;
                }
                match rx.recv_timeout(WRITER_TICK) {
                    Ok(env) => {
                        let mut batch = vec![env];
                        batch.extend(rx.try_iter());
                        for env in batch {
                            let wrote = match stream.as_mut() {
                                Some(s) => write_frame(s, engine, &env).is_ok(),
                                None => false,
                            };
                            if !wrote {
                                // Broken or absent connection: the frame is
                                // in-transit loss (replay recovers the
                                // stream); never exit silently.
                                state_writer.dropped_frames.fetch_add(1, Ordering::Relaxed);
                                if stream.take().is_some() {
                                    state_writer.connected.store(false, Ordering::Relaxed);
                                    backoff = policy.initial_backoff;
                                    attempts = 0;
                                    // tart-lint: allow(WALLCLOCK) -- transport ops-plane: immediate-retry scheduling after a send failure
                                    next_attempt = Instant::now()
                                        + backoff.mul_f64(1.0 + policy.jitter * rng.next_f64());
                                }
                            }
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
                let give_up = policy.max_attempts > 0 && attempts >= policy.max_attempts;
                if stream.is_none() && give_up {
                    state_writer.gave_up.store(true, Ordering::Relaxed);
                }
                // tart-lint: allow(WALLCLOCK) -- transport ops-plane: backoff deadline check
                if stream.is_none() && !give_up && Instant::now() >= next_attempt {
                    match TcpStream::connect(&addrs[..]) {
                        Ok(s) => {
                            s.set_nodelay(true).ok();
                            stream = Some(s);
                            state_writer.connected.store(true, Ordering::Relaxed);
                            state_writer.epoch.fetch_add(1, Ordering::Relaxed);
                            state_writer.reconnects.fetch_add(1, Ordering::Relaxed);
                            backoff = policy.initial_backoff;
                            attempts = 0;
                        }
                        Err(_) => {
                            attempts += 1;
                            // Jitter stretches the delay by up to
                            // `jitter` of itself — never shortens it, so
                            // backoff stays monotone under the cap.
                            let jittered = backoff.mul_f64(1.0 + policy.jitter * rng.next_f64());
                            // tart-lint: allow(WALLCLOCK) -- transport ops-plane: next reconnect attempt scheduling
                            next_attempt = Instant::now() + jittered;
                            backoff = backoff
                                .mul_f64(policy.multiplier.max(1.0))
                                .min(policy.max_backoff);
                        }
                    }
                }
            }
        })
        .expect("spawn writer thread");
    Ok(RemoteLink {
        engine,
        stop,
        state,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use crossbeam::channel::unbounded;
    use tart_model::Value;
    use tart_vtime::{VirtualTime, WireId};

    fn data(n: u64) -> Envelope {
        Envelope::Data {
            wire: WireId::new(0),
            vt: VirtualTime::from_ticks(n),
            prev_vt: VirtualTime::from_ticks(n.saturating_sub(1)),
            payload: Value::map([("n", Value::I64(n as i64))]),
        }
    }

    #[test]
    fn frame_round_trip_over_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, EngineId::new(3), &data(7)).unwrap();
        write_frame(&mut buf, EngineId::new(4), &Envelope::Checkpoint).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((EngineId::new(3), data(7)))
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((EngineId::new(4), Envelope::Checkpoint))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, EngineId::new(0), &data(1)).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_header_is_eof_error() {
        let buf = [0u8; 3];
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn envelopes_cross_a_real_socket() {
        // Receiving side: a router with a plain channel standing in for an
        // engine inbox.
        let router_b = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router_b.register(EngineId::new(1), tx);
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b.clone()).unwrap();

        // Sending side: engine 1 is remote.
        let router_a = Router::new(FaultPlan::none());
        let link =
            remote_engine(&router_a, EngineId::new(1), ("127.0.0.1", inbound.port())).unwrap();
        assert!(link.health().connected);
        assert_eq!(link.health().epoch, 1);

        for n in 0..100 {
            router_a.send(EngineId::new(1), data(n));
        }
        router_a.send(EngineId::new(1), Envelope::Drain);

        let mut got = Vec::new();
        loop {
            let env = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("frame should arrive over TCP");
            if env == Envelope::Drain {
                break;
            }
            got.push(env);
        }
        assert_eq!(got.len(), 100);
        for (n, env) in got.into_iter().enumerate() {
            assert_eq!(env, data(n as u64), "frames arrive in order, intact");
        }
        assert_eq!(link.health().dropped_frames, 0);
        link.stop();
    }

    #[test]
    fn severed_link_reconnects_with_backoff_and_counts_drops() {
        let router_b = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router_b.register(EngineId::new(2), tx);
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b.clone()).unwrap();

        let router_a = Router::new(FaultPlan::none());
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            multiplier: 2.0,
            jitter: 0.5,
            max_attempts: 0,
        };
        let link = remote_engine_with(
            &router_a,
            EngineId::new(2),
            ("127.0.0.1", inbound.port()),
            policy,
        )
        .unwrap();

        router_a.send(EngineId::new(2), data(0));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            data(0),
            "link works before the sever"
        );

        // Sever the established connection from the receiving side, then
        // keep sending until the writer notices the broken pipe and heals
        // the link (the listener kept accepting). `connected` can flip back
        // quickly, so the assertions use the monotonic counters.
        inbound.sever_connections();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut n = 1u64;
        while link.health().reconnects == 0 && Instant::now() < deadline {
            router_a.send(EngineId::new(2), data(n));
            n += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !link.health().connected && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let healed = link.health();
        assert!(healed.connected, "link should self-heal");
        assert!(healed.dropped_frames >= 1, "drops are counted, not hidden");
        assert_eq!(healed.epoch, 2, "second connection incarnation");
        assert_eq!(healed.reconnects, 1);
        assert!(!healed.gave_up);

        // And traffic flows again on the new connection.
        while rx.try_recv().is_ok() {} // discard pre-sever stragglers
        router_a.send(EngineId::new(2), data(9999));
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut delivered = false;
        while Instant::now() < deadline {
            if let Ok(env) = rx.recv_timeout(Duration::from_millis(200)) {
                if env == data(9999) {
                    delivered = true;
                    break;
                }
            }
        }
        assert!(delivered, "traffic resumes after the reconnect");
        link.stop();
    }

    #[test]
    fn bounded_retry_gives_up() {
        // Connect, then drop the listener entirely so reconnects must fail.
        let router_b = Router::new(FaultPlan::none());
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b).unwrap();
        let port = inbound.port();

        let router_a = Router::new(FaultPlan::none());
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(8),
            multiplier: 2.0,
            jitter: 0.0,
            max_attempts: 3,
        };
        let link =
            remote_engine_with(&router_a, EngineId::new(3), ("127.0.0.1", port), policy).unwrap();
        drop(inbound); // closes the listener and severs the connection

        let deadline = Instant::now() + Duration::from_secs(10);
        while !link.health().gave_up && Instant::now() < deadline {
            router_a.send(EngineId::new(3), data(1));
            std::thread::sleep(Duration::from_millis(5));
        }
        let health = link.health();
        assert!(health.gave_up, "bounded retry must eventually give up");
        assert!(!health.connected);
        assert!(health.dropped_frames >= 1);
        link.stop();
    }
}
