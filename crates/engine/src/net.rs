//! TCP transport: the multi-host building block.
//!
//! The paper's §III.C measurement ran on two physical machines. The
//! in-process [`Router`] covers single-host deployments and
//! tests; this module extends it across hosts: every [`Envelope`] is
//! [`Encode`]-stable, so a frame is just a length-prefixed, CRC-protected
//! `(target engine, envelope)` pair on a TCP stream (which is itself
//! reliable and FIFO, matching the §II.A link model; loss at *failure* is
//! still covered by the replay protocol).
//!
//! Topology: each process runs a [`TcpInbound`] acceptor that delivers
//! arriving frames into its local router, and registers a
//! [`remote_engine`] proxy in that router for every engine hosted
//! elsewhere. Wires between hosts then work exactly like local ones.
//!
//! # Example
//!
//! ```no_run
//! use tart_engine::net::{remote_engine, TcpInbound};
//! use tart_engine::{FaultPlan, Router};
//! use tart_vtime::EngineId;
//!
//! // Host B: accept frames for the engines it hosts.
//! let router_b = Router::new(FaultPlan::none());
//! let inbound = TcpInbound::listen("0.0.0.0:7400", router_b.clone())?;
//!
//! // Host A: route engine 1's traffic over TCP to host B.
//! let router_a = Router::new(FaultPlan::none());
//! remote_engine(&router_a, EngineId::new(1), &format!("hostb:{}", inbound.port()))?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::unbounded;
use tart_codec::{crc32, Decode, Encode};
use tart_vtime::EngineId;

use crate::{Envelope, Router};

/// Maximum accepted frame body, guarding against corrupt length prefixes.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one `(target, envelope)` frame:
/// `u32 BE body length | u32 BE crc32(body) | body`.
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_frame(w: &mut impl Write, target: EngineId, env: &Envelope) -> io::Result<()> {
    let body = (target, env.clone()).to_bytes();
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(&body).to_be_bytes());
    frame.extend_from_slice(&body);
    w.write_all(&frame)
}

/// Reads one frame; `Ok(None)` signals a clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns `InvalidData` on CRC mismatch, oversized length, or a malformed
/// body; `UnexpectedEof` on a mid-frame disconnect; and propagates other
/// I/O failures.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(EngineId, Envelope)>> {
    let mut header = [0u8; 8];
    // Distinguish clean EOF (no bytes) from a torn header.
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut header[1..])?,
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    if crc32(&body) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    <(EngineId, Envelope)>::from_bytes(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Accepts TCP connections and feeds every arriving frame into the local
/// router — the receive half of a multi-host deployment.
pub struct TcpInbound {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpInbound {
    /// Binds `addr` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn listen(addr: impl ToSocketAddrs, router: Router) -> io::Result<TcpInbound> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("tart-tcp-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop_accept.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            let router = router.clone();
                            let handle = std::thread::Builder::new()
                                .name("tart-tcp-conn".into())
                                .spawn(move || {
                                    let mut stream = stream;
                                    loop {
                                        match read_frame(&mut stream) {
                                            Ok(Some((target, env))) => router.send(target, env),
                                            Ok(None) | Err(_) => return,
                                        }
                                    }
                                })
                                .expect("spawn connection thread");
                            conns.push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                }
                // Connection threads exit when their peers disconnect.
                drop(conns);
            })
            .expect("spawn accept thread");
        Ok(TcpInbound {
            local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound port (useful with a `0` bind).
    pub fn port(&self) -> u16 {
        self.local.port()
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Drop for TcpInbound {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Registers `engine` in `router` as a remote engine reachable at `addr`:
/// envelopes routed to it are forwarded over a dedicated TCP connection by
/// a background writer thread.
///
/// Envelopes sent while the connection is broken are dropped — exactly the
/// in-transit-loss semantics of an engine failure, which the replay
/// protocol already masks.
///
/// # Errors
///
/// Propagates the initial connection failure.
pub fn remote_engine(
    router: &Router,
    engine: EngineId,
    addr: impl ToSocketAddrs,
) -> io::Result<JoinHandle<()>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let (tx, rx) = unbounded::<Envelope>();
    router.register(engine, tx);
    let handle = std::thread::Builder::new()
        .name(format!("tart-tcp-out-{}", engine.raw()))
        .spawn(move || {
            while let Ok(env) = rx.recv() {
                if write_frame(&mut stream, engine, &env).is_err() {
                    // Peer gone: drain and drop (in-transit loss).
                    return;
                }
            }
        })
        .expect("spawn writer thread");
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use crossbeam::channel::unbounded;
    use std::time::Duration;
    use tart_model::Value;
    use tart_vtime::{VirtualTime, WireId};

    fn data(n: u64) -> Envelope {
        Envelope::Data {
            wire: WireId::new(0),
            vt: VirtualTime::from_ticks(n),
            prev_vt: VirtualTime::from_ticks(n.saturating_sub(1)),
            payload: Value::map([("n", Value::I64(n as i64))]),
        }
    }

    #[test]
    fn frame_round_trip_over_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, EngineId::new(3), &data(7)).unwrap();
        write_frame(&mut buf, EngineId::new(4), &Envelope::Checkpoint).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((EngineId::new(3), data(7)))
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((EngineId::new(4), Envelope::Checkpoint))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, EngineId::new(0), &data(1)).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_header_is_eof_error() {
        let buf = [0u8; 3];
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn envelopes_cross_a_real_socket() {
        // Receiving side: a router with a plain channel standing in for an
        // engine inbox.
        let router_b = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router_b.register(EngineId::new(1), tx);
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b).unwrap();

        // Sending side: engine 1 is remote.
        let router_a = Router::new(FaultPlan::none());
        let _writer =
            remote_engine(&router_a, EngineId::new(1), ("127.0.0.1", inbound.port())).unwrap();

        for n in 0..100 {
            router_a.send(EngineId::new(1), data(n));
        }
        router_a.send(EngineId::new(1), Envelope::Drain);

        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while got.len() < 101 && std::time::Instant::now() < deadline {
            if let Ok(env) = rx.recv_timeout(Duration::from_millis(100)) {
                got.push(env)
            }
        }
        assert_eq!(got.len(), 101, "all frames delivered");
        assert_eq!(got[0], data(0));
        assert_eq!(got[99], data(99));
        assert_eq!(got[100], Envelope::Drain);
        // FIFO preserved.
        for (i, env) in got[..100].iter().enumerate() {
            assert_eq!(env, &data(i as u64));
        }
    }
}
