//! TCP transport: the multi-host building block.
//!
//! The paper's §III.C measurement ran on two physical machines. The
//! in-process [`Router`] covers single-host deployments and
//! tests; this module extends it across hosts: every [`Envelope`] is
//! [`Encode`]-stable, so a frame is just a length-prefixed, CRC-protected
//! `(target engine, envelope)` pair on a TCP stream (which is itself
//! reliable and FIFO, matching the §II.A link model; loss at *failure* is
//! still covered by the replay protocol).
//!
//! Topology: each process runs a [`TcpInbound`] acceptor that delivers
//! arriving frames into its local router, and registers a
//! [`remote_engine`] proxy in that router for every engine hosted
//! elsewhere. Wires between hosts then work exactly like local ones.
//!
//! The outbound proxy is *self-healing*: when the connection breaks, the
//! link reconnects with exponential backoff and jitter (see
//! [`ReconnectPolicy`]) while counting — never hiding — the frames lost in
//! the gap. Lost frames are exactly in-transit loss under the §II.A
//! failure model, so the replay protocol restores the stream once the link
//! heals; [`RemoteLink::health`] exposes the drop/reconnect counters so
//! operators can see it happening.
//!
//! I/O model: there is no thread per connection in either direction. Every
//! outbound [`RemoteLink`] and every accepted [`TcpInbound`] stream is
//! serviced by the process-wide **reactor** (see [`crate::reactor`] and
//! DESIGN.md §18) — one thread multiplexing all sockets in nonblocking
//! mode, so connection count costs a buffer, not a stack.
//!
//! Hot path: the reactor drains a link's whole outbound queue per flush
//! window into a single **batch frame** (one write stream, one CRC — see
//! [`write_batch`]/[`read_batch`] and DESIGN.md §13), encoding envelopes
//! *by reference* into a reusable scratch buffer — no clone, no per-send
//! allocation. Superseded silence adverts are coalesced per wire before
//! encoding; silence watermarks are monotone, so only the newest matters.
//! [`TcpInbound`] speaks batch frames; the single-envelope
//! [`write_frame`]/[`read_frame`] codec remains for tools and tests.
//!
//! # Example
//!
//! ```no_run
//! use tart_engine::net::{remote_engine, TcpInbound};
//! use tart_engine::{FaultPlan, Router};
//! use tart_vtime::EngineId;
//!
//! // Host B: accept frames for the engines it hosts.
//! let router_b = Router::new(FaultPlan::none());
//! let inbound = TcpInbound::listen("0.0.0.0:7400", router_b.clone())?;
//!
//! // Host A: route engine 1's traffic over TCP to host B.
//! let router_a = Router::new(FaultPlan::none());
//! let link = remote_engine(&router_a, EngineId::new(1), &format!("hostb:{}", inbound.port()))?;
//! assert!(link.snapshot().connected);
//! # Ok::<(), std::io::Error>(())
//! ```

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use tart_codec::{crc32, Decode, Encode, Reader};
use tart_vtime::EngineId;

use crate::{Envelope, Router};

/// Maximum accepted frame body, guarding against corrupt length prefixes.
pub(crate) const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Cap on envelopes coalesced into one batch frame, bounding frame size
/// and the blast radius of a torn batch.
pub(crate) const MAX_BATCH: usize = 1024;

/// Encodes one `(target, envelope)` frame into `buf` **by reference** —
/// no envelope clone, no intermediate allocation:
/// `u32 BE body length | u32 BE crc32(body) | body`.
pub fn encode_frame_into(buf: &mut BytesMut, target: EngineId, env: &Envelope) {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 8]); // header patched below
    target.encode(buf);
    env.encode(buf);
    patch_header(buf, start);
}

/// Encodes a whole batch as **one** frame into `buf`:
/// `u32 BE body length | u32 BE crc32(body) | body`, where the body is a
/// varint envelope count followed by that many `(target, envelope)` pairs
/// (byte-identical to the codec's `Vec` encoding). One CRC covers the whole
/// batch, so any single corrupt byte rejects it entirely. An empty batch
/// encodes to nothing at all.
pub fn encode_batch_into(buf: &mut BytesMut, batch: &[(EngineId, Envelope)]) {
    if batch.is_empty() {
        return;
    }
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 8]); // header patched below
    (batch.len() as u64).encode(buf);
    for (target, env) in batch {
        target.encode(buf);
        env.encode(buf);
    }
    patch_header(buf, start);
}

/// Back-patches the `len | crc` header of the frame that starts at
/// `start`, whose body was appended after an 8-byte placeholder.
fn patch_header(buf: &mut BytesMut, start: usize) {
    let body_len = buf.len() - start - 8;
    let crc = crc32(&buf[start + 8..]);
    buf[start..start + 4].copy_from_slice(&(body_len as u32).to_be_bytes());
    buf[start + 4..start + 8].copy_from_slice(&crc.to_be_bytes());
}

/// Writes one `(target, envelope)` frame (see [`encode_frame_into`]).
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_frame(w: &mut impl Write, target: EngineId, env: &Envelope) -> io::Result<()> {
    let mut buf = BytesMut::new();
    encode_frame_into(&mut buf, target, env);
    w.write_all(&buf)
}

/// Writes `batch` as one batch frame via a caller-owned `scratch` buffer
/// (cleared, reused across calls — the hot path never allocates once the
/// buffer has grown to its working size). Writing an empty batch is a
/// no-op: no bytes touch the stream.
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_batch(
    w: &mut impl Write,
    batch: &[(EngineId, Envelope)],
    scratch: &mut BytesMut,
) -> io::Result<()> {
    scratch.clear();
    encode_batch_into(scratch, batch);
    if scratch.is_empty() {
        return Ok(());
    }
    w.write_all(scratch)
}

/// Reads the `len | crc | body` envelope of one frame; `Ok(None)` is a
/// clean EOF at a frame boundary. Shared by the single and batch readers.
fn read_verified_body(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    // Distinguish clean EOF (no bytes) from a torn header.
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut header[1..])?,
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    if crc32(&body) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(body))
}

/// Reads one frame; `Ok(None)` signals a clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns `InvalidData` on CRC mismatch, oversized length, or a malformed
/// body; `UnexpectedEof` on a mid-frame disconnect; and propagates other
/// I/O failures.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(EngineId, Envelope)>> {
    let Some(body) = read_verified_body(r)? else {
        return Ok(None);
    };
    <(EngineId, Envelope)>::from_bytes(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads one batch frame; `Ok(None)` signals a clean EOF at a frame
/// boundary. The CRC covers the whole batch: a single corrupt byte rejects
/// every envelope in it (no partial delivery from a damaged frame).
///
/// # Errors
///
/// Same contract as [`read_frame`].
pub fn read_batch(r: &mut impl Read) -> io::Result<Option<Vec<(EngineId, Envelope)>>> {
    let Some(body) = read_verified_body(r)? else {
        return Ok(None);
    };
    decode_batch_body(&body).map(Some)
}

/// Decodes a CRC-verified batch body into its `(target, envelope)` pairs.
/// Shared by the blocking [`read_batch`] and the reactor's incremental
/// frame parser (`crate::reactor`).
pub(crate) fn decode_batch_body(body: &[u8]) -> io::Result<Vec<(EngineId, Envelope)>> {
    let invalid =
        |e: tart_codec::DecodeError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
    let mut rd = Reader::new(body);
    let count = u64::decode(&mut rd).map_err(invalid)?;
    if count > MAX_BATCH as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("batch of {count} envelopes exceeds the {MAX_BATCH} cap"),
        ));
    }
    let mut batch = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let target = EngineId::decode(&mut rd).map_err(invalid)?;
        let env = Envelope::decode(&mut rd).map_err(invalid)?;
        batch.push((target, env));
    }
    if rd.remaining() != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after batch body",
        ));
    }
    Ok(batch)
}

/// Drops every silence advert superseded by a later one for the same
/// `(target, wire)` within the batch, preserving the order of the kept
/// envelopes. Silence watermarks are monotone per wire — an advert
/// promises "no data through `through`", so the newest advert subsumes
/// every earlier one and dropping them loses no information (DESIGN.md
/// §13). Data, probes and control envelopes are never touched.
pub(crate) fn coalesce_silence(batch: &mut Vec<(EngineId, Envelope)>) {
    let mut last: std::collections::BTreeMap<(u32, u32), usize> = std::collections::BTreeMap::new();
    let mut adverts = 0usize;
    for (i, (target, env)) in batch.iter().enumerate() {
        if let Envelope::Silence { wire, .. } = env {
            last.insert((target.raw(), wire.raw()), i);
            adverts += 1;
        }
    }
    if adverts == last.len() {
        return; // nothing superseded
    }
    let mut idx = 0;
    batch.retain(|(target, env)| {
        let keep = match env {
            Envelope::Silence { wire, .. } => last[&(target.raw(), wire.raw())] == idx,
            _ => true,
        };
        idx += 1;
        keep
    });
}

/// Accepts TCP connections and feeds every arriving frame into the local
/// router — the receive half of a multi-host deployment.
///
/// Connections are *not* threads: the listener and every accepted stream
/// are handed to the process-wide [`crate::reactor`], whose single thread
/// multiplexes them (nonblocking reads, incremental frame reassembly)
/// alongside every outbound [`RemoteLink`].
pub struct TcpInbound {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<(u64, TcpStream)>>>,
}

impl TcpInbound {
    /// Binds `addr` and registers the listener with the process-wide
    /// reactor, which accepts and reads on its multiplexing thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn listen(addr: impl ToSocketAddrs, router: Router) -> io::Result<TcpInbound> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let streams: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
        crate::reactor::global().add_inbound(crate::reactor::InboundTask::new(
            listener,
            router,
            Arc::clone(&streams),
            Arc::clone(&stop),
        ));
        Ok(TcpInbound {
            local,
            stop,
            streams,
        })
    }

    /// The bound port (useful with a `0` bind).
    pub fn port(&self) -> u16 {
        self.local.port()
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Forcibly closes every currently-accepted connection (the listener
    /// keeps accepting new ones) — a receiver-side link sever for fault
    /// drills. Peers see a broken pipe on their next write and enter their
    /// reconnect loop.
    pub fn sever_connections(&self) {
        let mut streams = self.streams.lock();
        for (_, s) in streams.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for TcpInbound {
    fn drop(&mut self) {
        // The reactor drops the listener and every accepted stream on its
        // next pass; severing here makes in-flight reads fail immediately.
        self.stop.store(true, Ordering::Relaxed);
        self.sever_connections();
    }
}

/// Backoff tuning for a [`remote_engine`] link.
#[derive(Clone, Debug)]
pub struct ReconnectPolicy {
    /// Delay before the first reconnect attempt of an outage.
    pub initial_backoff: Duration,
    /// Cap on the delay between attempts.
    pub max_backoff: Duration,
    /// Multiplier applied to the delay after each failed attempt.
    pub multiplier: f64,
    /// Fraction of each delay randomized (0.0 = none, 1.0 = the delay may
    /// double), de-synchronizing reconnect storms across links.
    pub jitter: f64,
    /// Attempts per outage before the link gives up (`0` = retry forever).
    pub max_attempts: u32,
}

impl Default for ReconnectPolicy {
    /// 50 ms → 5 s exponential (×2) with 50 % jitter, retrying forever.
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.5,
            max_attempts: 0,
        }
    }
}

/// A point-in-time view of a [`RemoteLink`]'s transport state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkHealth {
    /// Whether a TCP connection is currently established.
    pub connected: bool,
    /// Connection incarnations so far (1 after the initial connect).
    pub epoch: u64,
    /// Successful re-connections after an outage.
    pub reconnects: u64,
    /// Frames dropped because no connection was up (in-transit loss; the
    /// replay protocol recovers the stream contents).
    pub dropped_frames: u64,
    /// The writer exhausted [`ReconnectPolicy::max_attempts`] and stopped
    /// trying; frames keep being counted as dropped.
    pub gave_up: bool,
    /// Batch frames flushed onto the wire (one `write_all` each).
    pub batches_sent: u64,
    /// Envelopes carried by those batches; `envelopes_batched /
    /// batches_sent` is the link's achieved coalescing factor.
    pub envelopes_batched: u64,
}

#[derive(Default)]
pub(crate) struct LinkState {
    /// Seqlock sequence: odd while the writer is inside an update group.
    /// Readers that overlap a group retry, so related counters (e.g.
    /// `batches_sent` / `envelopes_batched`, or `connected` /
    /// `reconnects`) can never tear apart in a [`LinkHealth`] snapshot.
    seq: AtomicU64,
    pub(crate) connected: AtomicBool,
    pub(crate) epoch: AtomicU64,
    pub(crate) reconnects: AtomicU64,
    pub(crate) dropped_frames: AtomicU64,
    pub(crate) gave_up: AtomicBool,
    pub(crate) batches_sent: AtomicU64,
    pub(crate) envelopes_batched: AtomicU64,
}

impl LinkState {
    /// Runs `group` as one atomic update with respect to
    /// [`LinkState::snapshot`].
    pub(crate) fn update(&self, group: impl FnOnce(&Self)) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        group(self);
        self.seq.fetch_add(1, Ordering::SeqCst);
    }

    /// Seqlock read: a consistent point-in-time copy of every counter,
    /// retried while an update group is in progress.
    fn snapshot(&self) -> LinkHealth {
        loop {
            let before = self.seq.load(Ordering::SeqCst);
            if before.is_multiple_of(2) {
                let health = LinkHealth {
                    connected: self.connected.load(Ordering::SeqCst),
                    epoch: self.epoch.load(Ordering::SeqCst),
                    reconnects: self.reconnects.load(Ordering::SeqCst),
                    dropped_frames: self.dropped_frames.load(Ordering::SeqCst),
                    gave_up: self.gave_up.load(Ordering::SeqCst),
                    batches_sent: self.batches_sent.load(Ordering::SeqCst),
                    envelopes_batched: self.envelopes_batched.load(Ordering::SeqCst),
                };
                if self.seq.load(Ordering::SeqCst) == before {
                    return health;
                }
            }
            std::hint::spin_loop();
        }
    }
}

/// Handle on an outbound link created by [`remote_engine`]: exposes link
/// health and detaches the link from the reactor (dropping the handle also
/// detaches it). There is no thread per link — every link is serviced by
/// the process-wide [`crate::reactor`] thread.
pub struct RemoteLink {
    engine: EngineId,
    stop: Arc<AtomicBool>,
    state: Arc<LinkState>,
}

impl RemoteLink {
    /// The remote engine this link forwards to.
    pub fn engine(&self) -> EngineId {
        self.engine
    }

    /// A **consistent** point-in-time copy of the transport counters:
    /// counters the writer updates together (a batch's `batches_sent` /
    /// `envelopes_batched`, a reconnect's `connected` / `epoch` /
    /// `reconnects`) are taken together, never mid-update.
    pub fn snapshot(&self) -> LinkHealth {
        self.state.snapshot()
    }

    /// Alias for [`RemoteLink::snapshot`], kept for call-site familiarity.
    pub fn health(&self) -> LinkHealth {
        self.snapshot()
    }

    /// Detaches the link: the reactor drops its stream and queue on the
    /// next pass.
    pub fn stop(self) {}
}

impl Drop for RemoteLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for RemoteLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLink")
            .field("engine", &self.engine)
            .field("health", &self.snapshot())
            .finish()
    }
}

/// Registers `engine` in `router` as a remote engine reachable at `addr`
/// with the default [`ReconnectPolicy`]; see [`remote_engine_with`].
///
/// # Errors
///
/// Propagates the initial connection failure.
pub fn remote_engine(
    router: &Router,
    engine: EngineId,
    addr: impl ToSocketAddrs,
) -> io::Result<RemoteLink> {
    remote_engine_with(router, engine, addr, ReconnectPolicy::default())
}

/// Registers `engine` in `router` as a remote engine reachable at `addr`:
/// envelopes routed to it are forwarded over a dedicated TCP connection
/// serviced by the process-wide [`crate::reactor`] thread.
///
/// The initial connection is made synchronously (so a misconfigured
/// address fails fast). Afterwards the link self-heals: on a broken
/// connection the reactor drops queued envelopes (counting them —
/// in-transit loss, recovered by replay) while reconnecting under
/// `policy`'s exponential backoff with jitter. If `policy.max_attempts` is
/// exhausted the link gives up for good and only counts drops.
///
/// # Errors
///
/// Propagates address-resolution and initial-connection failures.
pub fn remote_engine_with(
    router: &Router,
    engine: EngineId,
    addr: impl ToSocketAddrs,
    policy: ReconnectPolicy,
) -> io::Result<RemoteLink> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        ));
    }
    let stream = TcpStream::connect(&addrs[..])?;
    stream.set_nodelay(true).ok();
    stream.set_nonblocking(true)?;

    let (tx, rx) = unbounded::<Envelope>();
    router.register(engine, tx);
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(LinkState::default());
    // One update group: a snapshot racing with construction must never see
    // `connected` without the epoch that made it true.
    state.update(|st| {
        st.connected.store(true, Ordering::SeqCst);
        st.epoch.store(1, Ordering::SeqCst);
    });
    crate::reactor::global().add_link(crate::reactor::LinkTask::new(
        engine,
        rx,
        stream,
        addrs,
        policy,
        Arc::clone(&state),
        Arc::clone(&stop),
    ));
    Ok(RemoteLink {
        engine,
        stop,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use crossbeam::channel::unbounded;
    use std::time::Instant;
    use tart_model::Value;
    use tart_vtime::{VirtualTime, WireId};

    fn data(n: u64) -> Envelope {
        Envelope::Data {
            wire: WireId::new(0),
            vt: VirtualTime::from_ticks(n),
            prev_vt: VirtualTime::from_ticks(n.saturating_sub(1)),
            payload: Value::map([("n", Value::I64(n as i64))]),
        }
    }

    #[test]
    fn frame_round_trip_over_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, EngineId::new(3), &data(7)).unwrap();
        write_frame(&mut buf, EngineId::new(4), &Envelope::Checkpoint).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((EngineId::new(3), data(7)))
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((EngineId::new(4), Envelope::Checkpoint))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    fn silence(wire: u32, through: u64) -> Envelope {
        Envelope::Silence {
            wire: WireId::new(wire),
            through: VirtualTime::from_ticks(through),
            last_data: VirtualTime::from_ticks(through.saturating_sub(1)),
        }
    }

    #[test]
    fn batch_round_trip_over_buffer() {
        let batch = vec![
            (EngineId::new(1), data(3)),
            (EngineId::new(2), Envelope::Checkpoint),
            (EngineId::new(1), silence(0, 9)),
        ];
        let mut scratch = BytesMut::new();
        let mut buf = Vec::new();
        write_batch(&mut buf, &batch, &mut scratch).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_batch(&mut cursor).unwrap(), Some(batch));
        assert_eq!(read_batch(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let mut scratch = BytesMut::new();
        let mut buf = Vec::new();
        write_batch(&mut buf, &[], &mut scratch).unwrap();
        assert!(buf.is_empty(), "empty batch is a no-op on the stream");
        let mut cursor = &buf[..];
        assert_eq!(read_batch(&mut cursor).unwrap(), None);
    }

    #[test]
    fn corrupt_batch_rejects_every_envelope() {
        let batch = vec![(EngineId::new(0), data(1)), (EngineId::new(0), data(2))];
        let mut scratch = BytesMut::new();
        let mut buf = Vec::new();
        write_batch(&mut buf, &batch, &mut scratch).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut cursor = &buf[..];
        let err = read_batch(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn coalescing_keeps_only_the_newest_silence_per_wire() {
        let mut batch = vec![
            (EngineId::new(1), silence(0, 5)),
            (EngineId::new(1), data(6)),
            (EngineId::new(1), silence(0, 9)),
            (EngineId::new(1), silence(1, 3)),
            (EngineId::new(2), silence(0, 4)),
        ];
        coalesce_silence(&mut batch);
        assert_eq!(
            batch,
            vec![
                (EngineId::new(1), data(6)),
                (EngineId::new(1), silence(0, 9)),
                (EngineId::new(1), silence(1, 3)),
                (EngineId::new(2), silence(0, 4)),
            ],
            "only the superseded wire-0 advert goes; order is preserved"
        );
    }

    #[test]
    fn single_and_batch_frames_share_the_body_encoding() {
        // A batch of one is the single frame plus a count prefix: both are
        // built from references, so the bodies must agree byte-for-byte.
        let mut single = BytesMut::new();
        encode_frame_into(&mut single, EngineId::new(7), &data(5));
        let mut batch = BytesMut::new();
        encode_batch_into(&mut batch, &[(EngineId::new(7), data(5))]);
        assert_eq!(&single[8..], &batch[9..], "pair encoding is identical");
        assert_eq!(batch[8], 1, "varint count of one");
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, EngineId::new(0), &data(1)).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_header_is_eof_error() {
        let buf = [0u8; 3];
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn envelopes_cross_a_real_socket() {
        // Receiving side: a router with a plain channel standing in for an
        // engine inbox.
        let router_b = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router_b.register(EngineId::new(1), tx);
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b.clone()).unwrap();

        // Sending side: engine 1 is remote.
        let router_a = Router::new(FaultPlan::none());
        let link =
            remote_engine(&router_a, EngineId::new(1), ("127.0.0.1", inbound.port())).unwrap();
        assert!(link.snapshot().connected);
        assert_eq!(link.snapshot().epoch, 1);

        for n in 0..100 {
            router_a.send(EngineId::new(1), data(n));
        }
        router_a.send(EngineId::new(1), Envelope::Drain);

        let mut got = Vec::new();
        loop {
            let env = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("frame should arrive over TCP");
            if env == Envelope::Drain {
                break;
            }
            got.push(env);
        }
        assert_eq!(got.len(), 100);
        for (n, env) in got.into_iter().enumerate() {
            assert_eq!(env, data(n as u64), "frames arrive in order, intact");
        }
        let health = link.snapshot();
        assert_eq!(health.dropped_frames, 0);
        assert_eq!(
            health.envelopes_batched, 101,
            "every envelope (100 data + drain) crossed in a batch"
        );
        assert!(
            (1..=101).contains(&health.batches_sent),
            "between one flush for everything and one per envelope, got {}",
            health.batches_sent
        );
        link.stop();
    }

    #[test]
    fn severed_link_reconnects_with_backoff_and_counts_drops() {
        let router_b = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router_b.register(EngineId::new(2), tx);
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b.clone()).unwrap();

        let router_a = Router::new(FaultPlan::none());
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            multiplier: 2.0,
            jitter: 0.5,
            max_attempts: 0,
        };
        let link = remote_engine_with(
            &router_a,
            EngineId::new(2),
            ("127.0.0.1", inbound.port()),
            policy,
        )
        .unwrap();

        router_a.send(EngineId::new(2), data(0));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            data(0),
            "link works before the sever"
        );

        // Sever the established connection from the receiving side, then
        // keep sending until the writer notices the broken pipe and heals
        // the link (the listener kept accepting). `connected` can flip back
        // quickly, so the assertions use the monotonic counters.
        inbound.sever_connections();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut n = 1u64;
        while link.snapshot().reconnects == 0 && Instant::now() < deadline {
            router_a.send(EngineId::new(2), data(n));
            n += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !link.snapshot().connected && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let healed = link.snapshot();
        assert!(healed.connected, "link should self-heal");
        assert!(healed.dropped_frames >= 1, "drops are counted, not hidden");
        assert_eq!(healed.epoch, 2, "second connection incarnation");
        assert_eq!(healed.reconnects, 1);
        assert!(!healed.gave_up);

        // And traffic flows again on the new connection.
        while rx.try_recv().is_ok() {} // discard pre-sever stragglers
        router_a.send(EngineId::new(2), data(9999));
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut delivered = false;
        while Instant::now() < deadline {
            if let Ok(env) = rx.recv_timeout(Duration::from_millis(200)) {
                if env == data(9999) {
                    delivered = true;
                    break;
                }
            }
        }
        assert!(delivered, "traffic resumes after the reconnect");
        link.stop();
    }

    #[test]
    fn bounded_retry_gives_up() {
        // Connect, then drop the listener entirely so reconnects must fail.
        let router_b = Router::new(FaultPlan::none());
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b).unwrap();
        let port = inbound.port();

        let router_a = Router::new(FaultPlan::none());
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(8),
            multiplier: 2.0,
            jitter: 0.0,
            max_attempts: 3,
        };
        let link =
            remote_engine_with(&router_a, EngineId::new(3), ("127.0.0.1", port), policy).unwrap();
        drop(inbound); // closes the listener and severs the connection

        let deadline = Instant::now() + Duration::from_secs(10);
        while !link.snapshot().gave_up && Instant::now() < deadline {
            router_a.send(EngineId::new(3), data(1));
            std::thread::sleep(Duration::from_millis(5));
        }
        let health = link.snapshot();
        assert!(health.gave_up, "bounded retry must eventually give up");
        assert!(!health.connected);
        assert!(health.dropped_frames >= 1);
        link.stop();
    }
}
