//! Offline replay verification — the `replay --verify` half of verified
//! replay (DESIGN.md §15).
//!
//! The live path ([`crate::EngineCore::restore`]) answers a yes/no
//! question: does restoring this chain reproduce the state the original
//! run recorded? This module answers the forensic follow-up when it does
//! not: **where** did replay first diverge? [`verify_replay`] binary-
//! searches chain prefixes — each probe restores a prefix into a throwaway
//! core wired to a router with no registered inboxes, so its replay
//! requests drop harmlessly and nothing escapes the probe — and reports
//! the first divergent member and its virtual time.
//!
//! The bisection relies on the **single-corruption assumption** the rest
//! of the recovery design already makes (one whole chain may rot, see
//! `KEPT_GENERATIONS`): once replay diverges at member *j*, every longer
//! prefix keeps failing, because later recorded hashes describe the
//! original run's state, not the corrupt restoration. With several
//! independent corruptions the probe still lands on *a* divergent member,
//! just not necessarily the oldest one.

use tart_estimator::DeterminismFault;
use tart_model::AppSpec;
use tart_vtime::{ComponentId, EngineId};

use crate::checkpoint::{verify_chain, ChainDefect, DivergenceFault, EngineCheckpoint};
use crate::core::EngineCore;
use crate::router::Router;
use crate::{ClusterConfig, Placement, ReplicaStore};

/// Outcome of [`verify_replay`].
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayVerdict {
    /// Every chain member restored and hash-verified; replay of the whole
    /// chain reconverges on the recorded state.
    Clean {
        /// Number of chain members verified (0 for an empty chain, which
        /// verifies vacuously).
        members: usize,
    },
    /// The chain failed structural verification before any restore ran:
    /// a member's seal does not recompute, or the chain opens with a
    /// delta. The defect names the offending member.
    Defective(ChainDefect),
    /// Replay reconverges through `index - 1` chain members and first
    /// diverges at member `index`.
    Diverged {
        /// Position of the first divergent member (0 = oldest).
        index: usize,
        /// That member's checkpoint sequence number.
        seq: u64,
        /// The structured fault from the failing probe; `fault.vt` is the
        /// first divergent virtual time.
        fault: DivergenceFault,
    },
}

/// Restores `chain[..len]` into a throwaway core and returns the restore
/// verdict. The router has no registered inboxes, so the replay requests a
/// successful restore emits drop at the transport and the probe is
/// side-effect free.
fn probe(
    spec: &AppSpec,
    placement: &Placement,
    config: &ClusterConfig,
    engine: EngineId,
    chain: &[EngineCheckpoint],
    faults: &[(ComponentId, DeterminismFault)],
) -> Result<(), DivergenceFault> {
    let router = Router::new(config.faults.clone());
    let (outputs_tx, _outputs_rx) = crossbeam::channel::unbounded();
    let mut core = EngineCore::new(
        engine,
        spec,
        placement,
        config,
        router,
        ReplicaStore::new(),
        outputs_tx,
    );
    core.restore(chain, faults)
}

/// Bisects a checkpoint chain for the first divergent virtual time.
///
/// Runs the structural check first ([`verify_chain`]); a defective chain
/// is reported without restoring anything. Then probes the full chain —
/// the common clean case costs a single restore — and only on failure
/// binary-searches prefix lengths for the oldest member whose restoration
/// no longer matches its recorded state hash.
///
/// Probes are offline: they never touch the live cluster, its router, or
/// its observability counters. Use this after a promotion or cold restart
/// reported a divergence, with the same chain it rejected (e.g. from
/// [`crate::ReplicaStore::chain`] or [`crate::CheckpointStore::load_chain`]).
pub fn verify_replay(
    spec: &AppSpec,
    placement: &Placement,
    config: &ClusterConfig,
    engine: EngineId,
    chain: &[EngineCheckpoint],
    faults: &[(ComponentId, DeterminismFault)],
) -> ReplayVerdict {
    if let Err(defect) = verify_chain(chain) {
        return ReplayVerdict::Defective(defect);
    }
    let full_fault = match probe(spec, placement, config, engine, chain, faults) {
        Ok(()) => {
            return ReplayVerdict::Clean {
                members: chain.len(),
            }
        }
        Err(fault) => fault,
    };
    // Invariant: every prefix shorter than `lo` passes, the prefix of
    // length `hi` fails and `fault_at_hi` is its fault. An empty prefix
    // passes vacuously and the full chain just failed.
    let (mut lo, mut hi) = (1, chain.len());
    let mut fault_at_hi = full_fault;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match probe(spec, placement, config, engine, &chain[..mid], faults) {
            Ok(()) => lo = mid + 1,
            Err(fault) => {
                fault_at_hi = fault;
                hi = mid;
            }
        }
    }
    // lo == hi: the shortest failing prefix; its last member diverged.
    let index = hi - 1;
    ReplayVerdict::Diverged {
        index,
        seq: chain[index].seq,
        fault: fault_at_hi,
    }
}
