//! Inter-engine message routing with fault injection.

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use tart_stats::DetRng;
use tart_vtime::EngineId;

/// Sentinel engine id under which the cluster supervisor registers: the
/// service that answers replay requests for *external* wires from the
/// message log.
pub(crate) const EXTERNAL_ENGINE: EngineId = EngineId::new(u32::MAX);

/// Sentinel engine id under which the liveness supervisor registers: the
/// inbox that collects [`Envelope::Heartbeat`] beacons and drives automatic
/// failover.
pub(crate) const SUPERVISOR_ENGINE: EngineId = EngineId::new(u32::MAX - 1);

/// Sentinel engine id under which the warm-standby plane registers: the
/// inbox that collects [`Envelope::StandbyCheckpoint`] and
/// [`Envelope::StandbyInput`] streams from every supervised primary. When
/// no standby plane is running, streamed envelopes to this id vanish
/// silently — replication is best-effort; the [`crate::ReplicaStore`]
/// remains the correctness path.
pub(crate) const STANDBY_ENGINE: EngineId = EngineId::new(u32::MAX - 2);

use crate::Envelope;

/// Link-fault injection plan: probabilistic drop and duplication of payload
/// traffic (Data/Silence envelopes), exercising the correctness criterion's
/// "link failures (causing loss, re-ordering, or duplication of messages
/// sent over physical links)" (§II.A).
///
/// Duplicated envelopes are delivered back-to-back; combined with drops on
/// retransmission paths this also produces effective re-ordering of silence
/// relative to data. Control-plane envelopes are never disturbed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability a faultable envelope is silently dropped.
    pub drop_prob: f64,
    /// Probability a faultable envelope is delivered twice.
    pub dup_prob: f64,
    /// Seed for the fault RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed: 0,
        }
    }

    /// Returns `true` if this plan can never disturb traffic.
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0
    }
}

/// Routes envelopes to engine inboxes, with hot-swappable targets (failover
/// replaces a dead engine's inbox) and optional fault injection.
///
/// Cloneable and shared by every engine, injector and the failover manager.
#[derive(Clone)]
pub struct Router {
    targets: Arc<RwLock<HashMap<EngineId, Sender<Envelope>>>>,
    faults: Arc<Mutex<FaultState>>,
    /// Fast-path guard: set whenever any partition or latency injection is
    /// configured, so fault-free sends never take the chaos lock.
    chaos_active: Arc<AtomicBool>,
    chaos: Arc<Mutex<ChaosState>>,
}

struct FaultState {
    plan: FaultPlan,
    rng: DetRng,
    dropped: u64,
    duplicated: u64,
}

/// Scheduled link disturbance toward one engine (chaos harness).
#[derive(Clone, Copy, Default)]
struct LinkChaos {
    partitioned: bool,
    latency: Duration,
}

#[derive(Default)]
struct ChaosState {
    links: HashMap<EngineId, LinkChaos>,
    partition_drops: u64,
}

impl Router {
    /// Creates a router with the given fault plan.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = DetRng::seed_from(plan.seed);
        Router {
            targets: Arc::new(RwLock::new(HashMap::new())),
            faults: Arc::new(Mutex::new(FaultState {
                plan,
                rng,
                dropped: 0,
                duplicated: 0,
            })),
            chaos_active: Arc::new(AtomicBool::new(false)),
            chaos: Arc::new(Mutex::new(ChaosState::default())),
        }
    }

    /// Registers (or replaces, during failover) the inbox of `engine`.
    pub fn register(&self, engine: EngineId, inbox: Sender<Envelope>) {
        self.targets.write().insert(engine, inbox);
    }

    /// Removes an engine's inbox (its channel closes once the engine thread
    /// drops the receiver). Subsequent sends to it vanish — exactly the
    /// fail-stop message-loss semantics.
    pub fn deregister(&self, engine: EngineId) {
        self.targets.write().remove(&engine);
    }

    /// Sends `env` to `engine`. Envelopes to unknown/dead engines are
    /// dropped silently (in-transit loss at failure). Faultable envelopes
    /// pass through the fault plan and any active partition/latency chaos;
    /// control-plane traffic is never disturbed.
    pub fn send(&self, engine: EngineId, env: Envelope) {
        if env.faultable() {
            if self.chaos_active.load(Ordering::Relaxed) {
                let delay = {
                    let mut c = self.chaos.lock();
                    let link = c.links.get(&engine).copied().unwrap_or_default();
                    if link.partitioned {
                        c.partition_drops += 1;
                        return;
                    }
                    link.latency
                };
                if !delay.is_zero() {
                    // Sender-side stall: the paying cost lands on the
                    // sending engine, like a congested egress link.
                    std::thread::sleep(delay);
                }
            }
            let mut f = self.faults.lock();
            if !f.plan.is_noop() {
                let roll = f.rng.next_f64();
                if roll < f.plan.drop_prob {
                    f.dropped += 1;
                    return;
                }
                if roll < f.plan.drop_prob + f.plan.dup_prob {
                    f.duplicated += 1;
                    drop(f);
                    self.raw_send(engine, env.clone());
                    self.raw_send(engine, env);
                    return;
                }
            }
        }
        self.raw_send(engine, env);
    }

    /// Starts or stops dropping payload traffic toward `engine` — a
    /// one-directional link partition. Control-plane envelopes (heartbeats,
    /// replay coordination) still flow, so a partition causes message loss
    /// that gap detection must recover, never a spurious failover.
    pub fn set_partition(&self, engine: EngineId, active: bool) {
        let mut c = self.chaos.lock();
        c.links.entry(engine).or_default().partitioned = active;
        self.refresh_chaos_flag(&c);
    }

    /// Sets an artificial sender-side delay on payload traffic toward
    /// `engine` ([`Duration::ZERO`] clears it).
    pub fn set_latency(&self, engine: EngineId, delay: Duration) {
        let mut c = self.chaos.lock();
        c.links.entry(engine).or_default().latency = delay;
        self.refresh_chaos_flag(&c);
    }

    fn refresh_chaos_flag(&self, c: &ChaosState) {
        let active = c
            .links
            .values()
            .any(|l| l.partitioned || !l.latency.is_zero());
        self.chaos_active.store(active, Ordering::Relaxed);
    }

    /// Number of payload envelopes dropped by link partitions.
    pub fn partition_drops(&self) -> u64 {
        self.chaos.lock().partition_drops
    }

    fn raw_send(&self, engine: EngineId, env: Envelope) {
        if let Some(tx) = self.targets.read().get(&engine) {
            // A closed channel means the engine died between lookup and
            // send: the message is lost in transit, which replay covers.
            let _ = tx.send(env);
        }
    }

    /// `(dropped, duplicated)` counts from the fault injector.
    pub fn fault_counts(&self) -> (u64, u64) {
        let f = self.faults.lock();
        (f.dropped, f.duplicated)
    }

    /// Whether `engine` currently has a registered inbox.
    pub fn is_registered(&self, engine: EngineId) -> bool {
        self.targets.read().contains_key(&engine)
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("engines", &self.targets.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use tart_model::Value;
    use tart_vtime::{VirtualTime, WireId};

    fn data(n: u64) -> Envelope {
        Envelope::Data {
            wire: WireId::new(0),
            vt: VirtualTime::from_ticks(n),
            prev_vt: VirtualTime::ZERO,
            payload: Value::I64(n as i64),
        }
    }

    #[test]
    fn routes_to_registered_engine() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        assert!(router.is_registered(EngineId::new(0)));
        router.send(EngineId::new(0), data(1));
        assert_eq!(rx.try_recv().unwrap(), data(1));
    }

    #[test]
    fn unknown_engine_drops_silently() {
        let router = Router::new(FaultPlan::none());
        router.send(EngineId::new(9), data(1));
        assert!(!router.is_registered(EngineId::new(9)));
    }

    #[test]
    fn deregister_then_send_loses_message() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.deregister(EngineId::new(0));
        router.send(EngineId::new(0), data(1));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn register_swaps_inbox_for_failover() {
        let router = Router::new(FaultPlan::none());
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        router.register(EngineId::new(0), tx1);
        router.register(EngineId::new(0), tx2);
        router.send(EngineId::new(0), data(1));
        assert!(rx1.try_recv().is_err(), "old inbox no longer receives");
        assert_eq!(rx2.try_recv().unwrap(), data(1));
    }

    #[test]
    fn fault_plan_drops_and_duplicates_statistically() {
        let plan = FaultPlan {
            drop_prob: 0.2,
            dup_prob: 0.1,
            seed: 42,
        };
        let router = Router::new(plan);
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        let n = 10_000;
        for i in 0..n {
            router.send(EngineId::new(0), data(i));
        }
        let received = rx.try_iter().count() as f64;
        let (dropped, duplicated) = router.fault_counts();
        assert!(dropped > 0 && duplicated > 0);
        // Expected: n * (1 - 0.2 + 0.1) = 0.9 n.
        let expect = n as f64 * 0.9;
        assert!(
            (received - expect).abs() < expect * 0.1,
            "received {received} vs expected {expect}"
        );
    }

    #[test]
    fn control_traffic_is_never_faulted() {
        let plan = FaultPlan {
            drop_prob: 1.0,
            dup_prob: 0.0,
            seed: 1,
        };
        let router = Router::new(plan);
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.send(EngineId::new(0), Envelope::Checkpoint);
        router.send(
            EngineId::new(0),
            Envelope::ReplayRequest {
                wire: WireId::new(0),
                from: VirtualTime::ZERO,
            },
        );
        assert_eq!(rx.try_iter().count(), 2);
        // But all data dies under drop_prob = 1.
        router.send(EngineId::new(0), data(1));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn partition_blocks_payload_but_not_control() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.set_partition(EngineId::new(0), true);
        router.send(EngineId::new(0), data(1));
        router.send(
            EngineId::new(0),
            Envelope::Heartbeat {
                engine: EngineId::new(0),
                seq: 0,
            },
        );
        let got: Vec<Envelope> = rx.try_iter().collect();
        assert_eq!(
            got,
            vec![Envelope::Heartbeat {
                engine: EngineId::new(0),
                seq: 0
            }],
            "partition drops data, control plane flows"
        );
        assert_eq!(router.partition_drops(), 1);

        router.set_partition(EngineId::new(0), false);
        router.send(EngineId::new(0), data(2));
        assert_eq!(rx.try_recv().unwrap(), data(2), "healed link delivers");
        assert_eq!(router.partition_drops(), 1);
    }

    #[test]
    fn latency_delays_but_delivers() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.set_latency(EngineId::new(0), std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        router.send(EngineId::new(0), data(1));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(rx.try_recv().unwrap(), data(1));
        router.set_latency(EngineId::new(0), std::time::Duration::ZERO);
        let t1 = std::time::Instant::now();
        router.send(EngineId::new(0), data(2));
        assert!(t1.elapsed() < std::time::Duration::from_millis(20));
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            dup_prob: 0.2,
            seed: 7,
        };
        let run = || {
            let router = Router::new(plan.clone());
            let (tx, rx) = unbounded();
            router.register(EngineId::new(0), tx);
            for i in 0..1_000 {
                router.send(EngineId::new(0), data(i));
            }
            rx.try_iter()
                .map(|e| match e {
                    Envelope::Data { vt, .. } => vt.as_ticks(),
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
