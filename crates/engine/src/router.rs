//! Inter-engine message routing with fault injection.
//!
//! # Hot path (DESIGN.md §18)
//!
//! The router is on every delivery path, so its read side is built around
//! an **epoch-swapped dense routing table**: an immutable [`RouteTable`]
//! snapshot (a dense `Vec` indexed by engine id plus three fixed sentinel
//! slots) behind a generation counter. Registration and failover build a
//! new snapshot and swap it in under a write lock; senders validate a
//! thread-local cached snapshot with **one atomic epoch load** and then
//! index straight into the slot — no hash, no lock, no allocation. Fault
//! and chaos machinery sits entirely behind a single `disturbed` flag:
//! when no fault plan or chaos schedule is armed, `send` never touches
//! either mutex.

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use tart_stats::DetRng;
use tart_vtime::EngineId;

/// Sentinel engine id under which the cluster supervisor registers: the
/// service that answers replay requests for *external* wires from the
/// message log.
pub(crate) const EXTERNAL_ENGINE: EngineId = EngineId::new(u32::MAX);

/// Sentinel engine id under which the liveness supervisor registers: the
/// inbox that collects [`Envelope::Heartbeat`] beacons and drives automatic
/// failover.
pub(crate) const SUPERVISOR_ENGINE: EngineId = EngineId::new(u32::MAX - 1);

/// Sentinel engine id under which the warm-standby plane registers: the
/// inbox that collects [`Envelope::StandbyCheckpoint`] and
/// [`Envelope::StandbyInput`] streams from every supervised primary. When
/// no standby plane is running, streamed envelopes to this id vanish
/// silently — replication is best-effort; the [`crate::ReplicaStore`]
/// remains the correctness path.
pub(crate) const STANDBY_ENGINE: EngineId = EngineId::new(u32::MAX - 2);

use crate::Envelope;

/// Dense-slot ceiling: engine ids below this index directly into the
/// snapshot's `Vec`; ids above it (other than the three sentinels) fall
/// into a small spill list so a pathological id can't balloon the table.
const DENSE_CAP: u32 = 1 << 16;

/// Link-fault injection plan: probabilistic drop and duplication of payload
/// traffic (Data/Silence envelopes), exercising the correctness criterion's
/// "link failures (causing loss, re-ordering, or duplication of messages
/// sent over physical links)" (§II.A).
///
/// Duplicated envelopes are delivered back-to-back; combined with drops on
/// retransmission paths this also produces effective re-ordering of silence
/// relative to data. Control-plane envelopes are never disturbed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability a faultable envelope is silently dropped.
    pub drop_prob: f64,
    /// Probability a faultable envelope is delivered twice.
    pub dup_prob: f64,
    /// Seed for the fault RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed: 0,
        }
    }

    /// Returns `true` if this plan can never disturb traffic.
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0
    }
}

/// One immutable routing snapshot: engine id → inbox sender. Snapshots are
/// never mutated after publication — registration builds a new one and
/// swaps it in, so a sender holding an older snapshot still sees a
/// consistent (if momentarily stale) view, exactly like an in-flight
/// packet routed by the previous forwarding table.
#[derive(Default)]
struct RouteTable {
    /// Dense slots indexed by raw engine id (`id < DENSE_CAP`).
    slots: Vec<Option<Sender<Envelope>>>,
    /// The three reserved high ids: EXTERNAL, SUPERVISOR, STANDBY.
    sentinels: [Option<Sender<Envelope>>; 3],
    /// Rare ids ≥ `DENSE_CAP` that aren't sentinels.
    spill: Vec<(EngineId, Sender<Envelope>)>,
}

/// Where an engine id lives inside a [`RouteTable`].
enum Slot {
    Dense(usize),
    Sentinel(usize),
    Spill,
}

fn slot_of(engine: EngineId) -> Slot {
    match engine.raw() {
        r if r == u32::MAX => Slot::Sentinel(0),
        r if r == u32::MAX - 1 => Slot::Sentinel(1),
        r if r == u32::MAX - 2 => Slot::Sentinel(2),
        r if r < DENSE_CAP => Slot::Dense(r as usize),
        _ => Slot::Spill,
    }
}

impl RouteTable {
    fn lookup(&self, engine: EngineId) -> Option<&Sender<Envelope>> {
        match slot_of(engine) {
            Slot::Dense(i) => self.slots.get(i).and_then(|s| s.as_ref()),
            Slot::Sentinel(i) => self.sentinels[i].as_ref(),
            Slot::Spill => self
                .spill
                .iter()
                .find(|(e, _)| *e == engine)
                .map(|(_, tx)| tx),
        }
    }

    /// A structural clone with `engine`'s slot replaced by `inbox`
    /// (`None` deregisters). Cloning a `Sender` is an `Arc` bump.
    fn with(&self, engine: EngineId, inbox: Option<Sender<Envelope>>) -> RouteTable {
        let mut next = RouteTable {
            slots: self.slots.clone(),
            sentinels: self.sentinels.clone(),
            spill: self.spill.clone(),
        };
        match slot_of(engine) {
            Slot::Dense(i) => {
                if next.slots.len() <= i {
                    next.slots.resize_with(i + 1, || None);
                }
                next.slots[i] = inbox;
            }
            Slot::Sentinel(i) => next.sentinels[i] = inbox,
            Slot::Spill => {
                next.spill.retain(|(e, _)| *e != engine);
                if let Some(tx) = inbox {
                    next.spill.push((engine, tx));
                }
            }
        }
        next
    }

    fn registered(&self) -> usize {
        self.slots.iter().flatten().count()
            + self.sentinels.iter().flatten().count()
            + self.spill.len()
    }
}

/// The swap side of the epoch protocol: writers build a new snapshot under
/// the write lock, publish it, then bump the epoch (release). Readers load
/// the epoch (acquire) and reuse their thread-local snapshot while it
/// matches; on a mismatch they take the read lock once to refresh. The
/// epoch bump *after* the table store means a reader can at worst observe
/// a table newer than its epoch — never older — so a matching epoch always
/// proves the cached snapshot is current.
struct RouteShared {
    epoch: AtomicU64,
    table: RwLock<Arc<RouteTable>>,
}

/// One per-thread cache entry: `(router identity, epoch, table)`. Holding
/// the `Arc<RouteShared>` keeps the identity allocation alive, so a pointer
/// match can never be an ABA false positive from a freed and reused address.
type RouteCacheEntry = (Arc<RouteShared>, u64, Arc<RouteTable>);

thread_local! {
    /// Per-thread snapshot caches, one entry per recently used router.
    static ROUTE_CACHE: RefCell<Vec<RouteCacheEntry>> = const { RefCell::new(Vec::new()) };
}

/// Cap on distinct routers cached per thread; tests build routers by the
/// hundred, and each entry pins its snapshot's senders until evicted.
const ROUTE_CACHE_CAP: usize = 4;

impl RouteShared {
    fn new() -> Arc<RouteShared> {
        Arc::new(RouteShared {
            epoch: AtomicU64::new(1),
            table: RwLock::new(Arc::new(RouteTable::default())),
        })
    }

    /// Runs `f` against the current snapshot via the thread-local cache:
    /// one atomic epoch load on a hit, one read-lock + `Arc` clone on a
    /// miss (first send on this thread, or a swap happened).
    fn with_table<R>(self: &Arc<Self>, f: impl FnOnce(&RouteTable) -> R) -> R {
        let epoch = self.epoch.load(Ordering::Acquire);
        ROUTE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            for (shared, cached_epoch, table) in cache.iter_mut() {
                if Arc::ptr_eq(shared, self) {
                    if *cached_epoch != epoch {
                        *table = Arc::clone(&self.table.read());
                        *cached_epoch = epoch;
                    }
                    return f(table);
                }
            }
            let table = Arc::clone(&self.table.read());
            let result = f(&table);
            if cache.len() >= ROUTE_CACHE_CAP {
                cache.remove(0);
            }
            cache.push((Arc::clone(self), epoch, table));
            result
        })
    }

    /// Publishes a snapshot derived from the current one by `edit`, then
    /// bumps the epoch so every cached snapshot invalidates.
    fn swap(&self, engine: EngineId, inbox: Option<Sender<Envelope>>) {
        let mut guard = self.table.write();
        *guard = Arc::new(guard.with(engine, inbox));
        drop(guard);
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// Routes envelopes to engine inboxes, with hot-swappable targets (failover
/// replaces a dead engine's inbox) and optional fault injection.
///
/// Cloneable and shared by every engine, injector and the failover manager.
#[derive(Clone)]
pub struct Router {
    routes: Arc<RouteShared>,
    faults: Arc<Mutex<FaultState>>,
    /// Armed-flag fast path: true iff the fault plan can disturb traffic
    /// **or** any partition/latency chaos is scheduled. While false,
    /// `send` touches neither the fault nor the chaos mutex.
    disturbed: Arc<AtomicBool>,
    /// True iff the (construction-time, immutable) fault plan is not a
    /// no-op; folded into `disturbed` whenever the chaos schedule changes.
    faults_armed: bool,
    /// Fast-path guard: set whenever any partition or latency injection is
    /// configured, so fault-free sends never take the chaos lock.
    chaos_active: Arc<AtomicBool>,
    chaos: Arc<Mutex<ChaosState>>,
}

struct FaultState {
    plan: FaultPlan,
    rng: DetRng,
    dropped: u64,
    duplicated: u64,
}

/// Scheduled link disturbance toward one engine (chaos harness).
#[derive(Clone, Copy, Default)]
struct LinkChaos {
    partitioned: bool,
    latency: Duration,
}

#[derive(Default)]
struct ChaosState {
    links: HashMap<EngineId, LinkChaos>,
    partition_drops: u64,
}

impl Router {
    /// Creates a router with the given fault plan.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = DetRng::seed_from(plan.seed);
        let faults_armed = !plan.is_noop();
        Router {
            routes: RouteShared::new(),
            faults: Arc::new(Mutex::new(FaultState {
                plan,
                rng,
                dropped: 0,
                duplicated: 0,
            })),
            disturbed: Arc::new(AtomicBool::new(faults_armed)),
            faults_armed,
            chaos_active: Arc::new(AtomicBool::new(false)),
            chaos: Arc::new(Mutex::new(ChaosState::default())),
        }
    }

    /// Registers (or replaces, during failover) the inbox of `engine` by
    /// publishing a new routing snapshot.
    pub fn register(&self, engine: EngineId, inbox: Sender<Envelope>) {
        self.routes.swap(engine, Some(inbox));
    }

    /// Removes an engine's inbox (its channel closes once the engine thread
    /// drops the receiver). Subsequent sends to it vanish — exactly the
    /// fail-stop message-loss semantics.
    pub fn deregister(&self, engine: EngineId) {
        self.routes.swap(engine, None);
    }

    /// Sends `env` to `engine`. Envelopes to unknown/dead engines are
    /// dropped silently (in-transit loss at failure). Faultable envelopes
    /// pass through the fault plan and any active partition/latency chaos;
    /// control-plane traffic is never disturbed.
    ///
    /// Fast path: when nothing is armed (the overwhelmingly common case),
    /// this is one atomic load for the armed flag, one for the routing
    /// epoch, and an indexed slot read — no locks, no hashing, and the
    /// envelope is moved, never cloned.
    pub fn send(&self, engine: EngineId, env: Envelope) {
        if self.disturbed.load(Ordering::Relaxed) && env.faultable() {
            self.send_disturbed(engine, env);
        } else {
            self.raw_send(engine, env);
        }
    }

    /// The slow path: chaos schedule (partition/latency) then the fault
    /// plan (drop/duplicate). Only entered while something is armed.
    #[cold]
    fn send_disturbed(&self, engine: EngineId, env: Envelope) {
        if self.chaos_active.load(Ordering::Relaxed) {
            let delay = {
                let mut c = self.chaos.lock();
                let link = c.links.get(&engine).copied().unwrap_or_default();
                if link.partitioned {
                    c.partition_drops += 1;
                    return;
                }
                link.latency
            };
            if !delay.is_zero() {
                // Sender-side stall: the paying cost lands on the
                // sending engine, like a congested egress link.
                std::thread::sleep(delay);
            }
        }
        if self.faults_armed {
            let mut f = self.faults.lock();
            let roll = f.rng.next_f64();
            if roll < f.plan.drop_prob {
                f.dropped += 1;
                return;
            }
            if roll < f.plan.drop_prob + f.plan.dup_prob {
                f.duplicated += 1;
                drop(f);
                // The only clone in the router: a duplicate that is
                // actually delivered twice.
                self.raw_send(engine, env.clone());
                self.raw_send(engine, env);
                return;
            }
        }
        self.raw_send(engine, env);
    }

    /// Starts or stops dropping payload traffic toward `engine` — a
    /// one-directional link partition. Control-plane envelopes (heartbeats,
    /// replay coordination) still flow, so a partition causes message loss
    /// that gap detection must recover, never a spurious failover.
    pub fn set_partition(&self, engine: EngineId, active: bool) {
        let mut c = self.chaos.lock();
        c.links.entry(engine).or_default().partitioned = active;
        self.refresh_chaos_flag(&c);
    }

    /// Sets an artificial sender-side delay on payload traffic toward
    /// `engine` ([`Duration::ZERO`] clears it).
    pub fn set_latency(&self, engine: EngineId, delay: Duration) {
        let mut c = self.chaos.lock();
        c.links.entry(engine).or_default().latency = delay;
        self.refresh_chaos_flag(&c);
    }

    fn refresh_chaos_flag(&self, c: &ChaosState) {
        let active = c
            .links
            .values()
            .any(|l| l.partitioned || !l.latency.is_zero());
        self.chaos_active.store(active, Ordering::Relaxed);
        self.disturbed
            .store(active || self.faults_armed, Ordering::Relaxed);
    }

    /// Number of payload envelopes dropped by link partitions.
    pub fn partition_drops(&self) -> u64 {
        self.chaos.lock().partition_drops
    }

    fn raw_send(&self, engine: EngineId, env: Envelope) {
        self.routes.with_table(|t| {
            if let Some(tx) = t.lookup(engine) {
                // A closed channel means the engine died between lookup and
                // send: the message is lost in transit, which replay covers.
                let _ = tx.send(env);
            }
        });
    }

    /// `(dropped, duplicated)` counts from the fault injector.
    pub fn fault_counts(&self) -> (u64, u64) {
        let f = self.faults.lock();
        (f.dropped, f.duplicated)
    }

    /// Whether `engine` currently has a registered inbox.
    pub fn is_registered(&self, engine: EngineId) -> bool {
        self.routes.with_table(|t| t.lookup(engine).is_some())
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("engines", &self.routes.with_table(|t| t.registered()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use tart_model::Value;
    use tart_vtime::{VirtualTime, WireId};

    fn data(n: u64) -> Envelope {
        Envelope::Data {
            wire: WireId::new(0),
            vt: VirtualTime::from_ticks(n),
            prev_vt: VirtualTime::ZERO,
            payload: Value::I64(n as i64),
        }
    }

    #[test]
    fn routes_to_registered_engine() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        assert!(router.is_registered(EngineId::new(0)));
        router.send(EngineId::new(0), data(1));
        assert_eq!(rx.try_recv().unwrap(), data(1));
    }

    #[test]
    fn unknown_engine_drops_silently() {
        let router = Router::new(FaultPlan::none());
        router.send(EngineId::new(9), data(1));
        assert!(!router.is_registered(EngineId::new(9)));
    }

    #[test]
    fn sentinel_ids_route_without_bloating_the_dense_table() {
        let router = Router::new(FaultPlan::none());
        for sentinel in [EXTERNAL_ENGINE, SUPERVISOR_ENGINE, STANDBY_ENGINE] {
            let (tx, rx) = unbounded();
            router.register(sentinel, tx);
            router.send(sentinel, data(7));
            assert_eq!(rx.try_recv().unwrap(), data(7));
            router.deregister(sentinel);
            assert!(!router.is_registered(sentinel));
        }
    }

    #[test]
    fn spill_ids_above_the_dense_cap_still_route() {
        let router = Router::new(FaultPlan::none());
        let odd = EngineId::new(DENSE_CAP + 17);
        let (tx, rx) = unbounded();
        router.register(odd, tx);
        assert!(router.is_registered(odd));
        router.send(odd, data(3));
        assert_eq!(rx.try_recv().unwrap(), data(3));
        router.deregister(odd);
        router.send(odd, data(4));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn deregister_then_send_loses_message() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.deregister(EngineId::new(0));
        router.send(EngineId::new(0), data(1));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn register_swaps_inbox_for_failover() {
        let router = Router::new(FaultPlan::none());
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        router.register(EngineId::new(0), tx1);
        router.register(EngineId::new(0), tx2);
        router.send(EngineId::new(0), data(1));
        assert!(rx1.try_recv().is_err(), "old inbox no longer receives");
        assert_eq!(rx2.try_recv().unwrap(), data(1));
    }

    #[test]
    fn reregistration_mid_traffic_lands_on_the_new_inbox() {
        // Failover regression: a sender thread is mid-stream when the
        // failover manager swaps the inbox. Everything sent after the swap
        // (established by a rendezvous channel, so the swap happens-before
        // the second half) must land on the new inbox only.
        let router = Router::new(FaultPlan::none());
        let (tx1, rx1) = unbounded();
        router.register(EngineId::new(0), tx1);

        let (first_half_done_tx, first_half_done_rx) = unbounded::<()>();
        let (swapped_tx, swapped_rx) = unbounded::<()>();
        let sender_router = router.clone();
        let sender = std::thread::spawn(move || {
            for i in 0..500 {
                sender_router.send(EngineId::new(0), data(i));
            }
            first_half_done_tx.send(()).unwrap();
            swapped_rx.recv().unwrap();
            for i in 500..1000 {
                sender_router.send(EngineId::new(0), data(i));
            }
        });

        first_half_done_rx.recv().unwrap();
        let (tx2, rx2) = unbounded();
        router.register(EngineId::new(0), tx2);
        swapped_tx.send(()).unwrap();
        sender.join().unwrap();

        let old: Vec<Envelope> = rx1.try_iter().collect();
        let new: Vec<Envelope> = rx2.try_iter().collect();
        assert_eq!(old.len(), 500, "first half lands on the original inbox");
        assert_eq!(new.len(), 500, "second half all lands on the new inbox");
        assert_eq!(new[0], data(500), "nothing from the first half leaked");
        assert_eq!(
            old.len() + new.len(),
            1000,
            "the swap neither drops nor duplicates"
        );
    }

    #[test]
    fn fault_plan_drops_and_duplicates_statistically() {
        let plan = FaultPlan {
            drop_prob: 0.2,
            dup_prob: 0.1,
            seed: 42,
        };
        let router = Router::new(plan);
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        let n = 10_000;
        for i in 0..n {
            router.send(EngineId::new(0), data(i));
        }
        let received = rx.try_iter().count() as f64;
        let (dropped, duplicated) = router.fault_counts();
        assert!(dropped > 0 && duplicated > 0);
        // Expected: n * (1 - 0.2 + 0.1) = 0.9 n.
        let expect = n as f64 * 0.9;
        assert!(
            (received - expect).abs() < expect * 0.1,
            "received {received} vs expected {expect}"
        );
    }

    #[test]
    fn control_traffic_is_never_faulted() {
        let plan = FaultPlan {
            drop_prob: 1.0,
            dup_prob: 0.0,
            seed: 1,
        };
        let router = Router::new(plan);
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.send(EngineId::new(0), Envelope::Checkpoint);
        router.send(
            EngineId::new(0),
            Envelope::ReplayRequest {
                wire: WireId::new(0),
                from: VirtualTime::ZERO,
            },
        );
        assert_eq!(rx.try_iter().count(), 2);
        // But all data dies under drop_prob = 1.
        router.send(EngineId::new(0), data(1));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn partition_blocks_payload_but_not_control() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.set_partition(EngineId::new(0), true);
        router.send(EngineId::new(0), data(1));
        router.send(
            EngineId::new(0),
            Envelope::Heartbeat {
                engine: EngineId::new(0),
                seq: 0,
            },
        );
        let got: Vec<Envelope> = rx.try_iter().collect();
        assert_eq!(
            got,
            vec![Envelope::Heartbeat {
                engine: EngineId::new(0),
                seq: 0
            }],
            "partition drops data, control plane flows"
        );
        assert_eq!(router.partition_drops(), 1);

        router.set_partition(EngineId::new(0), false);
        router.send(EngineId::new(0), data(2));
        assert_eq!(rx.try_recv().unwrap(), data(2), "healed link delivers");
        assert_eq!(router.partition_drops(), 1);
    }

    #[test]
    fn latency_delays_but_delivers() {
        let router = Router::new(FaultPlan::none());
        let (tx, rx) = unbounded();
        router.register(EngineId::new(0), tx);
        router.set_latency(EngineId::new(0), std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        router.send(EngineId::new(0), data(1));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(rx.try_recv().unwrap(), data(1));
        router.set_latency(EngineId::new(0), std::time::Duration::ZERO);
        let t1 = std::time::Instant::now();
        router.send(EngineId::new(0), data(2));
        assert!(t1.elapsed() < std::time::Duration::from_millis(20));
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            dup_prob: 0.2,
            seed: 7,
        };
        let run = || {
            let router = Router::new(plan.clone());
            let (tx, rx) = unbounded();
            router.register(EngineId::new(0), tx);
            for i in 0..1_000 {
                router.send(EngineId::new(0), data(i));
            }
            rx.try_iter()
                .map(|e| match e {
                    Envelope::Data { vt, .. } => vt.as_ticks(),
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
