//! The on-disk checkpoint store.
//!
//! Checkpoints are the replay starting points; replay is only as available
//! as they are. The in-memory [`crate::ReplicaStore`] covers single-engine
//! failures, this store covers the rest: each persisted
//! [`EngineCheckpoint`] becomes a **generation** — a CRC-framed file
//! written to a temp name, fsynced, then atomically renamed — and a CRC'd
//! **manifest** records, per engine, the generations that exist, newest
//! last. The store keeps the last two generations per engine so that if the
//! newest fails verification at recovery time, [`CheckpointStore::load_latest`]
//! falls back one generation and reports it. If the manifest itself is
//! unreadable it is rebuilt from the directory listing.
//!
//! Determinism faults (§II.G.4) are logged synchronously to an append-only
//! CRC-framed file per engine, fsynced per record, because a re-calibrated
//! estimator must never outlive its fault record.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use tart_codec::{crc32, Decode, Encode};
use tart_estimator::DeterminismFault;
use tart_vtime::{ComponentId, EngineId};

use crate::checkpoint::EngineCheckpoint;
use crate::wal::{scan_segment, sync_dir, FRAME_HEADER};

const MANIFEST: &str = "MANIFEST";
/// Generations kept per engine. Two, so one can be corrupt and recovery
/// still succeeds — which is also why `TrimAck`s lag one generation.
pub(crate) const KEPT_GENERATIONS: usize = 2;

/// Errors from the checkpoint store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A persisted artifact failed verification beyond repair.
    Corrupt {
        /// What failed (file name or description).
        what: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint store i/o failed: {e}"),
            StoreError::Corrupt { what } => write!(f, "checkpoint store corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A checkpoint loaded back from disk.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedCheckpoint {
    /// Generation number the checkpoint was read from.
    pub generation: u64,
    /// Whether the newest generation failed verification and this is the
    /// previous one.
    pub fell_back: bool,
    /// The checkpoint itself.
    pub checkpoint: EngineCheckpoint,
}

/// Write-temp + fsync + atomic-rename durable checkpoint storage with a
/// CRC'd generation manifest.
///
/// Shared freely (`Clone`); all methods take `&self`.
pub struct CheckpointStore {
    dir: PathBuf,
    /// engine raw id → generation numbers, oldest first, newest last.
    manifest: Mutex<BTreeMap<u32, Vec<u64>>>,
    /// engine raw id → open fault-log file handle.
    fault_logs: Mutex<BTreeMap<u32, File>>,
}

fn ckpt_name(engine: u32, generation: u64) -> String {
    format!("ckpt-e{engine:04}-g{generation:08}.bin")
}

fn fault_log_name(engine: u32) -> String {
    format!("faults-e{engine:04}.log")
}

/// Frames `body` as `u32 len | u32 crc | body` (the repo-wide on-disk frame).
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + FRAME_HEADER);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes `bytes` to `path` durably: temp file in the same directory,
/// fsync, rename over the target, fsync the directory.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)?;
    Ok(())
}

impl CheckpointStore {
    /// Opens (creating if absent) a checkpoint store rooted at `dir`.
    ///
    /// Reads the manifest if present; if the manifest is missing or fails
    /// its CRC, rebuilds it from the checkpoint files actually on disk
    /// (rename is atomic, so every `ckpt-*.bin` is either fully present or
    /// absent — the listing is trustworthy even after a crash).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created or
    /// read.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let manifest = match read_manifest(&dir.join(MANIFEST)) {
            Some(m) => m,
            None => rebuild_manifest(&dir)?,
        };
        Ok(CheckpointStore {
            dir,
            manifest: Mutex::new(manifest),
            fault_logs: Mutex::new(BTreeMap::new()),
        })
    }

    /// True if the store holds no checkpoint for any engine.
    pub fn is_empty(&self) -> bool {
        self.manifest.lock().values().all(Vec::is_empty)
    }

    /// Engines with at least one persisted generation.
    pub fn engines(&self) -> Vec<EngineId> {
        self.manifest
            .lock()
            .iter()
            .filter(|(_, gens)| !gens.is_empty())
            .map(|(e, _)| EngineId::new(*e))
            .collect()
    }

    /// Generation numbers currently kept for `engine`, oldest first.
    pub fn generations(&self, engine: EngineId) -> Vec<u64> {
        self.manifest
            .lock()
            .get(&engine.raw())
            .cloned()
            .unwrap_or_default()
    }

    /// Persists `ckpt` as a new generation for its engine: checkpoint file
    /// written atomically, manifest updated atomically, generations beyond
    /// [`KEPT_GENERATIONS`] pruned. Returns the new generation number.
    ///
    /// On return the checkpoint is durable — this is the moment a
    /// durability-gated `TrimAck` may be emitted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if any write, fsync or rename fails; the
    /// previous generation remains the manifest's newest in that case.
    pub fn persist(&self, ckpt: &EngineCheckpoint) -> Result<u64, StoreError> {
        let engine = ckpt.engine.raw();
        let mut manifest = self.manifest.lock();
        let gens = manifest.entry(engine).or_default();
        let generation = gens.last().map_or(0, |g| g + 1);
        let path = self.dir.join(ckpt_name(engine, generation));
        write_atomic(&self.dir, &path, &frame(&ckpt.to_bytes()))?;
        gens.push(generation);
        let expired: Vec<u64> = if gens.len() > KEPT_GENERATIONS {
            gens.drain(..gens.len() - KEPT_GENERATIONS).collect()
        } else {
            Vec::new()
        };
        write_manifest(&self.dir, &manifest)?;
        // Prune only after the manifest no longer references the old
        // generations; a crash between the two steps leaves harmless
        // unreferenced files that the next rebuild ignores or re-adopts.
        for g in expired {
            fs::remove_file(self.dir.join(ckpt_name(engine, g))).ok();
        }
        Ok(generation)
    }

    /// Loads the newest generation for `engine` that passes verification,
    /// falling back at most one generation. `Ok(None)` when the engine has
    /// no generations at all.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when every kept generation fails
    /// verification, or [`StoreError::Io`] on read failure.
    pub fn load_latest(&self, engine: EngineId) -> Result<Option<LoadedCheckpoint>, StoreError> {
        let gens = self.generations(engine);
        if gens.is_empty() {
            return Ok(None);
        }
        for (attempt, &generation) in gens.iter().rev().take(KEPT_GENERATIONS).enumerate() {
            let path = self.dir.join(ckpt_name(engine.raw(), generation));
            if let Some(checkpoint) = read_framed_checkpoint(&path) {
                return Ok(Some(LoadedCheckpoint {
                    generation,
                    fell_back: attempt > 0,
                    checkpoint,
                }));
            }
        }
        Err(StoreError::Corrupt {
            what: format!("all kept checkpoint generations for {engine} failed verification"),
        })
    }

    /// Synchronously logs a determinism fault for `engine`: CRC-framed,
    /// appended, fsynced before returning.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the append or fsync fails.
    pub fn log_fault(
        &self,
        engine: EngineId,
        component: ComponentId,
        fault: &DeterminismFault,
    ) -> Result<(), StoreError> {
        let mut logs = self.fault_logs.lock();
        let file = match logs.entry(engine.raw()) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(fault_log_name(engine.raw())))?,
            ),
        };
        let body = (component, fault.clone()).to_bytes();
        file.write_all(&frame(&body))?;
        file.sync_all()?;
        Ok(())
    }

    /// All durably logged determinism faults for `engine`, oldest first.
    /// The log is scanned like a WAL tail: records up to the first invalid
    /// frame are kept (a torn final append is the expected crash artifact);
    /// the rest are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if a CRC-valid record fails to
    /// decode, or [`StoreError::Io`] on read failure.
    pub fn faults(
        &self,
        engine: EngineId,
    ) -> Result<Vec<(ComponentId, DeterminismFault)>, StoreError> {
        let path = self.dir.join(fault_log_name(engine.raw()));
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => f.read_to_end(&mut bytes).map(|_| ())?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let scan = scan_segment(&bytes);
        let mut out = Vec::with_capacity(scan.records.len());
        for body in &scan.records {
            let rec = <(ComponentId, DeterminismFault)>::from_bytes(body).map_err(|e| {
                StoreError::Corrupt {
                    what: format!("fault log record for {engine}: {e}"),
                }
            })?;
            out.push(rec);
        }
        Ok(out)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("manifest", &*self.manifest.lock())
            .finish()
    }
}

/// Reads and verifies the manifest; `None` means missing or corrupt (the
/// caller rebuilds from the directory listing).
fn read_manifest(path: &Path) -> Option<BTreeMap<u32, Vec<u64>>> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if FRAME_HEADER + len != bytes.len() {
        return None;
    }
    let body = &bytes[FRAME_HEADER..];
    if crc32(body) != crc {
        return None;
    }
    BTreeMap::<u32, Vec<u64>>::from_bytes(body).ok()
}

fn write_manifest(dir: &Path, manifest: &BTreeMap<u32, Vec<u64>>) -> Result<(), StoreError> {
    write_atomic(dir, &dir.join(MANIFEST), &frame(&manifest.to_bytes()))
}

/// Reconstructs the manifest from the `ckpt-*.bin` files present, keeping
/// the newest [`KEPT_GENERATIONS`] per engine.
fn rebuild_manifest(dir: &Path) -> Result<BTreeMap<u32, Vec<u64>>, StoreError> {
    let mut manifest: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some((engine, generation)) = parse_ckpt_name(&name) {
            manifest.entry(engine).or_default().push(generation);
        }
    }
    for gens in manifest.values_mut() {
        gens.sort_unstable();
        if gens.len() > KEPT_GENERATIONS {
            gens.drain(..gens.len() - KEPT_GENERATIONS);
        }
    }
    Ok(manifest)
}

/// Parses `ckpt-e0001-g00000002.bin` → `(1, 2)`.
fn parse_ckpt_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("ckpt-e")?.strip_suffix(".bin")?;
    let (engine, generation) = rest.split_once("-g")?;
    Some((engine.parse().ok()?, generation.parse().ok()?))
}

/// Reads a CRC-framed checkpoint file; `None` on any verification failure
/// (the caller falls back a generation).
fn read_framed_checkpoint(path: &Path) -> Option<EngineCheckpoint> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if FRAME_HEADER + len != bytes.len() {
        return None;
    }
    let body = &bytes[FRAME_HEADER..];
    if crc32(body) != crc {
        return None;
    }
    EngineCheckpoint::from_bytes(body).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_estimator::EstimatorSpec;
    use tart_model::{BlockId, Snapshot, StateChunk};
    use tart_vtime::{VirtualTime, WireId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tart-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn sample(engine: u32, seq: u64) -> EngineCheckpoint {
        let mut ckpt = EngineCheckpoint::new(EngineId::new(engine), seq);
        let mut snap = Snapshot::new(vt(seq * 10));
        snap.put("state", StateChunk::Full(vec![seq as u8; 4]));
        ckpt.components.insert(ComponentId::new(0), snap);
        ckpt.clocks.insert(ComponentId::new(0), vt(seq * 10));
        ckpt.consumed.insert(WireId::new(1), vt(seq * 10));
        ckpt
    }

    #[test]
    fn persist_and_reload() {
        let dir = tmp("reload");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.persist(&sample(1, 0)).unwrap(), 0);
        assert_eq!(store.persist(&sample(1, 1)).unwrap(), 1);
        assert_eq!(store.engines(), vec![EngineId::new(1)]);

        // A fresh open (new process) sees the same state via the manifest.
        let store = CheckpointStore::open(&dir).unwrap();
        let loaded = store.load_latest(EngineId::new(1)).unwrap().unwrap();
        assert_eq!(loaded.generation, 1);
        assert!(!loaded.fell_back);
        assert_eq!(loaded.checkpoint, sample(1, 1));
        assert_eq!(store.load_latest(EngineId::new(9)).unwrap(), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_generations_are_pruned() {
        let dir = tmp("prune");
        let store = CheckpointStore::open(&dir).unwrap();
        for seq in 0..5 {
            store.persist(&sample(0, seq)).unwrap();
        }
        assert_eq!(store.generations(EngineId::new(0)), vec![3, 4]);
        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().to_string_lossy().into_owned();
                n.starts_with("ckpt-").then_some(n)
            })
            .collect();
        assert_eq!(
            files.len(),
            KEPT_GENERATIONS,
            "pruned to kept set: {files:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_generation_falls_back_one() {
        let dir = tmp("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(2, 0)).unwrap();
        store.persist(&sample(2, 1)).unwrap();
        // Flip a byte in the newest generation's body.
        let newest = dir.join(ckpt_name(2, 1));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        let loaded = store.load_latest(EngineId::new(2)).unwrap().unwrap();
        assert!(loaded.fell_back, "newest failed, previous served");
        assert_eq!(loaded.generation, 0);
        assert_eq!(loaded.checkpoint, sample(2, 0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_corrupt_is_an_error() {
        let dir = tmp("allbad");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(0, 0)).unwrap();
        store.persist(&sample(0, 1)).unwrap();
        for g in 0..2 {
            let path = dir.join(ckpt_name(0, g));
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            fs::write(&path, &bytes).unwrap();
        }
        assert!(matches!(
            store.load_latest(EngineId::new(0)),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_rebuilt_from_directory() {
        let dir = tmp("manifest");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(3, 0)).unwrap();
        store.persist(&sample(3, 1)).unwrap();
        // Stomp the manifest.
        fs::write(dir.join(MANIFEST), b"not a manifest at all").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let loaded = store.load_latest(EngineId::new(3)).unwrap().unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.checkpoint, sample(3, 1));
        // Missing manifest rebuilds too.
        fs::remove_file(dir.join(MANIFEST)).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.generations(EngineId::new(3)), vec![0, 1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_log_round_trips_and_tolerates_torn_tail() {
        let dir = tmp("faults");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(0);
        assert!(store.faults(e).unwrap().is_empty());
        let f1 = DeterminismFault {
            vt: vt(500),
            new_spec: EstimatorSpec::per_iteration(BlockId(0), 70_000),
        };
        let f2 = DeterminismFault {
            vt: vt(900),
            new_spec: EstimatorSpec::per_iteration(BlockId(1), 80_000),
        };
        store.log_fault(e, ComponentId::new(4), &f1).unwrap();
        store.log_fault(e, ComponentId::new(5), &f2).unwrap();
        let got = store.faults(e).unwrap();
        assert_eq!(
            got,
            vec![(ComponentId::new(4), f1.clone()), (ComponentId::new(5), f2)]
        );

        // Tear the final record: it is discarded, the first survives.
        let path = dir.join(fault_log_name(0));
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let store = CheckpointStore::open(&dir).unwrap();
        let got = store.faults(e).unwrap();
        assert_eq!(got, vec![(ComponentId::new(4), f1)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiple_engines_are_independent() {
        let dir = tmp("multi");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(0, 0)).unwrap();
        store.persist(&sample(1, 0)).unwrap();
        store.persist(&sample(1, 1)).unwrap();
        assert_eq!(store.generations(EngineId::new(0)), vec![0]);
        assert_eq!(store.generations(EngineId::new(1)), vec![0, 1]);
        assert_eq!(store.engines(), vec![EngineId::new(0), EngineId::new(1)]);
        assert!(format!("{store:?}").contains("CheckpointStore"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display() {
        let e = StoreError::Corrupt { what: "x".into() };
        assert!(e.to_string().contains("corrupt"));
        let e = StoreError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
