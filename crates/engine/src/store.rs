//! The on-disk checkpoint store.
//!
//! Checkpoints are the replay starting points; replay is only as available
//! as they are. The in-memory [`crate::ReplicaStore`] covers single-engine
//! failures, this store covers the rest: each persisted
//! [`EngineCheckpoint`] becomes a **generation** — a CRC-framed file
//! written to a temp name, fsynced, then atomically renamed — and a CRC'd
//! **manifest** records, per engine, the generations that exist, newest
//! last.
//!
//! A generation is either **full** (self-contained: every component
//! snapshot restores alone) or a **delta** against the chain since the
//! previous full (`-d` filename suffix; the manifest wire format is
//! unchanged). [`CheckpointStore::load_chain`] reconstructs the newest
//! restorable chain — one full head plus its verified deltas, oldest
//! first — truncating at the first damaged delta and falling back to the
//! previous full chain when a full itself is damaged (DESIGN.md §13). The
//! store keeps generations back through the [`KEPT_GENERATIONS`]-th-newest
//! full, so a whole chain can rot and recovery still succeeds. If the
//! manifest is unreadable it is rebuilt from the directory listing.
//!
//! Determinism faults (§II.G.4) are logged synchronously to an append-only
//! CRC-framed file per engine, fsynced per record, because a re-calibrated
//! estimator must never outlive its fault record.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use tart_codec::{crc32, Decode, Encode};
use tart_estimator::DeterminismFault;
use tart_vtime::{ComponentId, EngineId};

use tart_model::StateHash;

use crate::checkpoint::EngineCheckpoint;
use crate::wal::{scan_segment, sync_dir, FRAME_HEADER};

const MANIFEST: &str = "MANIFEST";
/// Full checkpoint chains kept per engine (each full plus its trailing
/// deltas). Two, so one whole chain can be corrupt and recovery still
/// succeeds — which is also why `TrimAck`s lag one *full* generation.
pub(crate) const KEPT_GENERATIONS: usize = 2;

/// Errors from the checkpoint store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A persisted artifact failed verification beyond repair.
    Corrupt {
        /// What failed (file name or description).
        what: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint store i/o failed: {e}"),
            StoreError::Corrupt { what } => write!(f, "checkpoint store corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A checkpoint loaded back from disk.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedCheckpoint {
    /// Generation number the checkpoint was read from.
    pub generation: u64,
    /// Whether the newest generation failed verification and this is the
    /// previous one.
    pub fell_back: bool,
    /// The checkpoint itself.
    pub checkpoint: EngineCheckpoint,
}

/// A restorable checkpoint chain loaded back from disk: one full head
/// followed by every verified delta against it, oldest first. Restoring
/// applies the snapshots in order (the replica chain does the same).
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedChain {
    /// Newest generation number included in the chain.
    pub generation: u64,
    /// True when the chain stops short of the engine's newest persisted
    /// generation (a damaged delta truncated it, or a damaged full forced
    /// fallback to the previous full chain).
    pub fell_back: bool,
    /// The checkpoints to apply, oldest first; the head is always full.
    pub chain: Vec<EngineCheckpoint>,
}

/// The in-memory view of what exists on disk, all under one lock.
#[derive(Default)]
struct Index {
    /// engine raw id → all generation numbers, oldest first, newest last.
    gens: BTreeMap<u32, Vec<u64>>,
    /// engine raw id → the subset of generations that are full
    /// (self-contained) checkpoints, ascending.
    fulls: BTreeMap<u32, Vec<u64>>,
}

/// Write-temp + fsync + atomic-rename durable checkpoint storage with a
/// CRC'd generation manifest.
///
/// Shared freely (`Clone`); all methods take `&self`.
pub struct CheckpointStore {
    dir: PathBuf,
    index: Mutex<Index>,
    /// engine raw id → open fault-log file handle.
    fault_logs: Mutex<BTreeMap<u32, File>>,
    /// Observability hub; persist latency lands in its histogram. The
    /// store is on the ops plane, so timing here keeps the engine core
    /// free of wall-clock reads.
    obs: Mutex<Option<std::sync::Arc<tart_obs::ObsHub>>>,
}

fn ckpt_name(engine: u32, generation: u64) -> String {
    format!("ckpt-e{engine:04}-g{generation:08}.bin")
}

/// Delta generations carry a `-d` marker so the kind survives a manifest
/// rebuild (the manifest wire format itself only stores numbers).
fn delta_ckpt_name(engine: u32, generation: u64) -> String {
    format!("ckpt-e{engine:04}-g{generation:08}-d.bin")
}

fn ckpt_file_name(engine: u32, generation: u64, is_full: bool) -> String {
    if is_full {
        ckpt_name(engine, generation)
    } else {
        delta_ckpt_name(engine, generation)
    }
}

fn fault_log_name(engine: u32) -> String {
    format!("faults-e{engine:04}.log")
}

/// Frames `body` as `u32 len | u32 crc | body` (the repo-wide on-disk frame).
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + FRAME_HEADER);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes `bytes` to `path` durably: temp file in the same directory,
/// fsync, rename over the target, fsync the directory.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    write_atomic_with(dir, path, bytes, true)
}

/// [`write_atomic`] with the fsyncs optional: `sync = false` keeps the
/// temp-file-then-rename atomicity (a reader never sees a torn file) but
/// lets the kernel schedule the writeback — the Buffered durability tier's
/// checkpoint persist, which trades a machine-crash window for not paying
/// two fsyncs per generation. Process crashes lose nothing either way:
/// renamed data survives the process.
fn write_atomic_with(dir: &Path, path: &Path, bytes: &[u8], sync: bool) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, path)?;
    if sync {
        sync_dir(dir)?;
    }
    Ok(())
}

impl CheckpointStore {
    /// Opens (creating if absent) a checkpoint store rooted at `dir`.
    ///
    /// Reads the manifest if present; if the manifest is missing or fails
    /// its CRC, rebuilds it from the checkpoint files actually on disk
    /// (rename is atomic, so every `ckpt-*.bin` is either fully present or
    /// absent — the listing is trustworthy even after a crash).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created or
    /// read.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Generation kinds (full vs delta) live in the filenames, so the
        // listing is scanned either way; the manifest only contributes the
        // authoritative generation list when it verifies.
        let (listed_gens, listed_fulls) = scan_ckpt_files(&dir)?;
        let index = match read_manifest(&dir.join(MANIFEST)) {
            Some(gens) => {
                let mut fulls = listed_fulls;
                for (engine, f) in fulls.iter_mut() {
                    let known = gens.get(engine).cloned().unwrap_or_default();
                    f.retain(|g| known.binary_search(g).is_ok());
                }
                Index { gens, fulls }
            }
            None => rebuilt_index(listed_gens, listed_fulls),
        };
        Ok(CheckpointStore {
            dir,
            index: Mutex::new(index),
            fault_logs: Mutex::new(BTreeMap::new()),
            obs: Mutex::new(None),
        })
    }

    /// Attaches the observability hub; subsequent [`CheckpointStore::persist`]
    /// calls record their latency in its checkpoint-persist histogram.
    pub fn set_obs(&self, hub: std::sync::Arc<tart_obs::ObsHub>) {
        *self.obs.lock() = Some(hub);
    }

    /// True if the store holds no checkpoint for any engine.
    pub fn is_empty(&self) -> bool {
        self.index.lock().gens.values().all(Vec::is_empty)
    }

    /// Engines with at least one persisted generation.
    pub fn engines(&self) -> Vec<EngineId> {
        self.index
            .lock()
            .gens
            .iter()
            .filter(|(_, gens)| !gens.is_empty())
            .map(|(e, _)| EngineId::new(*e))
            .collect()
    }

    /// Generation numbers currently kept for `engine`, oldest first.
    pub fn generations(&self, engine: EngineId) -> Vec<u64> {
        self.index
            .lock()
            .gens
            .get(&engine.raw())
            .cloned()
            .unwrap_or_default()
    }

    /// The subset of kept generations that are full (self-contained)
    /// checkpoints, oldest first.
    pub fn full_generations(&self, engine: EngineId) -> Vec<u64> {
        self.index
            .lock()
            .fulls
            .get(&engine.raw())
            .cloned()
            .unwrap_or_default()
    }

    /// Persists `ckpt` as a new generation for its engine: checkpoint file
    /// written atomically, manifest updated atomically, generations older
    /// than the [`KEPT_GENERATIONS`]-th-newest full pruned. Whether the
    /// generation is full or a delta is derived from the checkpoint itself
    /// ([`EngineCheckpoint::is_self_contained`]) and recorded in the file
    /// name. Returns the new generation number.
    ///
    /// On return the checkpoint is durable — this is the moment a
    /// durability-gated `TrimAck` may be emitted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if any write, fsync or rename fails (the
    /// previous generation remains the manifest's newest in that case), or
    /// [`StoreError::Corrupt`] for a delta with no full base on disk —
    /// such a generation could never restore.
    pub fn persist(&self, ckpt: &EngineCheckpoint) -> Result<u64, StoreError> {
        self.persist_with(ckpt, true)
    }

    /// [`CheckpointStore::persist`] with the checkpoint-file fsync
    /// optional. `sync = false` is the [`crate::DurabilityPolicy::Buffered`]
    /// tier's persist: the file still lands atomically (readers never see a
    /// torn generation, and a *process* crash loses nothing), but the data
    /// fsync is left to the kernel, so a *machine* crash may roll the engine
    /// back to an older generation. The manifest update is always fsynced —
    /// it is tiny, shared across engines, and a stale manifest would orphan
    /// every tier's generations, not just the buffered engine's.
    ///
    /// # Errors
    ///
    /// As [`CheckpointStore::persist`].
    #[allow(clippy::disallowed_methods)] // timed below; ops-plane only
    pub fn persist_with(&self, ckpt: &EngineCheckpoint, sync: bool) -> Result<u64, StoreError> {
        let persist_started = std::time::Instant::now();
        let engine = ckpt.engine.raw();
        let is_full = ckpt.is_self_contained();
        let index = &mut *self.index.lock();
        let gens = index.gens.entry(engine).or_default();
        let fulls = index.fulls.entry(engine).or_default();
        if !is_full && fulls.is_empty() {
            return Err(StoreError::Corrupt {
                what: format!("delta checkpoint for {} has no full base", ckpt.engine),
            });
        }
        let generation = gens.last().map_or(0, |g| g + 1);
        let path = self.dir.join(ckpt_file_name(engine, generation, is_full));
        write_atomic_with(&self.dir, &path, &frame(&ckpt.to_bytes()), sync)?;
        gens.push(generation);
        if is_full {
            fulls.push(generation);
        }
        // Keep every generation back through the KEPT_GENERATIONS-th-newest
        // full: a full plus its trailing deltas form one restore chain, and
        // two whole chains must survive for the corruption fallback.
        let mut expired: Vec<(u64, bool)> = Vec::new();
        if fulls.len() > KEPT_GENERATIONS {
            let floor = fulls[fulls.len() - KEPT_GENERATIONS];
            let cut = gens.partition_point(|&g| g < floor);
            for g in gens.drain(..cut) {
                expired.push((g, fulls.binary_search(&g).is_ok()));
            }
            fulls.retain(|&g| g >= floor);
        }
        write_manifest(&self.dir, &index.gens)?;
        // Prune only after the manifest no longer references the old
        // generations; a crash between the two steps leaves harmless
        // unreferenced files that the next rebuild ignores or re-adopts.
        for (g, f) in expired {
            fs::remove_file(self.dir.join(ckpt_file_name(engine, g, f))).ok();
        }
        if let Some(obs) = &*self.obs.lock() {
            let elapsed = persist_started.elapsed().as_nanos();
            obs.checkpoint_persisted(u64::try_from(elapsed).unwrap_or(u64::MAX));
        }
        Ok(generation)
    }

    /// Loads the newest **full** generation for `engine` that passes
    /// verification, falling back at most one full. `Ok(None)` when the
    /// engine has no generations at all. Delta generations are skipped —
    /// use [`CheckpointStore::load_chain`] to restore through them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when every kept full generation
    /// fails verification, or [`StoreError::Io`] on read failure.
    pub fn load_latest(&self, engine: EngineId) -> Result<Option<LoadedCheckpoint>, StoreError> {
        if self.generations(engine).is_empty() {
            return Ok(None);
        }
        let fulls = self.full_generations(engine);
        for (attempt, &generation) in fulls.iter().rev().take(KEPT_GENERATIONS).enumerate() {
            let path = self.dir.join(ckpt_name(engine.raw(), generation));
            if let Some(checkpoint) = read_framed_checkpoint(&path) {
                // CRC guards the bytes; the seal guards the recorded state
                // hash itself. A full whose seal does not recompute is as
                // unusable as a torn one.
                if checkpoint.seal_over(&StateHash::ZERO) != checkpoint.chain_seal {
                    continue;
                }
                return Ok(Some(LoadedCheckpoint {
                    generation,
                    fell_back: attempt > 0,
                    checkpoint,
                }));
            }
        }
        Err(StoreError::Corrupt {
            what: format!("all kept checkpoint generations for {engine} failed verification"),
        })
    }

    /// Loads the newest restorable chain for `engine`: the newest full
    /// generation that verifies, plus every consecutive verified delta
    /// after it. Verification is two layers: the CRC frame (torn or
    /// bit-rotted bytes) and the chain seal (a member whose recorded state
    /// hash or payload was rewritten under a recomputed CRC). A damaged
    /// delta truncates the chain there (everything before it is still a
    /// consistent restore point); a damaged full falls back to the previous
    /// full's chain. `Ok(None)` when the engine has no generations at all.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when every kept full generation
    /// fails verification, or [`StoreError::Io`] on read failure.
    pub fn load_chain(&self, engine: EngineId) -> Result<Option<LoadedChain>, StoreError> {
        let (gens, fulls) = {
            let index = self.index.lock();
            (
                index.gens.get(&engine.raw()).cloned().unwrap_or_default(),
                index.fulls.get(&engine.raw()).cloned().unwrap_or_default(),
            )
        };
        let Some(&newest) = gens.last() else {
            return Ok(None);
        };
        let heads: Vec<u64> = fulls.iter().rev().take(KEPT_GENERATIONS).copied().collect();
        for (i, &head) in heads.iter().enumerate() {
            let head_path = self.dir.join(ckpt_name(engine.raw(), head));
            let Some(full) = read_framed_checkpoint(&head_path) else {
                continue; // damaged full: fall back to the previous chain
            };
            if full.seal_over(&StateHash::ZERO) != full.chain_seal {
                continue; // seal-broken full: treated exactly like a torn one
            }
            // Deltas that belong to this chain: after this full, before the
            // next-newer full (for the newest chain there is none).
            let upper = if i == 0 { u64::MAX } else { heads[i - 1] };
            let mut prev_seal = full.chain_seal;
            let mut chain = vec![full];
            let mut top = head;
            for &g in gens.iter().filter(|&&g| g > head && g < upper) {
                let is_full = fulls.binary_search(&g).is_ok();
                let path = self.dir.join(ckpt_file_name(engine.raw(), g, is_full));
                match read_framed_checkpoint(&path) {
                    Some(c) => {
                        // The seal chains each member over its predecessor
                        // and covers the recorded state hash, so a delta
                        // whose stored hash was rewritten (CRC re-framed and
                        // all) still fails here and truncates the chain,
                        // mirroring the bad-CRC path below.
                        let expected_prev = if c.is_self_contained() {
                            StateHash::ZERO
                        } else {
                            prev_seal
                        };
                        if c.seal_over(&expected_prev) != c.chain_seal {
                            break;
                        }
                        prev_seal = c.chain_seal;
                        chain.push(c);
                        top = g;
                    }
                    // A chain is only valid through its last intact link;
                    // everything before the damage still restores.
                    None => break,
                }
            }
            return Ok(Some(LoadedChain {
                generation: top,
                fell_back: top != newest,
                chain,
            }));
        }
        Err(StoreError::Corrupt {
            what: format!("all kept checkpoint generations for {engine} failed verification"),
        })
    }

    /// Synchronously logs a determinism fault for `engine`: CRC-framed,
    /// appended, fsynced before returning.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the append or fsync fails.
    pub fn log_fault(
        &self,
        engine: EngineId,
        component: ComponentId,
        fault: &DeterminismFault,
    ) -> Result<(), StoreError> {
        let mut logs = self.fault_logs.lock();
        let file = match logs.entry(engine.raw()) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(fault_log_name(engine.raw())))?,
            ),
        };
        let body = (component, fault.clone()).to_bytes();
        file.write_all(&frame(&body))?;
        file.sync_all()?;
        Ok(())
    }

    /// All durably logged determinism faults for `engine`, oldest first.
    /// The log is scanned like a WAL tail: records up to the first invalid
    /// frame are kept (a torn final append is the expected crash artifact);
    /// the rest are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if a CRC-valid record fails to
    /// decode, or [`StoreError::Io`] on read failure.
    pub fn faults(
        &self,
        engine: EngineId,
    ) -> Result<Vec<(ComponentId, DeterminismFault)>, StoreError> {
        let path = self.dir.join(fault_log_name(engine.raw()));
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => f.read_to_end(&mut bytes).map(|_| ())?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let scan = scan_segment(&bytes);
        let mut out = Vec::with_capacity(scan.records.len());
        for body in &scan.records {
            let rec = <(ComponentId, DeterminismFault)>::from_bytes(body).map_err(|e| {
                StoreError::Corrupt {
                    what: format!("fault log record for {engine}: {e}"),
                }
            })?;
            out.push(rec);
        }
        Ok(out)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("manifest", &self.index.lock().gens)
            .finish()
    }
}

/// Reads and verifies the manifest; `None` means missing or corrupt (the
/// caller rebuilds from the directory listing).
fn read_manifest(path: &Path) -> Option<BTreeMap<u32, Vec<u64>>> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if FRAME_HEADER + len != bytes.len() {
        return None;
    }
    let body = &bytes[FRAME_HEADER..];
    if crc32(body) != crc {
        return None;
    }
    BTreeMap::<u32, Vec<u64>>::from_bytes(body).ok()
}

fn write_manifest(dir: &Path, manifest: &BTreeMap<u32, Vec<u64>>) -> Result<(), StoreError> {
    write_atomic(dir, &dir.join(MANIFEST), &frame(&manifest.to_bytes()))
}

/// Lists the `ckpt-*.bin` files present: `(all generations, full
/// generations)` per engine, sorted ascending, unpruned.
type CkptListing = (BTreeMap<u32, Vec<u64>>, BTreeMap<u32, Vec<u64>>);

fn scan_ckpt_files(dir: &Path) -> Result<CkptListing, StoreError> {
    let mut gens: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut fulls: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some((engine, generation, is_full)) = parse_ckpt_name(&name) {
            gens.entry(engine).or_default().push(generation);
            if is_full {
                fulls.entry(engine).or_default().push(generation);
            }
        }
    }
    for v in gens.values_mut().chain(fulls.values_mut()) {
        v.sort_unstable();
    }
    Ok((gens, fulls))
}

/// Reconstructs the index from a directory listing, keeping generations
/// back through the [`KEPT_GENERATIONS`]-th-newest full per engine (the
/// same retention rule [`CheckpointStore::persist`] applies).
fn rebuilt_index(mut gens: BTreeMap<u32, Vec<u64>>, mut fulls: BTreeMap<u32, Vec<u64>>) -> Index {
    for (engine, g) in gens.iter_mut() {
        let f = fulls.entry(*engine).or_default();
        if f.len() > KEPT_GENERATIONS {
            let floor = f[f.len() - KEPT_GENERATIONS];
            g.retain(|&x| x >= floor);
            f.retain(|&x| x >= floor);
        }
    }
    Index { gens, fulls }
}

/// Parses `ckpt-e0001-g00000002.bin` → `(1, 2, true)` and the delta form
/// `ckpt-e0001-g00000002-d.bin` → `(1, 2, false)`.
fn parse_ckpt_name(name: &str) -> Option<(u32, u64, bool)> {
    let rest = name.strip_prefix("ckpt-e")?.strip_suffix(".bin")?;
    let (engine, gen_part) = rest.split_once("-g")?;
    let (generation, is_full) = match gen_part.strip_suffix("-d") {
        Some(g) => (g, false),
        None => (gen_part, true),
    };
    Some((engine.parse().ok()?, generation.parse().ok()?, is_full))
}

/// Reads a CRC-framed checkpoint file; `None` on any verification failure
/// (the caller falls back a generation).
fn read_framed_checkpoint(path: &Path) -> Option<EngineCheckpoint> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if FRAME_HEADER + len != bytes.len() {
        return None;
    }
    let body = &bytes[FRAME_HEADER..];
    if crc32(body) != crc {
        return None;
    }
    EngineCheckpoint::from_bytes(body).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_estimator::EstimatorSpec;
    use tart_model::{BlockId, Snapshot, StateChunk};
    use tart_vtime::{VirtualTime, WireId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tart-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn sample(engine: u32, seq: u64) -> EngineCheckpoint {
        let mut ckpt = EngineCheckpoint::new(EngineId::new(engine), seq);
        let mut snap = Snapshot::new(vt(seq * 10));
        snap.put("state", StateChunk::Full(vec![seq as u8; 4]));
        ckpt.components.insert(ComponentId::new(0), snap);
        ckpt.clocks.insert(ComponentId::new(0), vt(seq * 10));
        ckpt.consumed.insert(WireId::new(1), vt(seq * 10));
        // Full checkpoints are self-contained, so they can self-seal.
        ckpt.seal(&StateHash::ZERO);
        ckpt
    }

    /// Seals `chain` in order, restarting the seal chain at every
    /// self-contained member — exactly what `EngineCore::take_checkpoint`
    /// produces live.
    fn seal_chain(chain: &mut [EngineCheckpoint]) {
        let mut prev = StateHash::ZERO;
        for c in chain.iter_mut() {
            let base = if c.is_self_contained() {
                StateHash::ZERO
            } else {
                prev
            };
            c.seal(&base);
            prev = c.chain_seal;
        }
    }

    #[test]
    fn persist_and_reload() {
        let dir = tmp("reload");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.persist(&sample(1, 0)).unwrap(), 0);
        assert_eq!(store.persist(&sample(1, 1)).unwrap(), 1);
        assert_eq!(store.engines(), vec![EngineId::new(1)]);

        // A fresh open (new process) sees the same state via the manifest.
        let store = CheckpointStore::open(&dir).unwrap();
        let loaded = store.load_latest(EngineId::new(1)).unwrap().unwrap();
        assert_eq!(loaded.generation, 1);
        assert!(!loaded.fell_back);
        assert_eq!(loaded.checkpoint, sample(1, 1));
        assert_eq!(store.load_latest(EngineId::new(9)).unwrap(), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_generations_are_pruned() {
        let dir = tmp("prune");
        let store = CheckpointStore::open(&dir).unwrap();
        for seq in 0..5 {
            store.persist(&sample(0, seq)).unwrap();
        }
        assert_eq!(store.generations(EngineId::new(0)), vec![3, 4]);
        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().to_string_lossy().into_owned();
                n.starts_with("ckpt-").then_some(n)
            })
            .collect();
        assert_eq!(
            files.len(),
            KEPT_GENERATIONS,
            "pruned to kept set: {files:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_generation_falls_back_one() {
        let dir = tmp("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(2, 0)).unwrap();
        store.persist(&sample(2, 1)).unwrap();
        // Flip a byte in the newest generation's body.
        let newest = dir.join(ckpt_name(2, 1));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        let loaded = store.load_latest(EngineId::new(2)).unwrap().unwrap();
        assert!(loaded.fell_back, "newest failed, previous served");
        assert_eq!(loaded.generation, 0);
        assert_eq!(loaded.checkpoint, sample(2, 0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_corrupt_is_an_error() {
        let dir = tmp("allbad");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(0, 0)).unwrap();
        store.persist(&sample(0, 1)).unwrap();
        for g in 0..2 {
            let path = dir.join(ckpt_name(0, g));
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            fs::write(&path, &bytes).unwrap();
        }
        assert!(matches!(
            store.load_latest(EngineId::new(0)),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_rebuilt_from_directory() {
        let dir = tmp("manifest");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(3, 0)).unwrap();
        store.persist(&sample(3, 1)).unwrap();
        // Stomp the manifest.
        fs::write(dir.join(MANIFEST), b"not a manifest at all").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let loaded = store.load_latest(EngineId::new(3)).unwrap().unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.checkpoint, sample(3, 1));
        // Missing manifest rebuilds too.
        fs::remove_file(dir.join(MANIFEST)).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.generations(EngineId::new(3)), vec![0, 1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_log_round_trips_and_tolerates_torn_tail() {
        let dir = tmp("faults");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(0);
        assert!(store.faults(e).unwrap().is_empty());
        let f1 = DeterminismFault {
            vt: vt(500),
            new_spec: EstimatorSpec::per_iteration(BlockId(0), 70_000),
        };
        let f2 = DeterminismFault {
            vt: vt(900),
            new_spec: EstimatorSpec::per_iteration(BlockId(1), 80_000),
        };
        store.log_fault(e, ComponentId::new(4), &f1).unwrap();
        store.log_fault(e, ComponentId::new(5), &f2).unwrap();
        let got = store.faults(e).unwrap();
        assert_eq!(
            got,
            vec![(ComponentId::new(4), f1.clone()), (ComponentId::new(5), f2)]
        );

        // Tear the final record: it is discarded, the first survives.
        let path = dir.join(fault_log_name(0));
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let store = CheckpointStore::open(&dir).unwrap();
        let got = store.faults(e).unwrap();
        assert_eq!(got, vec![(ComponentId::new(4), f1)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiple_engines_are_independent() {
        let dir = tmp("multi");
        let store = CheckpointStore::open(&dir).unwrap();
        store.persist(&sample(0, 0)).unwrap();
        store.persist(&sample(1, 0)).unwrap();
        store.persist(&sample(1, 1)).unwrap();
        assert_eq!(store.generations(EngineId::new(0)), vec![0]);
        assert_eq!(store.generations(EngineId::new(1)), vec![0, 1]);
        assert_eq!(store.engines(), vec![EngineId::new(0), EngineId::new(1)]);
        assert!(format!("{store:?}").contains("CheckpointStore"));
        fs::remove_dir_all(&dir).ok();
    }

    /// A delta checkpoint: one component snapshot carrying a delta chunk.
    fn delta_sample(engine: u32, seq: u64) -> EngineCheckpoint {
        let mut ckpt = EngineCheckpoint::new(EngineId::new(engine), seq);
        let mut snap = Snapshot::new(vt(seq * 10));
        snap.put("state", StateChunk::Delta(vec![seq as u8; 2]));
        ckpt.components.insert(ComponentId::new(0), snap);
        ckpt.clocks.insert(ComponentId::new(0), vt(seq * 10));
        ckpt.consumed.insert(WireId::new(1), vt(seq * 10));
        ckpt
    }

    #[test]
    fn delta_chain_round_trips_and_survives_manifest_loss() {
        let dir = tmp("chain");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(4);
        let mut want = vec![sample(4, 0), delta_sample(4, 1), delta_sample(4, 2)];
        seal_chain(&mut want);
        for c in &want {
            store.persist(c).unwrap(); // full g0, delta g1, delta g2
        }
        assert_eq!(store.full_generations(e), vec![0]);

        let loaded = store.load_chain(e).unwrap().unwrap();
        assert_eq!(loaded.generation, 2);
        assert!(!loaded.fell_back);
        assert_eq!(loaded.chain, want);

        // The kinds live in the filenames: stomp the manifest and the
        // rebuilt store still reconstructs the same chain.
        fs::write(dir.join(MANIFEST), b"garbage").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.load_chain(e).unwrap().unwrap(), loaded);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_delta_truncates_the_chain() {
        let dir = tmp("chain-trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(5);
        let mut persisted = vec![sample(5, 0), delta_sample(5, 1), delta_sample(5, 2)];
        seal_chain(&mut persisted);
        for c in &persisted {
            store.persist(c).unwrap();
        }
        // Damage the middle delta: the chain must stop before it, even
        // though the newest delta is intact (it builds on the damaged one).
        let mid = dir.join(delta_ckpt_name(5, 1));
        let mut bytes = fs::read(&mid).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&mid, &bytes).unwrap();

        let loaded = store.load_chain(e).unwrap().unwrap();
        assert!(loaded.fell_back);
        assert_eq!(loaded.generation, 0, "only the full head survives");
        assert_eq!(loaded.chain, vec![persisted[0].clone()]);
        fs::remove_dir_all(&dir).ok();
    }

    /// Satellite regression for verified replay: a delta whose *stored
    /// state hash* was rewritten — with the CRC frame recomputed so the
    /// byte-level check passes — must still truncate the chain at that
    /// delta, exactly like a bad CRC would. Only the chain seal catches
    /// this class of corruption.
    #[test]
    fn delta_with_rewritten_state_hash_is_truncated() {
        let dir = tmp("chain-badhash");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(9);
        let mut persisted = vec![sample(9, 0), delta_sample(9, 1), delta_sample(9, 2)];
        seal_chain(&mut persisted);
        for c in &persisted {
            store.persist(c).unwrap();
        }
        // Rewrite the middle delta's recorded state hash and re-frame it
        // with a freshly computed CRC: the frame verifies, the seal cannot.
        let mid = dir.join(delta_ckpt_name(9, 1));
        let bytes = fs::read(&mid).unwrap();
        let mut tampered = EngineCheckpoint::from_bytes(&bytes[FRAME_HEADER..]).unwrap();
        tampered.state_hash = tart_model::hash_of(&u64::MAX);
        fs::write(&mid, frame(&tampered.to_bytes())).unwrap();

        let loaded = store.load_chain(e).unwrap().unwrap();
        assert!(loaded.fell_back);
        assert_eq!(loaded.generation, 0, "truncated at the rewritten delta");
        assert_eq!(loaded.chain, vec![persisted[0].clone()]);

        // The same rewrite on the full head is caught too: with only one
        // full on disk, the chain load reports irrecoverable corruption.
        let head = dir.join(ckpt_name(9, 0));
        let bytes = fs::read(&head).unwrap();
        let mut tampered = EngineCheckpoint::from_bytes(&bytes[FRAME_HEADER..]).unwrap();
        tampered.state_hash = tart_model::hash_of(&u64::MAX);
        fs::write(&head, frame(&tampered.to_bytes())).unwrap();
        assert!(matches!(
            store.load_chain(e),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            store.load_latest(e),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_full_falls_back_to_the_previous_chain() {
        let dir = tmp("chain-fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(6);
        let mut persisted = vec![
            sample(6, 0),       // full g0
            delta_sample(6, 1), // delta g1
            sample(6, 2),       // full g2
            delta_sample(6, 3), // delta g3
        ];
        seal_chain(&mut persisted);
        for c in &persisted {
            store.persist(c).unwrap();
        }
        // Damage the newest full: its delta g3 is orphaned, and the store
        // must fall back to the older full chain g0+g1.
        let newest_full = dir.join(ckpt_name(6, 2));
        let mut bytes = fs::read(&newest_full).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        fs::write(&newest_full, &bytes).unwrap();

        let loaded = store.load_chain(e).unwrap().unwrap();
        assert!(loaded.fell_back);
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.chain, persisted[..2].to_vec());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruning_keeps_whole_chains() {
        let dir = tmp("chain-prune");
        let store = CheckpointStore::open(&dir).unwrap();
        let e = EngineId::new(7);
        // Chains: [F0 d1] [F2 d3] [F4 d5] — pruning floors at the
        // 2nd-newest full, so the g0 chain goes and both newer chains stay.
        let mut persisted: Vec<EngineCheckpoint> = (0..6u64)
            .map(|seq| {
                if seq % 2 == 0 {
                    sample(7, seq)
                } else {
                    delta_sample(7, seq)
                }
            })
            .collect();
        seal_chain(&mut persisted);
        for c in &persisted {
            store.persist(c).unwrap();
        }
        assert_eq!(store.generations(e), vec![2, 3, 4, 5]);
        assert_eq!(store.full_generations(e), vec![2, 4]);
        assert!(!dir.join(ckpt_name(7, 0)).exists(), "old full pruned");
        assert!(
            !dir.join(delta_ckpt_name(7, 1)).exists(),
            "old delta pruned"
        );
        let loaded = store.load_chain(e).unwrap().unwrap();
        assert_eq!(loaded.generation, 5);
        assert_eq!(loaded.chain.len(), 2, "newest full + its delta");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_without_a_full_base_is_refused() {
        let dir = tmp("orphan-delta");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(matches!(
            store.persist(&delta_sample(8, 0)),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display() {
        let e = StoreError::Corrupt { what: "x".into() };
        assert!(e.to_string().contains("corrupt"));
        let e = StoreError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
