//! The single-threaded engine state machine.
//!
//! [`EngineCore`] owns everything one execution engine needs: its hosted
//! components, the deterministic input mux, retention buffers, silence
//! bookkeeping, recovery stashes and checkpoint machinery. It is *pure
//! state*: envelopes go in ([`EngineCore::handle`]), work gets done
//! ([`EngineCore::pump`]), envelopes go out through the [`Router`]. The
//! threaded wrapper in [`crate::Cluster`] is a thin loop around it, which is
//! what makes the recovery protocol unit-testable without threads.

use std::collections::BTreeMap;

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use tart_estimator::{Calibrator, DeterminismFault, EstimatorSchedule};
use tart_model::{AppSpec, CheckpointMode, Component, Value};
use tart_sched::{GateDecision, InputMux};
use tart_silence::{ProbeTracker, SilenceAdvertiser, SilencePolicy};
use tart_vtime::{ComponentId, EngineId, PortId, VirtualTime, WireId};

use crate::checkpoint::{combined_state_hash, DivergenceFault};
use crate::ctx::EngineCtx;
use crate::{
    CheckpointStore, ClusterConfig, EngineCheckpoint, Envelope, Placement, ReplicaStore,
    RetentionBuffer, Router,
};
use tart_model::{StateHash, StateHasher};

/// Where an incoming wire's ticks come from.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WireSource {
    /// Another component on this same engine.
    Local,
    /// A component on another engine.
    Remote(EngineId),
    /// An external producer (replays come from the message log, served by
    /// the cluster).
    External,
}

/// Where an outgoing wire's ticks go.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WireDest {
    /// A component on this same engine.
    Local,
    /// A component on another engine.
    Remote(EngineId),
    /// An external consumer with this name.
    External(String),
}

/// An external output record: `(consumer, wire, vt, payload)`.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputRecord {
    /// The external consumer's name.
    pub consumer: String,
    /// The wire that delivered it.
    pub wire: WireId,
    /// The output's virtual time (duplicate vts identify stutter).
    pub vt: VirtualTime,
    /// The payload.
    pub payload: Value,
}

/// Counters an engine maintains (shared with the cluster for inspection).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineMetrics {
    /// Messages delivered to components.
    pub processed: u64,
    /// Duplicate data envelopes discarded by timestamp (§II.F.4).
    pub duplicates_dropped: u64,
    /// Soft checkpoints taken.
    pub checkpoints: u64,
    /// Serialized checkpoint bytes shipped to the replica.
    pub checkpoint_bytes: u64,
    /// Checkpoints taken in incremental (delta) mode.
    pub delta_checkpoints: u64,
    /// Serialized bytes of delta-mode checkpoints (compare against
    /// `checkpoint_bytes` for the incremental-checkpoint savings).
    pub delta_checkpoint_bytes: u64,
    /// Curiosity probes sent.
    pub probes_sent: u64,
    /// Probe replies / silence advances transmitted.
    pub silence_sent: u64,
    /// Replay requests served from retention.
    pub replays_served: u64,
    /// Replay requests this engine issued (loss detected or restore).
    pub replay_requests_sent: u64,
    /// Gaps detected via the `prev_vt` chain.
    pub losses_detected: u64,
    /// External outputs emitted (including stutter duplicates).
    pub outputs_emitted: u64,
    /// Determinism faults taken.
    pub determinism_faults: u64,
    /// Data envelopes received (before any filtering).
    pub data_received: u64,
}

/// The live, shared form of [`EngineMetrics`]: one relaxed atomic per
/// counter, so the delivery hot path bumps counters without a lock (the
/// same pattern as `tart-obs`'s counter registry). Readers take a
/// [`SharedEngineMetrics::snapshot`]; counters are monotone and
/// independent, so a snapshot is only ever behind, never torn into
/// impossible states.
///
/// Metrics are telemetry: they are never read back by replayed logic and
/// never enter checkpoints, so relaxed ordering is sufficient.
#[derive(Debug, Default)]
pub struct SharedEngineMetrics {
    pub(crate) processed: AtomicU64,
    pub(crate) duplicates_dropped: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) checkpoint_bytes: AtomicU64,
    pub(crate) delta_checkpoints: AtomicU64,
    pub(crate) delta_checkpoint_bytes: AtomicU64,
    pub(crate) probes_sent: AtomicU64,
    pub(crate) silence_sent: AtomicU64,
    pub(crate) replays_served: AtomicU64,
    pub(crate) replay_requests_sent: AtomicU64,
    pub(crate) losses_detected: AtomicU64,
    pub(crate) outputs_emitted: AtomicU64,
    pub(crate) determinism_faults: AtomicU64,
    pub(crate) data_received: AtomicU64,
}

impl SharedEngineMetrics {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> EngineMetrics {
        EngineMetrics {
            processed: self.processed.load(AtomicOrdering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(AtomicOrdering::Relaxed),
            checkpoints: self.checkpoints.load(AtomicOrdering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(AtomicOrdering::Relaxed),
            delta_checkpoints: self.delta_checkpoints.load(AtomicOrdering::Relaxed),
            delta_checkpoint_bytes: self.delta_checkpoint_bytes.load(AtomicOrdering::Relaxed),
            probes_sent: self.probes_sent.load(AtomicOrdering::Relaxed),
            silence_sent: self.silence_sent.load(AtomicOrdering::Relaxed),
            replays_served: self.replays_served.load(AtomicOrdering::Relaxed),
            replay_requests_sent: self.replay_requests_sent.load(AtomicOrdering::Relaxed),
            losses_detected: self.losses_detected.load(AtomicOrdering::Relaxed),
            outputs_emitted: self.outputs_emitted.load(AtomicOrdering::Relaxed),
            determinism_faults: self.determinism_faults.load(AtomicOrdering::Relaxed),
            data_received: self.data_received.load(AtomicOrdering::Relaxed),
        }
    }
}

/// In-flight recovery state for one input wire: arrivals are stashed until
/// the replay burst completes, then applied in virtual-time order.
#[derive(Debug, Default)]
struct RecoveryStash {
    /// vt → (prev_vt, payload).
    data: BTreeMap<VirtualTime, (VirtualTime, Value)>,
    /// Highest silence promise heard while recovering.
    silence: Option<VirtualTime>,
    /// The virtual time the outstanding replay request started from; used
    /// with [`Envelope::ReplayDone`]'s frame count to verify completeness.
    requested_from: VirtualTime,
}

/// What the engine loop should do after handling an envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep running.
    Continue,
    /// Fail-stop immediately.
    Die,
    /// Enter draining mode (exit once idle).
    Drain,
}

/// One execution engine's complete state (see module docs).
pub struct EngineCore {
    id: EngineId,
    spec: AppSpec,
    config: ClusterConfig,
    /// Hosted components, taken out during handler execution.
    components: BTreeMap<ComponentId, Option<Box<dyn Component>>>,
    mux: InputMux<Value>,
    estimators: BTreeMap<ComponentId, EstimatorSchedule>,
    /// Input-wire bookkeeping.
    wire_source: BTreeMap<WireId, WireSource>,
    consumed: BTreeMap<WireId, VirtualTime>,
    recovering: BTreeMap<WireId, RecoveryStash>,
    probes: ProbeTracker,
    /// Output-wire bookkeeping.
    wire_dest: BTreeMap<WireId, WireDest>,
    retention: BTreeMap<WireId, RetentionBuffer>,
    advertisers: BTreeMap<WireId, SilenceAdvertiser>,
    /// Deterministic per-output-wire send watermark (checkpointed: replays
    /// must reproduce identical virtual times).
    sent_watermark: BTreeMap<WireId, VirtualTime>,
    /// Reusable buffer for routing a handler's sends without a per-send
    /// allocation (scratch only — never checkpointed).
    out_wire_scratch: Vec<WireId>,
    router: Router,
    replica: ReplicaStore,
    /// On-disk checkpoint store, when the cluster runs with durability.
    /// Checkpoints tee here; `TrimAck`s wait for the persist to succeed.
    durable: Option<Arc<CheckpointStore>>,
    /// Whether checkpoint persists fsync before shipping (`true`, the
    /// Strict/legacy path) or leave writeback to the kernel (`false`, the
    /// Buffered tier — see [`CheckpointStore::persist_with`]).
    durable_sync: bool,
    /// Consumed watermarks as of the *previous* durable full generation —
    /// the watermarks `TrimAck`s are allowed to carry. Recovery may fall
    /// back a whole restore chain (to the previous full), so upstream
    /// retention must keep everything past the full generation *before* the
    /// newest; acking one full generation late guarantees exactly that.
    durable_acked: BTreeMap<WireId, VirtualTime>,
    outputs: crossbeam::channel::Sender<OutputRecord>,
    /// Dynamic re-tuning state: per-component sample collectors, present
    /// only while auto-recalibration is armed for that component.
    calibrators: BTreeMap<ComponentId, Calibrator>,
    processed_since_ckpt: u64,
    ckpt_seq: u64,
    next_ckpt_full: bool,
    /// Seal of the most recent checkpoint in the hash chain; the next delta
    /// generation seals over it ([`EngineCheckpoint::seal`]).
    last_chain_seal: StateHash,
    /// Deliveries since the last between-checkpoint bookkeeping digest
    /// (only advanced when [`ClusterConfig::hash_state_every`] is set).
    deliveries_since_hash: u64,
    /// Durable checkpoints since the last full generation, for the
    /// `full_checkpoint_every` cadence.
    ckpts_since_full: u32,
    /// Output wires whose end-of-stream marker has been transmitted
    /// (graceful drain only).
    eos_sent: std::collections::BTreeSet<WireId>,
    metrics: Arc<SharedEngineMetrics>,
    /// Telemetry handle (ops plane). Strictly write-only from the core's
    /// perspective: nothing recorded here is ever read back, so it cannot
    /// influence replayed decisions, and none of it enters checkpoints.
    obs: tart_obs::EngineObs,
}

impl EngineCore {
    /// Builds the engine hosting `placement.components_on(id)`.
    ///
    /// # Panics
    ///
    /// Panics if the placement assigns no component to this engine.
    pub fn new(
        id: EngineId,
        spec: &AppSpec,
        placement: &Placement,
        config: &ClusterConfig,
        router: Router,
        replica: ReplicaStore,
        outputs: crossbeam::channel::Sender<OutputRecord>,
    ) -> Self {
        let local = placement.components_on(id);
        assert!(!local.is_empty(), "engine {id} hosts no components");
        let mut components = BTreeMap::new();
        let mut mux = InputMux::new();
        let mut estimators = BTreeMap::new();
        let mut wire_source = BTreeMap::new();
        let mut wire_dest = BTreeMap::new();
        let mut retention = BTreeMap::new();
        let mut advertisers = BTreeMap::new();
        for &cid in &local {
            let cspec = spec.component(cid).expect("placed component exists");
            components.insert(cid, Some(cspec.instantiate()));
            estimators.insert(cid, EstimatorSchedule::new(config.estimator_for(cid)));
            let inputs: Vec<WireId> = spec.input_wires_of(cid).iter().map(|w| w.id()).collect();
            mux.add_component(cid, inputs.iter().copied());
            for w in spec.input_wires_of(cid) {
                let source = match w.from().component() {
                    Some(src) if placement.engine_of(src) == Some(id) => WireSource::Local,
                    Some(src) => WireSource::Remote(
                        placement.engine_of(src).expect("placement covers the app"),
                    ),
                    None => WireSource::External,
                };
                wire_source.insert(w.id(), source);
            }
            for w in spec.output_wires_of(cid) {
                let dest = match w.to() {
                    tart_model::Endpoint::Component { component, .. } => {
                        if placement.engine_of(*component) == Some(id) {
                            WireDest::Local
                        } else {
                            WireDest::Remote(
                                placement
                                    .engine_of(*component)
                                    .expect("placement covers the app"),
                            )
                        }
                    }
                    tart_model::Endpoint::External { name } => WireDest::External(name.clone()),
                };
                let is_external = matches!(dest, WireDest::External(_));
                wire_dest.insert(w.id(), dest);
                if !is_external {
                    // External consumers track stutter by timestamp; they
                    // need neither replay retention nor silence.
                    retention.insert(w.id(), RetentionBuffer::new(w.id()));
                    advertisers.insert(w.id(), SilenceAdvertiser::new(w.id()));
                }
            }
        }
        let calibrators = match config.auto_recalibrate_after {
            Some(n) => local
                .iter()
                .map(|&cid| (cid, Calibrator::new(n as usize)))
                .collect(),
            None => BTreeMap::new(),
        };
        EngineCore {
            id,
            spec: spec.clone(),
            config: config.clone(),
            components,
            mux,
            estimators,
            wire_source,
            consumed: BTreeMap::new(),
            recovering: BTreeMap::new(),
            probes: ProbeTracker::new(),
            wire_dest,
            retention,
            advertisers,
            sent_watermark: BTreeMap::new(),
            out_wire_scratch: Vec::new(),
            router,
            replica,
            durable: None,
            durable_sync: true,
            durable_acked: BTreeMap::new(),
            outputs,
            calibrators,
            processed_since_ckpt: 0,
            ckpt_seq: 0,
            next_ckpt_full: true,
            last_chain_seal: StateHash::ZERO,
            deliveries_since_hash: 0,
            ckpts_since_full: 0,
            eos_sent: std::collections::BTreeSet::new(),
            metrics: Arc::new(SharedEngineMetrics::default()),
            // tart-lint: allow(TAINT-FLOW) -- obs handle construction: the hub's epoch stamp is telemetry zero-point, never read back by replayed logic
            obs: tart_obs::EngineObs::detached(id),
        }
    }

    /// This engine's id.
    pub fn id(&self) -> EngineId {
        self.id
    }

    /// Attaches the on-disk checkpoint store: every checkpoint is now also
    /// persisted — as a full generation every
    /// [`crate::DurabilityConfig::full_checkpoint_every`] checkpoints and as
    /// a delta against the last full one in between — and retention
    /// `TrimAck`s are gated on a *full* persist succeeding, one full
    /// generation behind.
    ///
    /// External output wires gain retention buffers of their own: the
    /// outputs channel is volatile, so an output whose producing input is
    /// durably consumed would otherwise be lost to a whole-process crash
    /// before the consumer's next drain (replay never regenerates it — the
    /// input sits behind the restored consumed watermark). Checkpoints
    /// capture these buffers and cold restart re-emits them, duplicates
    /// collapsing by timestamp downstream. The buffers hold exactly the
    /// not-yet-drained outputs: [`crate::Cluster::take_outputs`] acks what
    /// it hands to the consumer with ordinary `TrimAck`s.
    pub fn set_durable(&mut self, store: Arc<CheckpointStore>) {
        self.durable = Some(store);
        for (w, dest) in &self.wire_dest {
            if matches!(dest, WireDest::External(_)) {
                self.retention
                    .entry(*w)
                    .or_insert_with(|| RetentionBuffer::new(*w));
            }
        }
    }

    /// Chooses between fsynced (`true`, default — the Strict/legacy
    /// durability behaviour) and kernel-scheduled (`false` — the
    /// [`crate::DurabilityPolicy::Buffered`] tier) checkpoint persists.
    /// Persist-before-ship ordering and TrimAck gating are unchanged either
    /// way; only the fsync on the checkpoint file moves.
    pub fn set_durable_sync(&mut self, sync: bool) {
        self.durable_sync = sync;
    }

    /// Attaches the cluster's observability handle. Obs state is telemetry
    /// only: it lives outside checkpointed component state, is never read
    /// by the core, and a directly-constructed engine records into a
    /// private detached hub until a cluster installs the shared one.
    pub fn set_obs(&mut self, obs: tart_obs::EngineObs) {
        self.obs = obs;
    }

    /// Repoints this core at a different replica store. Used at warm
    /// promotion: the standby plane builds its background core before the
    /// promotion-time replica exists, so the fresh store is swapped in when
    /// the core goes live.
    pub(crate) fn set_replica(&mut self, replica: ReplicaStore) {
        self.replica = replica;
    }

    /// Shared handle to this engine's metrics.
    pub fn metrics_handle(&self) -> Arc<SharedEngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A snapshot of the current metrics.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics.snapshot()
    }

    /// Total messages pending in this engine's gates.
    pub fn pending_len(&self) -> usize {
        self.mux.pending_len()
    }

    /// Whether any input wire is still in recovery.
    pub fn is_recovering(&self) -> bool {
        !self.recovering.is_empty()
    }

    /// One step of the graceful-drain cascade: every component whose inputs
    /// are exhausted (all wires silent through the end of time, nothing
    /// pending) will never run again, so its output wires receive their
    /// end-of-stream markers — which lets downstream components drain in
    /// turn, across engines. Returns `true` once every hosted component is
    /// exhausted and every marker is out: the engine may exit.
    pub fn drain_step(&mut self) -> bool {
        if self.is_recovering() {
            return false;
        }
        let mut all_done = true;
        let cids: Vec<ComponentId> = self.mux.component_ids().collect();
        for cid in cids {
            let gate = self.mux.gate(cid);
            let exhausted = gate.pending_len() == 0
                && gate
                    .wire_ids()
                    .all(|w| gate.accounted_through(w) == VirtualTime::MAX);
            if !exhausted {
                all_done = false;
                continue;
            }
            let outs: Vec<WireId> = self
                .spec
                .output_wires_of(cid)
                .iter()
                .map(|w| w.id())
                // External wires may retain too (durable output capture)
                // but never speak the EOS protocol — consumers are not
                // engines.
                .filter(|w| {
                    !matches!(self.wire_dest.get(w), Some(WireDest::External(_)))
                        && self.retention.contains_key(w)
                        && !self.eos_sent.contains(w)
                })
                .collect();
            for wire in outs {
                self.eos_sent.insert(wire);
                let last_data = self
                    .retention
                    .get(&wire)
                    .and_then(RetentionBuffer::last_sent)
                    .unwrap_or(VirtualTime::ZERO);
                let dest = self.wire_dest[&wire].clone();
                self.transmit(&dest, Envelope::Eos { wire, last_data });
            }
        }
        all_done
    }

    // -- Envelope handling --------------------------------------------------

    /// Processes one incoming envelope.
    ///
    /// Exposed so embedders (and the protocol test-suite) can drive an
    /// engine without a thread; [`crate::Cluster`] wraps this in its own
    /// loop.
    pub fn handle(&mut self, env: Envelope) -> Flow {
        match env {
            Envelope::Data {
                wire,
                vt,
                prev_vt,
                payload,
            } => {
                self.on_data(wire, vt, prev_vt, payload);
                Flow::Continue
            }
            Envelope::Silence {
                wire,
                through,
                last_data,
            } => {
                self.on_silence(wire, through, last_data);
                Flow::Continue
            }
            Envelope::Eos { wire, last_data } => {
                self.on_silence(wire, VirtualTime::MAX, last_data);
                Flow::Continue
            }
            Envelope::Probe {
                wire,
                needed_through,
            } => {
                self.answer_probe(wire, needed_through);
                Flow::Continue
            }
            Envelope::ReplayRequest { wire, from } => {
                self.serve_replay(wire, from);
                Flow::Continue
            }
            Envelope::ReplayDone {
                wire,
                through,
                frames,
            } => {
                self.finish_recovery(wire, through, frames);
                Flow::Continue
            }
            Envelope::TrimAck { wire, through } => {
                if let Some(buf) = self.retention.get_mut(&wire) {
                    buf.trim_through(through);
                }
                Flow::Continue
            }
            Envelope::Checkpoint => {
                self.take_checkpoint();
                Flow::Continue
            }
            Envelope::Recalibrate { component, spec } => {
                self.recalibrate(component, spec);
                Flow::Continue
            }
            Envelope::SetSilencePolicy { policy } => {
                // Safe without a determinism fault: the identities of silent
                // ticks depend only on estimators; this changes only how
                // eagerly silence is communicated (§II.G.4).
                self.config.silence = policy;
                self.pump();
                Flow::Continue
            }
            // Heartbeats are addressed to the supervisor inbox, never to an
            // engine; one arriving here (a mis-route) is ignored.
            Envelope::Heartbeat { .. } => Flow::Continue,
            // Standby replication streams are addressed to the standby
            // plane's sentinel inbox, never to an engine; one arriving here
            // (a mis-route) is ignored.
            Envelope::StandbyCheckpoint { .. } | Envelope::StandbyInput { .. } => Flow::Continue,
            Envelope::Die => Flow::Die,
            Envelope::Drain => Flow::Drain,
        }
    }

    fn on_data(&mut self, wire: WireId, vt: VirtualTime, prev_vt: VirtualTime, payload: Value) {
        self.metrics
            .data_received
            .fetch_add(1, AtomicOrdering::Relaxed);
        // Warm standby: every external arrival is already logged (and thus
        // replayable), so advancing the standby plane's notion of this
        // engine's input head costs one control-plane envelope and lets the
        // plane pace its trailing-horizon pre-apply. Best-effort — with no
        // plane registered the router drops the envelope silently.
        if self.config.standby.is_some()
            && self.wire_source.get(&wire) == Some(&WireSource::External)
        {
            self.router.send(
                crate::router::STANDBY_ENGINE,
                Envelope::StandbyInput {
                    engine: self.id,
                    wire,
                    vt,
                },
            );
        }
        if let Some(stash) = self.recovering.get_mut(&wire) {
            stash.data.insert(vt, (prev_vt, payload));
            return;
        }
        let Some(target) = self.mux.target_of(wire) else {
            return; // not our wire (stale routing); drop
        };
        self.probes.on_reply(wire);
        let gate = self.mux.gate(target);
        let heard = gate.has_heard(wire);
        let accounted = gate.accounted_through(wire);
        // Gap detection via the prev_vt chain (§II.F.4): if the predecessor
        // tick never arrived, a message was lost — stash this one and ask
        // the source to replay the hole.
        let gap = self.config.deterministic
            && prev_vt > VirtualTime::ZERO
            && (!heard || prev_vt > accounted);
        if gap {
            self.metrics
                .losses_detected
                .fetch_add(1, AtomicOrdering::Relaxed);
            let from = if heard {
                accounted.next()
            } else {
                VirtualTime::ZERO
            };
            self.enter_recovery(wire, from);
            self.recovering
                .get_mut(&wire)
                .expect("just entered recovery")
                .data
                .insert(vt, (prev_vt, payload));
            return;
        }
        if !self.config.deterministic {
            // Baseline mode: a conventional runtime — process immediately,
            // in real-time arrival order, no pessimism, no recoverability.
            let dequeue_vt = vt.max_with(self.mux.gate(target).clock());
            self.process_delivery(target, wire, vt, dequeue_vt, payload);
            self.metrics.processed.fetch_add(1, AtomicOrdering::Relaxed);
            return;
        }
        match self.mux.push_message(wire, vt, payload) {
            Ok(()) => {
                // Pessimism-wait stamp: the message is now held by the gate
                // until silence releases it; delivery pops the stamp.
                self.obs.message_arrived(wire, vt);
            }
            Err(_) => {
                // Timestamp at or below the accounted watermark: a replayed
                // or link-duplicated message. "The duplicate messages will
                // have duplicate timestamps and will be discarded" (§II.F.4).
                self.metrics
                    .duplicates_dropped
                    .fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
    }

    fn on_silence(&mut self, wire: WireId, through: VirtualTime, last_data: VirtualTime) {
        if !self.config.deterministic {
            // The arrival-order baseline has no tick accounting to keep
            // honest; silence only matters for the drain handshake.
            if self.mux.target_of(wire).is_some() {
                self.mux.promise_silence(wire, through);
            }
            return;
        }
        if let Some(stash) = self.recovering.get_mut(&wire) {
            stash.silence = Some(stash.silence.map_or(through, |s| s.max(through)));
            return;
        }
        let Some(target) = self.mux.target_of(wire) else {
            return;
        };
        self.probes.on_reply(wire);
        // Tail-loss detection: the sender has transmitted data through
        // `last_data`, but our account never saw it — a message with no
        // successor was lost. Applying `through` now would mask the hole.
        let gate = self.mux.gate(target);
        let heard = gate.has_heard(wire);
        let accounted = gate.accounted_through(wire);
        if last_data > VirtualTime::ZERO && (!heard || last_data > accounted) {
            self.metrics
                .losses_detected
                .fetch_add(1, AtomicOrdering::Relaxed);
            let from = if heard {
                accounted.next()
            } else {
                VirtualTime::ZERO
            };
            self.enter_recovery(wire, from);
            let stash = self
                .recovering
                .get_mut(&wire)
                .expect("just entered recovery");
            stash.silence = Some(through);
            return;
        }
        self.mux.promise_silence(wire, through);
    }

    /// Marks `wire` recovering (stashing all arrivals) and issues a replay
    /// request starting at `from`.
    fn enter_recovery(&mut self, wire: WireId, from: VirtualTime) {
        let stash = self.recovering.entry(wire).or_default();
        stash.requested_from = from;
        self.request_replay(wire, from);
    }

    fn request_replay(&mut self, wire: WireId, from: VirtualTime) {
        self.metrics
            .replay_requests_sent
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.obs.replay_requested(wire, from);
        match &self.wire_source[&wire] {
            WireSource::Local => {
                // Self-request: serve immediately from restored retention.
                self.serve_replay(wire, from);
            }
            WireSource::Remote(engine) => {
                let engine = *engine;
                self.router
                    .send(engine, Envelope::ReplayRequest { wire, from });
            }
            WireSource::External => {
                // The cluster supervisor answers external replays from the
                // message log (§II.F.4: "if the 'sender' is an external
                // component rather than another TART component, then the
                // messages are re-sent from the log").
                self.router.send(
                    crate::router::EXTERNAL_ENGINE,
                    Envelope::ReplayRequest { wire, from },
                );
            }
        }
    }

    /// Serves a replay request for a wire sourced on this engine.
    fn serve_replay(&mut self, wire: WireId, from: VirtualTime) {
        let Some(buf) = self.retention.get(&wire) else {
            return;
        };
        self.metrics
            .replays_served
            .fetch_add(1, AtomicOrdering::Relaxed);
        let frames = buf.replay_from(from);
        let count = frames.len() as u64;
        let dest = self.wire_dest[&wire].clone();
        let mut prev = VirtualTime::ZERO;
        for (vt, payload) in frames {
            self.transmit(
                &dest,
                Envelope::Data {
                    wire,
                    vt,
                    prev_vt: prev,
                    payload,
                },
            );
            prev = vt;
        }
        let through = self
            .advertisers
            .get(&wire)
            .map(SilenceAdvertiser::advertised_through)
            .unwrap_or(VirtualTime::ZERO);
        self.transmit(
            &dest,
            Envelope::ReplayDone {
                wire,
                through,
                frames: count,
            },
        );
    }

    fn finish_recovery(&mut self, wire: WireId, through: VirtualTime, frames: u64) {
        let Some(stash) = self.recovering.remove(&wire) else {
            // Not recovering: a ReplayDone doubles as an authoritative
            // silence promise (it cannot be lost — control plane).
            if self.mux.target_of(wire).is_some() {
                self.mux.promise_silence(wire, through);
            }
            return;
        };
        // Completeness check: replayed frames travel the faultable data
        // plane and can be lost again. If the burst is short, keep the
        // stash and re-request. A horizon below the requested start is a
        // valid answer — after a cold restart a checkpoint can be newer
        // than the source's surviving log, and the source truthfully
        // accounts for nothing in the requested span.
        let received = if through < stash.requested_from {
            0
        } else {
            stash.data.range(stash.requested_from..=through).count() as u64
        };
        if received < frames {
            let from = stash.requested_from;
            self.recovering.insert(wire, stash);
            self.recovering
                .get_mut(&wire)
                .expect("reinserted")
                .requested_from = from;
            self.request_replay(wire, from);
            return;
        }
        // Accept the covered prefix.
        let mut refeed = Vec::new();
        for (vt, (prev_vt, payload)) in stash.data {
            if vt <= through {
                if self.mux.target_of(wire).is_some()
                    && self.mux.push_message(wire, vt, payload).is_err()
                {
                    self.metrics
                        .duplicates_dropped
                        .fetch_add(1, AtomicOrdering::Relaxed);
                }
            } else {
                refeed.push((vt, prev_vt, payload));
            }
        }
        let silent = stash.silence.map_or(through, |s| s.max(through));
        if self.mux.target_of(wire).is_some() {
            self.mux.promise_silence(wire, silent);
        }
        // Frames past the replay horizon re-enter the normal path: their
        // prev_vt chains re-detect any hole that remains and re-request.
        for (vt, prev_vt, payload) in refeed {
            self.on_data(wire, vt, prev_vt, payload);
        }
    }

    /// Answers a curiosity probe for an output wire of this engine: compute
    /// the freshest truthful silence bound and transmit it (§II.H). If the
    /// bound cannot cover the receiver's need, the probe *cascades*: this
    /// component's own lagging inputs are probed in turn, so curiosity
    /// propagates through intermediate components of a deeper graph.
    fn answer_probe(&mut self, wire: WireId, needed_through: VirtualTime) {
        let Some(source) = self.spec.wire(wire).and_then(|w| w.from().component()) else {
            return;
        };
        if !self.components.contains_key(&source) {
            return; // not hosted here (stale probe after re-placement)
        }
        let bound = self.silence_bound(source, wire);
        if bound < needed_through {
            let mut visited = std::collections::BTreeSet::new();
            self.cascade_probe(source, needed_through, &mut visited);
        }
        let changed = self
            .advertisers
            .get_mut(&wire)
            .and_then(|adv| adv.advance_to(bound));
        // Reply with the watermark even when unchanged: the prior advance
        // may have been lost, and silence is idempotent.
        let through = self
            .advertisers
            .get(&wire)
            .map(SilenceAdvertiser::advertised_through)
            .unwrap_or(bound);
        let dest = self.wire_dest[&wire].clone();
        let _ = changed;
        self.metrics
            .silence_sent
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.obs.silence_sent(wire, through);
        let last_data = self
            .retention
            .get(&wire)
            .and_then(RetentionBuffer::last_sent)
            .unwrap_or(VirtualTime::ZERO);
        self.transmit(
            &dest,
            Envelope::Silence {
                wire,
                through,
                last_data,
            },
        );
    }

    /// The silence oracle for a component hosted here: no output on `wire`
    /// can carry a virtual time at or below the returned bound.
    ///
    /// `dequeue >= max(component clock, earliest possible input)`, plus the
    /// component's minimum work and the wire's link delay (§II.H).
    fn silence_bound(&self, component: ComponentId, wire: WireId) -> VirtualTime {
        let gate = self.mux.gate(component);
        let earliest_input = gate
            .wire_ids()
            .map(|w| gate.earliest_possible_vt(w))
            .min()
            .unwrap_or(VirtualTime::ZERO);
        let base = gate.clock().max_with(earliest_input);
        let bound = base
            .saturating_add(self.config.min_work_for(component))
            .saturating_add(self.config.link_delay_for(wire));
        // One tick earlier than the earliest possible delivery; also never
        // below what the send watermark already implies.
        let floor = self
            .sent_watermark
            .get(&wire)
            .copied()
            .unwrap_or(VirtualTime::ZERO);
        bound.prev().max_with(floor)
    }

    // -- Execution ----------------------------------------------------------

    /// Delivers every currently deliverable message, interleaving local
    /// self-probes until quiescent. Returns the number of messages
    /// processed. Call after [`EngineCore::handle`].
    pub fn pump(&mut self) -> u64 {
        let mut processed = 0;
        loop {
            while let Some((cid, decision)) = self.mux.poll() {
                let GateDecision::Deliver {
                    wire,
                    vt,
                    dequeue_vt,
                    msg,
                } = decision
                else {
                    unreachable!("poll only returns deliveries");
                };
                self.process_delivery(cid, wire, vt, dequeue_vt, msg);
                processed += 1;
            }
            // Under curiosity-style policies, probe whoever we are stuck
            // on. Local probes resolve synchronously and may unblock more
            // deliveries; keep going until they stop making progress.
            if !(self.config.silence.probes() && self.issue_probes()) {
                break;
            }
        }
        if processed > 0 {
            self.metrics
                .processed
                .fetch_add(processed, AtomicOrdering::Relaxed);
        }
        processed
    }

    fn process_delivery(
        &mut self,
        cid: ComponentId,
        wire: WireId,
        vt: VirtualTime,
        dequeue_vt: VirtualTime,
        msg: Value,
    ) {
        self.consumed.insert(wire, vt);
        self.obs.message_delivered(wire, vt);
        let in_port = self
            .spec
            .wire(wire)
            .and_then(|w| w.to().port())
            .unwrap_or(PortId::new(0));
        let mut component = self
            .components
            .get_mut(&cid)
            .expect("delivery to hosted component")
            .take()
            .expect("component not reentrantly executing");
        let measure = self.calibrators.contains_key(&cid);
        // HandlerTimer is the sanctioned wall-clock boundary (§II.E): the
        // measurement feeds calibration via the logged DeterminismFault
        // path and the obs estimator-residual histogram — never virtual
        // time directly.
        let started = crate::clock::HandlerTimer::start();
        let mut ctx = EngineCtx::new(self, cid, dequeue_vt);
        component.on_message(in_port, &msg, &mut ctx);
        let EngineCtx {
            sends, features, ..
        } = ctx;
        self.components.insert(cid, Some(component));
        let measured = started.elapsed_ns();
        if measure {
            self.observe_sample(cid, features.clone(), measured);
        }

        // Completion time from the active estimator (§II.E): this is the
        // component's new clock.
        let est = self.estimators[&cid].estimate_at(dequeue_vt, &features);
        self.obs.estimator_residual(est.as_ticks(), measured);
        let completion = dequeue_vt + est;
        self.mux.gate_mut(cid).advance_clock(completion);

        // Route the outputs.
        self.route_sends(cid, completion, sends);

        self.processed_since_ckpt += 1;
        if let Some(every) = self.config.hash_state_every {
            self.deliveries_since_hash += 1;
            if self.deliveries_since_hash >= every {
                self.deliveries_since_hash = 0;
                self.hash_bookkeeping();
            }
        }
        if self.processed_since_ckpt >= self.config.checkpoint_every {
            self.take_checkpoint();
        }
    }

    /// Between-checkpoint verified-replay cadence: digests the engine's
    /// deterministic bookkeeping — consumed and sent watermarks plus
    /// component clocks — the pure slice of checkpointable state that can
    /// be hashed without draining the components' incremental journals.
    /// The digest itself is discarded (there is no recorded reference
    /// between checkpoints); what it buys is a heartbeat in the
    /// `state_hashes_computed` counter proving the hash cadence is alive.
    fn hash_bookkeeping(&mut self) {
        let clocks: BTreeMap<ComponentId, VirtualTime> = self
            .mux
            .component_ids()
            .map(|c| (c, self.mux.gate(c).clock()))
            .collect();
        let mut buf = bytes::BytesMut::new();
        use tart_codec::Encode;
        self.consumed.encode(&mut buf);
        self.sent_watermark.encode(&mut buf);
        clocks.encode(&mut buf);
        let mut h = StateHasher::new();
        h.update(&buf);
        let _ = h.finish();
        self.obs.state_hashes_computed(1);
    }

    /// Stamps and transmits one output message on `out_wire`.
    fn emit(&mut self, out_wire: WireId, completion: VirtualTime, seq: u64, payload: Value) {
        let base = completion
            + self.config.link_delay_for(out_wire)
            + tart_vtime::VirtualDuration::from_ticks(seq);
        // Deterministic per-wire monotonicity bump: `sent_watermark` is part
        // of checkpointed state, so replays reproduce identical stamps.
        let prev = self.sent_watermark.get(&out_wire).copied();
        let out_vt = match prev {
            Some(w) if base <= w => w.next(),
            _ => base,
        };
        self.sent_watermark.insert(out_wire, out_vt);

        let dest = self.wire_dest[&out_wire].clone();
        if let WireDest::External(consumer) = &dest {
            // Under durability external wires retain too (see
            // `set_durable`): the channel below is volatile, and the
            // checkpoint about to durably consume this output's input must
            // carry the bytes to re-emit it after a whole-process crash.
            if let Some(buf) = self.retention.get_mut(&out_wire) {
                buf.record(out_vt, payload.clone());
            }
            self.metrics
                .outputs_emitted
                .fetch_add(1, AtomicOrdering::Relaxed);
            let _ = self.outputs.send(OutputRecord {
                consumer: consumer.clone(),
                wire: out_wire,
                vt: out_vt,
                payload,
            });
            return;
        }
        if let Some(adv) = self.advertisers.get_mut(&out_wire) {
            adv.record_data(out_vt);
        }
        let prev_vt = prev.unwrap_or(VirtualTime::ZERO);
        if let Some(buf) = self.retention.get_mut(&out_wire) {
            buf.record(out_vt, payload.clone());
        }
        self.transmit(
            &dest,
            Envelope::Data {
                wire: out_wire,
                vt: out_vt,
                prev_vt,
                payload,
            },
        );
    }

    fn transmit(&mut self, dest: &WireDest, env: Envelope) {
        match dest {
            WireDest::Local => {
                // Same-engine delivery without leaving the core.
                let _ = self.handle(env);
            }
            WireDest::Remote(engine) => self.router.send(*engine, env),
            WireDest::External(_) => unreachable!("external outputs use the output channel"),
        }
    }

    /// Executes a same-engine two-way call (see [`crate::ctx::EngineCtx`]).
    ///
    /// # Panics
    ///
    /// Panics on calls to components hosted elsewhere, on unwired call
    /// ports, and on reentrant call cycles.
    pub(crate) fn execute_call(
        &mut self,
        caller: ComponentId,
        port: PortId,
        req: Value,
        now: VirtualTime,
    ) -> Value {
        let wires = self.spec.wires_from_port(caller, port);
        let wire = wires
            .first()
            .unwrap_or_else(|| panic!("call port {port} of {caller} is not wired"));
        let callee = wire
            .to()
            .component()
            .expect("calls cannot target external consumers");
        let callee_port = wire.to().port().expect("component endpoint has a port");
        let mut component = self
            .components
            .get_mut(&callee)
            .unwrap_or_else(|| panic!("cross-engine calls are not supported (callee {callee})"))
            .take()
            .unwrap_or_else(|| panic!("call cycle detected at {callee}"));
        let arrival = now.max_with(self.mux.gate(callee).clock());
        let mut sub = EngineCtx::new(self, callee, arrival);
        let reply = component.on_call(callee_port, &req, &mut sub);
        let EngineCtx {
            sends, features, ..
        } = sub;
        self.components.insert(callee, Some(component));
        let est = self.estimators[&callee].estimate_at(arrival, &features);
        let completion = arrival + est;
        self.mux.gate_mut(callee).advance_clock(completion);
        self.route_sends(callee, completion, sends);
        reply
    }

    /// Routes a handler's buffered sends: one emit per (send, out-wire)
    /// pair. Reuses a scratch wire list and moves (rather than clones) the
    /// payload into the last wire's emit — the common single-wire fan-out
    /// never copies the payload.
    fn route_sends(
        &mut self,
        from: ComponentId,
        completion: VirtualTime,
        sends: Vec<(PortId, Value)>,
    ) {
        let mut out_wires = std::mem::take(&mut self.out_wire_scratch);
        for (seq, (port, payload)) in sends.into_iter().enumerate() {
            out_wires.clear();
            out_wires.extend(self.spec.wires_from_port(from, port).iter().map(|w| w.id()));
            if let Some((&last, rest)) = out_wires.split_last() {
                for &w in rest {
                    self.emit(w, completion, seq as u64, payload.clone());
                }
                self.emit(last, completion, seq as u64, payload);
            }
        }
        out_wires.clear();
        self.out_wire_scratch = out_wires;
    }

    /// Sends curiosity probes for every blocked gate's lagging wires.
    /// Returns `true` if a *local* probe advanced silence (more deliveries
    /// may have become possible).
    fn issue_probes(&mut self) -> bool {
        let mut local_progress = false;
        let blocked = self.mux.blocked();
        for (_cid, decision) in blocked {
            let GateDecision::Blocked { lagging, .. } = decision else {
                continue;
            };
            for (wire, needed) in lagging {
                match &self.wire_source[&wire] {
                    WireSource::Local => {
                        // Probe ourselves directly: compute the bound and
                        // promise it on the local gate.
                        let Some(source) = self.spec.wire(wire).and_then(|w| w.from().component())
                        else {
                            continue;
                        };
                        let bound = self.silence_bound(source, wire);
                        if let Some(adv) = self.advertisers.get_mut(&wire) {
                            if let Some(through) = adv.advance_to(bound) {
                                self.mux.promise_silence(wire, through);
                                local_progress = true;
                            }
                        }
                        if bound < needed {
                            // The local sender itself is waiting on inputs:
                            // cascade the curiosity upstream.
                            let mut visited = std::collections::BTreeSet::new();
                            self.cascade_probe(source, needed, &mut visited);
                        }
                    }
                    WireSource::Remote(engine) => {
                        let engine = *engine;
                        if self.probes.should_probe(wire, needed) {
                            self.metrics
                                .probes_sent
                                .fetch_add(1, AtomicOrdering::Relaxed);
                            self.obs.probe_sent(wire, needed);
                            self.router.send(
                                engine,
                                Envelope::Probe {
                                    wire,
                                    needed_through: needed,
                                },
                            );
                        }
                    }
                    WireSource::External => {
                        // External producers are not probed; their silence
                        // comes from injector heartbeats (§II.E logs + real
                        // time stamps make them self-accounting).
                    }
                }
            }
        }
        local_progress
    }

    /// Probes every lagging input of `component` so its silence bound can
    /// grow — the transitive step of curiosity-driven propagation. Probing
    /// a little too deep is harmless (silence is idempotent); probing too
    /// shallow wedges layered merges.
    fn cascade_probe(
        &mut self,
        component: ComponentId,
        needed: VirtualTime,
        visited: &mut std::collections::BTreeSet<ComponentId>,
    ) {
        if !visited.insert(component) {
            return;
        }
        let wires: Vec<WireId> = self.mux.gate(component).wire_ids().collect();
        for wire in wires {
            if self.mux.gate(component).earliest_possible_vt(wire) > needed {
                continue; // this input already accounts far enough
            }
            match self.wire_source[&wire].clone() {
                WireSource::Remote(engine) => {
                    if self.probes.should_probe(wire, needed) {
                        self.metrics
                            .probes_sent
                            .fetch_add(1, AtomicOrdering::Relaxed);
                        self.obs.probe_sent(wire, needed);
                        self.router.send(
                            engine,
                            Envelope::Probe {
                                wire,
                                needed_through: needed,
                            },
                        );
                    }
                }
                WireSource::Local => {
                    let Some(source) = self.spec.wire(wire).and_then(|w| w.from().component())
                    else {
                        continue;
                    };
                    let bound = self.silence_bound(source, wire);
                    if let Some(adv) = self.advertisers.get_mut(&wire) {
                        if let Some(through) = adv.advance_to(bound) {
                            self.mux.promise_silence(wire, through);
                        }
                    }
                    if bound < needed {
                        self.cascade_probe(source, needed, visited);
                    }
                }
                WireSource::External => {
                    // External producers advance via injector heartbeats.
                }
            }
        }
    }

    /// Idle-tick maintenance: forget outstanding probes (replies may have
    /// been lost) and re-evaluate. Under the aggressive policy, volunteer
    /// fresh silence on every output wire.
    pub fn on_idle_tick(&mut self) {
        self.probes = ProbeTracker::new();
        if matches!(self.config.silence, SilencePolicy::Aggressive { .. }) {
            self.broadcast_silence();
        }
        self.pump();
    }

    /// Volunteers the current silence bound on every output wire.
    pub(crate) fn broadcast_silence(&mut self) {
        let wires: Vec<WireId> = self.retention.keys().copied().collect();
        for wire in wires {
            let Some(source) = self.spec.wire(wire).and_then(|w| w.from().component()) else {
                continue;
            };
            let bound = self.silence_bound(source, wire);
            let advance = self
                .advertisers
                .get_mut(&wire)
                .and_then(|adv| adv.advance_to(bound));
            if let Some(through) = advance {
                self.metrics
                    .silence_sent
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.obs.silence_sent(wire, through);
                let dest = self.wire_dest[&wire].clone();
                let last_data = self
                    .retention
                    .get(&wire)
                    .and_then(RetentionBuffer::last_sent)
                    .unwrap_or(VirtualTime::ZERO);
                self.transmit(
                    &dest,
                    Envelope::Silence {
                        wire,
                        through,
                        last_data,
                    },
                );
            }
        }
    }

    // -- Checkpointing and recovery ------------------------------------------

    /// Takes a soft checkpoint and ships it to the replica (§II.F.2);
    /// under durability, also persists it and gates the retention
    /// `TrimAck`s on the persist succeeding.
    pub fn take_checkpoint(&mut self) {
        self.processed_since_ckpt = 0;
        // Durable generations persist as deltas against the last full one;
        // a full every `full_checkpoint_every` anchors the chain so restore
        // replays at most one full + a bounded delta tail.
        let durable_full_due = self.durable.is_some() && {
            let every = self
                .config
                .durability
                .as_ref()
                .map_or(1, |d| d.full_checkpoint_every.max(1));
            self.ckpts_since_full + 1 >= every
        };
        let mode = if self.next_ckpt_full || durable_full_due {
            CheckpointMode::Full
        } else {
            CheckpointMode::Incremental
        };
        self.next_ckpt_full = false;
        let mut ckpt = EngineCheckpoint::new(self.id, self.ckpt_seq);
        self.ckpt_seq += 1;
        let cids: Vec<ComponentId> = self.mux.component_ids().collect();
        for cid in cids {
            let clock = self.mux.gate(cid).clock();
            let component = self
                .components
                .get_mut(&cid)
                .expect("hosted")
                .as_mut()
                .expect("not executing");
            ckpt.components
                .insert(cid, component.checkpoint(mode, clock));
            ckpt.clocks.insert(cid, clock);
        }
        // A delta in which nothing changed carries no chunks at all, and on
        // disk an all-empty checkpoint is indistinguishable from (and would
        // be classified as) a self-contained full — one that seeds a restore
        // chain with nothing. Re-capture it as a genuine full generation.
        let mode = if self.durable.is_some()
            && mode == CheckpointMode::Incremental
            && ckpt.is_self_contained()
        {
            for (cid, snap) in &mut ckpt.components {
                let clock = ckpt.clocks[cid];
                let component = self
                    .components
                    .get_mut(cid)
                    .expect("hosted")
                    .as_mut()
                    .expect("not executing");
                *snap = component.checkpoint(CheckpointMode::Full, clock);
            }
            CheckpointMode::Full
        } else {
            mode
        };
        for (w, vt) in &self.consumed {
            ckpt.consumed.insert(*w, *vt);
        }
        for (w, vt) in &self.sent_watermark {
            ckpt.sent.insert(*w, *vt);
        }
        // In-flight retention rides with the checkpoint. Local wires always
        // (sender and receiver state die together, so the replica is the
        // only copy); every wire under durability (a whole-cluster crash
        // kills the remote receivers' upstreams too — each engine must
        // bring its own send-side retention back from disk).
        let durable = self.durable.is_some();
        for (w, dest) in &self.wire_dest {
            let local = *dest == WireDest::Local;
            if !(local || durable) {
                continue;
            }
            if let Some(buf) = self.retention.get_mut(w) {
                if local {
                    if let Some(consumed) = self.consumed.get(w) {
                        buf.trim_through(*consumed);
                    }
                }
                let frames = buf.replay_from(VirtualTime::ZERO);
                if !frames.is_empty() {
                    ckpt.retention.insert(*w, frames);
                }
            }
        }
        // Verified replay: record every component's deterministic state
        // digest and the combined engine digest, then seal the checkpoint
        // into the hash chain. Self-contained generations restart the chain
        // so any suffix anchored at a full verifies independently — exactly
        // the shape `load_chain` can fall back to.
        let hashed: Vec<ComponentId> = ckpt.components.keys().copied().collect();
        for cid in hashed {
            let clock = ckpt.clocks[&cid];
            let component = self
                .components
                .get_mut(&cid)
                .expect("hosted")
                .as_mut()
                .expect("not executing");
            ckpt.component_hashes
                .insert(cid, component.state_hash(clock));
        }
        ckpt.state_hash = combined_state_hash(
            &ckpt.component_hashes,
            &ckpt.clocks,
            &ckpt.consumed,
            &ckpt.sent,
        );
        let prev_seal = if ckpt.is_self_contained() {
            StateHash::ZERO
        } else {
            self.last_chain_seal
        };
        ckpt.seal(&prev_seal);
        self.last_chain_seal = ckpt.chain_seal;
        self.obs
            .state_hashes_computed(ckpt.component_hashes.len() as u64 + 1);
        let bytes = tart_codec::Encode::to_bytes(&ckpt).len() as u64;
        self.metrics
            .checkpoints
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.metrics
            .checkpoint_bytes
            .fetch_add(bytes, AtomicOrdering::Relaxed);
        if mode == CheckpointMode::Incremental {
            self.metrics
                .delta_checkpoints
                .fetch_add(1, AtomicOrdering::Relaxed);
            self.metrics
                .delta_checkpoint_bytes
                .fetch_add(bytes, AtomicOrdering::Relaxed);
        }
        // Persist BEFORE shipping: once anyone can see this checkpoint, it
        // must be able to survive a whole-cluster crash.
        let persisted = match &self.durable {
            // tart-lint: allow(TAINT-FLOW) -- durability ack only: persist's wall-clock read times the fsync; the bool gates shipping and restore re-derives from the store itself
            Some(store) => store.persist_with(&ckpt, self.durable_sync).is_ok(),
            None => true,
        };
        // Warm standby: stream the checkpoint to the standby plane so the
        // passive side can pre-apply it in the background. Fire-and-forget;
        // the `ReplicaStore` push below remains the correctness path, so a
        // lost or ignored stream member costs warmth, never recoverability.
        if self.config.standby.is_some() {
            self.router.send(
                crate::router::STANDBY_ENGINE,
                Envelope::StandbyCheckpoint {
                    ckpt: Box::new(ckpt.clone()),
                },
            );
        }
        self.replica.push_checkpoint(ckpt);
        if !persisted {
            // The disk refused the new generation: upstream retention must
            // keep serving from the last durable consumed watermarks, so no
            // TrimAck may advance. A delta skipped on disk would leave a
            // hole in the chain, so the next checkpoint re-anchors with a
            // full generation. The replica still has the checkpoint for
            // single-failure promotion.
            self.next_ckpt_full = true;
            return;
        }
        if self.durable.is_some() {
            self.ckpts_since_full = match mode {
                CheckpointMode::Full => 0,
                CheckpointMode::Incremental => self.ckpts_since_full + 1,
            };
        }
        // Downstream of our inputs: acknowledge what is *durably* covered
        // so upstream retention can trim. Without durability that is simply
        // the current consumed watermark; with it, acks only move at *full*
        // persists — a delta is worthless without its base chain, and
        // recovery may fall back a whole chain — and the watermark lags one
        // full generation (see `durable_acked`).
        let acks: Vec<(WireId, VirtualTime)> = if self.durable.is_some() {
            if mode == CheckpointMode::Full {
                let acks = self.durable_acked.iter().map(|(w, vt)| (*w, *vt)).collect();
                self.durable_acked = self.consumed.clone();
                acks
            } else {
                Vec::new()
            }
        } else {
            self.consumed.iter().map(|(w, vt)| (*w, *vt)).collect()
        };
        for (wire, through) in acks {
            if let Some(WireSource::Remote(engine)) = self.wire_source.get(&wire) {
                self.router
                    .send(*engine, Envelope::TrimAck { wire, through });
            }
        }
    }

    /// Rebuilds state from a checkpoint chain plus the fault log, then
    /// marks every input wire as recovering and issues replay requests —
    /// to upstream engines for internal wires, to the cluster supervisor
    /// (message log) for external wires.
    ///
    /// # Errors
    ///
    /// This is a verified-replay horizon: after the chain is applied, every
    /// component's state digest — and the combined engine digest — is
    /// recomputed and compared against the hashes the chain tail recorded
    /// at checkpoint time. A mismatch (bit rot, a torn replica, or
    /// nondeterministic re-execution) returns a [`DivergenceFault`]
    /// *before* any recovered output escapes; the engine must not be run
    /// after a divergent restore.
    pub fn restore(
        &mut self,
        chain: &[EngineCheckpoint],
        faults: &[(ComponentId, DeterminismFault)],
    ) -> Result<(), DivergenceFault> {
        // Apply snapshots in shipped order.
        for ckpt in chain {
            self.apply_member_snapshots(ckpt);
        }
        self.apply_faults(faults);
        if chain.last().is_none() {
            // No checkpoint ever shipped: restart from scratch; replay
            // everything from the beginning.
            let wires: Vec<WireId> = self.wire_source.keys().copied().collect();
            for wire in wires {
                self.enter_recovery(wire, VirtualTime::ZERO);
            }
            return Ok(());
        }
        self.finish_restore(chain)
    }

    /// Applies one chain member's component snapshots, in place. No
    /// scheduler bookkeeping, no verification, no router traffic — safe to
    /// run against a core that is not (yet) the live engine, which is
    /// exactly how the warm-standby plane pre-applies the stream in the
    /// background (`crate::standby`).
    pub(crate) fn apply_member_snapshots(&mut self, ckpt: &EngineCheckpoint) {
        for (cid, snap) in &ckpt.components {
            let component = self
                .components
                .get_mut(cid)
                .expect("checkpoint names hosted component")
                .as_mut()
                .expect("not executing");
            component
                .restore(snap)
                .expect("replica checkpoint chain is well-formed");
        }
    }

    /// Reinstalls the determinism-fault log: re-calibrations in order
    /// (§II.G.4), whether or not a checkpoint was ever shipped — replay
    /// must use the old estimator up to each logged switch point and the
    /// new one after (the paper's time-100,000,000 example).
    pub(crate) fn apply_faults(&mut self, faults: &[(ComponentId, DeterminismFault)]) {
        for (cid, fault) in faults {
            if let Some(schedule) = self.estimators.get_mut(cid) {
                schedule
                    .apply_fault(fault)
                    .expect("fault log is monotone per component");
                self.metrics
                    .determinism_faults
                    .fetch_add(1, AtomicOrdering::Relaxed);
            }
            // Replay must not re-tune a second time at a different point:
            // the logged fault already covers this component.
            self.calibrators.remove(cid);
        }
    }

    /// Verifies the digests `ckpt` recorded against live component state —
    /// which must already reflect the chain up to and including `ckpt` —
    /// then the combined engine digest over the checkpoint's own recorded
    /// bookkeeping. Pure read of component state: no scheduler or router
    /// side effects, so the standby plane runs it after every background
    /// pre-apply and the cold path runs the identical check at the chain
    /// tail inside [`EngineCore::finish_restore`].
    pub(crate) fn verify_member(&mut self, ckpt: &EngineCheckpoint) -> Result<(), DivergenceFault> {
        let mut recomputed = BTreeMap::new();
        for (cid, expected) in &ckpt.component_hashes {
            let clock = ckpt.clocks.get(cid).copied().unwrap_or(VirtualTime::ZERO);
            let component = self
                .components
                .get_mut(cid)
                .expect("checkpoint names hosted component")
                .as_mut()
                .expect("not executing");
            let actual = component.state_hash(clock);
            if actual != *expected {
                self.obs.divergence(Some(*cid), clock);
                return Err(DivergenceFault {
                    component: Some(*cid),
                    vt: clock,
                    expected: *expected,
                    actual,
                });
            }
            recomputed.insert(*cid, actual);
        }
        self.obs.state_hashes_computed(recomputed.len() as u64 + 1);
        let combined = combined_state_hash(&recomputed, &ckpt.clocks, &ckpt.consumed, &ckpt.sent);
        if combined != ckpt.state_hash {
            let vt = ckpt
                .clocks
                .values()
                .copied()
                .max()
                .unwrap_or(VirtualTime::ZERO);
            self.obs.divergence(None, vt);
            return Err(DivergenceFault {
                component: None,
                vt,
                expected: ckpt.state_hash,
                actual: combined,
            });
        }
        Ok(())
    }

    /// Completes a restore whose component snapshots are already applied:
    /// scheduler bookkeeping and retention from the chain, digest
    /// verification at the tail, re-emission of retained external outputs,
    /// and replay-request arming for every input wire. Factored out of
    /// [`EngineCore::restore`] so a warm promotion — whose standby core
    /// pre-applied most of the chain in the background — runs the same
    /// activation over a chain it mostly already carries.
    ///
    /// # Errors
    ///
    /// A [`DivergenceFault`] when the applied state fails the tail digests.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain (the empty case restores vacuously in
    /// [`EngineCore::restore`] and never reaches here).
    pub(crate) fn finish_restore(
        &mut self,
        chain: &[EngineCheckpoint],
    ) -> Result<(), DivergenceFault> {
        let last = chain
            .last()
            .expect("finish_restore requires a non-empty chain");
        // Scheduler bookkeeping from the last checkpoint.
        for (cid, clock) in &last.clocks {
            self.mux.gate_mut(*cid).advance_clock(*clock);
        }
        for (w, vt) in &last.consumed {
            self.consumed.insert(*w, *vt);
        }
        for (w, vt) in &last.sent {
            self.sent_watermark.insert(*w, *vt);
            if let Some(buf) = self.retention.get_mut(w) {
                buf.reset_chain(Some(*vt));
            }
            // Everything through the send watermark was accounted to the
            // receiver before the failure; the advertiser must know, or
            // replay bursts would close with a zero horizon.
            if let Some(adv) = self.advertisers.get_mut(w) {
                adv.record_data(*vt);
            }
        }
        // In-flight retention from the chain (later checkpoints extend
        // earlier ones; `record` ignores frames at or before the back, and
        // `reset_chain` above cleared the buffers, so replaying the chain's
        // captures in order rebuilds each buffer exactly).
        for ckpt in chain {
            for (w, frames) in &ckpt.retention {
                if let Some(buf) = self.retention.get_mut(w) {
                    for (vt, payload) in frames {
                        buf.record(*vt, payload.clone());
                    }
                }
            }
        }
        // The chain's full head is the most conservative restart point a
        // future recovery could fall back to (a damaged delta tail strands
        // everything after the head): acks may advance to *its* consumed
        // watermarks at the next full persist, no further.
        let base = chain
            .iter()
            .rev()
            .find(|c| c.is_self_contained())
            .unwrap_or(last);
        self.durable_acked = base.consumed.iter().map(|(w, vt)| (*w, *vt)).collect();
        // Verified replay: the chain tail recorded a digest of every
        // component's state and of the engine bookkeeping; the restored
        // state must reproduce them exactly, or recovery did not
        // reconverge. Checked before any recovered output escapes below.
        self.last_chain_seal = last.chain_seal;
        self.verify_member(last)?;
        // External outputs: the channel the originals went down died with
        // the process, and their producing inputs are consumed per this
        // chain, so replay will never regenerate them — re-emit every
        // retained (= not yet drained-and-acked) frame now. A consumer that
        // did see some of them discards the duplicates by timestamp.
        let externals: Vec<(WireId, String)> = self
            .wire_dest
            .iter()
            .filter_map(|(w, d)| match d {
                WireDest::External(name) => Some((*w, name.clone())),
                _ => None,
            })
            .collect();
        for (w, consumer) in externals {
            let frames = match self.retention.get(&w) {
                Some(buf) => buf.replay_from(VirtualTime::ZERO),
                None => Vec::new(),
            };
            for (vt, payload) in frames {
                self.metrics
                    .outputs_emitted
                    .fetch_add(1, AtomicOrdering::Relaxed);
                let _ = self.outputs.send(OutputRecord {
                    consumer: consumer.clone(),
                    wire: w,
                    vt,
                    payload,
                });
            }
        }
        self.next_ckpt_full = true;
        self.ckpts_since_full = 0;
        self.ckpt_seq = last.seq + 1;
        // Every input wire: dedupe floor at the consumed watermark, then
        // recover via replay.
        let wires: Vec<WireId> = self.wire_source.keys().copied().collect();
        for wire in wires {
            let consumed = self.consumed.get(&wire).copied();
            if let Some(vt) = consumed {
                self.mux.promise_silence(wire, vt);
            }
            let from = consumed.map_or(VirtualTime::ZERO, VirtualTime::next);
            self.enter_recovery(wire, from);
        }
        Ok(())
    }

    /// Feeds one measured handler execution to the component's calibrator;
    /// once enough samples accumulate, fits block 0 by the paper's
    /// through-origin regression and installs the result as a determinism
    /// fault (§II.G.4's dynamic re-tuning). Each component re-tunes at most
    /// once per activation — faults are "an extra overhead whose frequency
    /// we expect to minimize".
    fn observe_sample(
        &mut self,
        cid: ComponentId,
        features: tart_model::Features,
        measured_ns: u64,
    ) {
        let Some(calibrator) = self.calibrators.get_mut(&cid) else {
            return;
        };
        calibrator.add_sample(features, measured_ns.max(1));
        if !calibrator.is_ready() {
            return;
        }
        let fitted = calibrator.fit_through_origin(tart_model::BlockId(0)).ok();
        self.calibrators.remove(&cid);
        if let Some((spec, _fit)) = fitted {
            self.recalibrate(cid, spec);
        }
    }

    /// Installs a re-calibrated estimator, synchronously logging the
    /// determinism fault first (§II.G.4).
    pub(crate) fn recalibrate(
        &mut self,
        component: ComponentId,
        spec: tart_estimator::EstimatorSpec,
    ) {
        let Some(schedule) = self.estimators.get_mut(&component) else {
            return;
        };
        let clock = self.mux.gate(component).clock();
        let latest = schedule
            .iter()
            .last()
            .map(|(vt, _)| vt)
            .unwrap_or(VirtualTime::ZERO);
        let vt = clock.max_with(latest).next();
        let fault = DeterminismFault { vt, new_spec: spec };
        // Log BEFORE use: replay must see the fault even if we crash
        // immediately after switching. Under durability the disk log is
        // part of that guarantee — if it refuses the record, skip the
        // re-calibration entirely (keeping the old estimator is always
        // safe; using a spec a cold restart would never learn of is not).
        if let Some(store) = &self.durable {
            // tart-lint: allow(TAINT-FLOW) -- fault-log ack only: the Err branch deterministically keeps the old estimator; the store's dir scan never reaches engine state
            if store.log_fault(self.id, component, &fault).is_err() {
                self.calibrators.remove(&component);
                return;
            }
        }
        self.replica.log_fault(component, fault.clone());
        self.estimators
            .get_mut(&component)
            .expect("checked above")
            .apply_fault(&fault)
            .expect("switch time is past every earlier switch");
        self.metrics
            .determinism_faults
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.obs.recalibration(component, vt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use crossbeam::channel::unbounded;
    use tart_estimator::EstimatorSpec;
    use tart_model::reference::{self, fan_in_app};
    use tart_model::BlockId;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    /// A single-engine core for the Fig 1 app with paper-style estimators.
    fn single_core() -> (EngineCore, crossbeam::channel::Receiver<OutputRecord>) {
        let spec = fan_in_app(2).unwrap();
        let placement = Placement::single_engine(&spec);
        let mut config = ClusterConfig::logical_time().with_checkpoint_every(1_000);
        for name in ["Sender1", "Sender2"] {
            let cid = spec.component_by_name(name).unwrap().id();
            config = config.with_estimator(
                cid,
                EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000),
            );
        }
        let merger = spec.component_by_name("Merger").unwrap().id();
        config = config.with_estimator(merger, EstimatorSpec::per_iteration(BlockId(0), 400_000));
        let router = Router::new(FaultPlan::none());
        let replica = ReplicaStore::new();
        let (tx, rx) = unbounded();
        let core = EngineCore::new(
            EngineId::new(0),
            &spec,
            &placement,
            &config,
            router,
            replica,
            tx,
        );
        (core, rx)
    }

    fn client_wires(core: &EngineCore) -> (WireId, WireId) {
        let ins = core.spec.external_inputs();
        (ins[0].id(), ins[1].id())
    }

    fn data(wire: WireId, t: u64, prev: u64, payload: &str) -> Envelope {
        Envelope::Data {
            wire,
            vt: vt(t),
            prev_vt: vt(prev),
            payload: Value::from(payload),
        }
    }

    #[test]
    fn paper_example_flows_end_to_end() {
        let (mut core, outputs) = single_core();
        let (w1, w2) = client_wires(&core);
        // §II.E: sentences of length 3 and 2 at times 50 000 and 80 000.
        assert_eq!(core.handle(data(w1, 50_000, 0, "a b c")), Flow::Continue);
        assert_eq!(core.handle(data(w2, 80_000, 0, "d e")), Flow::Continue);
        core.pump();
        // Senders ran, but the merger needs client silence to proceed
        // (clients might still deliver earlier external messages).
        core.handle(Envelope::Eos {
            wire: w1,
            last_data: vt(50_000),
        });
        core.handle(Envelope::Eos {
            wire: w2,
            last_data: vt(80_000),
        });
        core.pump();
        let outs: Vec<OutputRecord> = outputs.try_iter().collect();
        assert_eq!(outs.len(), 2, "merger emitted one output per sentence");
        // Sender2's message (vt 202 000) processed before Sender1's (233 000):
        // output vts are 202 000+400 000 and max(233 000, 602 000)+400 000.
        assert_eq!(outs[0].vt, vt(602_000));
        assert_eq!(outs[1].vt, vt(1_002_000));
        assert_eq!(outs[0].payload.get("seq").unwrap(), &Value::I64(1));
        assert_eq!(outs[1].payload.get("seq").unwrap(), &Value::I64(2));
        assert_eq!(core.metrics().processed, 4);
    }

    #[test]
    fn duplicate_data_is_discarded_by_timestamp() {
        let (mut core, _outputs) = single_core();
        let (w1, _) = client_wires(&core);
        core.handle(data(w1, 50_000, 0, "a"));
        core.handle(data(w1, 50_000, 0, "a")); // duplicated by the link
        core.pump();
        assert_eq!(core.metrics().duplicates_dropped, 1);
    }

    #[test]
    fn lost_message_triggers_replay_request_via_prev_chain() {
        let (mut core, _outputs) = single_core();
        let (w1, _) = client_wires(&core);
        core.handle(data(w1, 50_000, 0, "a"));
        // The message at 60 000 was lost; its successor names it.
        core.handle(data(w1, 70_000, 60_000, "c"));
        assert!(core.is_recovering());
        let m = core.metrics();
        assert_eq!(m.losses_detected, 1);
        assert_eq!(m.replay_requests_sent, 1);
        // The replay arrives (external wires are served by the cluster; here
        // we hand-feed what the log would resend).
        core.handle(data(w1, 60_000, 50_000, "b"));
        core.handle(Envelope::ReplayDone {
            wire: w1,
            through: vt(70_000),
            frames: 1,
        });
        assert!(!core.is_recovering());
        core.pump();
        assert_eq!(
            core.metrics().processed,
            3,
            "all three sentences processed in order"
        );
    }

    #[test]
    fn checkpoint_restore_reproduces_state_and_outputs() {
        // Run A: process, checkpoint, process more, recording outputs.
        let (mut a, outputs_a) = single_core();
        let (w1, w2) = client_wires(&a);
        a.handle(data(w1, 50_000, 0, "x y"));
        a.handle(data(w2, 60_000, 0, "x"));
        a.pump();
        a.handle(Envelope::Checkpoint);
        let replica = a.replica.clone();
        assert_eq!(replica.len(), 1);
        a.handle(data(w1, 900_000, 50_000, "x z"));
        a.handle(Envelope::Eos {
            wire: w1,
            last_data: vt(900_000),
        });
        a.handle(Envelope::Eos {
            wire: w2,
            last_data: vt(60_000),
        });
        a.pump();
        let outs_a: Vec<OutputRecord> = outputs_a.try_iter().collect();
        assert_eq!(outs_a.len(), 3);

        // Run B: a fresh core restored from A's replica — the failover path.
        let (mut b, outputs_b) = single_core();
        b.restore(&replica.chain(), &replica.faults())
            .expect("restore verifies against recorded hashes");
        assert!(b.is_recovering());
        assert_eq!(
            b.metrics().replay_requests_sent,
            4,
            "all four input wires (two external, two internal) ask for replay"
        );
        // The cluster supervisor would replay the log; hand-feed it here.
        b.handle(data(w1, 900_000, 50_000, "x z"));
        b.handle(Envelope::ReplayDone {
            wire: w1,
            through: VirtualTime::MAX,
            frames: 1,
        });
        b.handle(Envelope::ReplayDone {
            wire: w2,
            through: VirtualTime::MAX,
            frames: 0,
        });
        assert!(!b.is_recovering());
        b.pump();
        let outs_b: Vec<OutputRecord> = outputs_b.try_iter().collect();
        // At checkpoint time the merger had processed one message; the
        // restored engine re-executes the remaining two with IDENTICAL
        // virtual times and payloads as A's second and third outputs:
        // determinism makes recovery invisible (modulo stutter).
        assert_eq!(outs_b.len(), 2);
        assert_eq!(outs_b[0].vt, outs_a[1].vt);
        assert_eq!(outs_b[0].payload, outs_a[1].payload);
        assert_eq!(outs_b[1].vt, outs_a[2].vt);
        assert_eq!(outs_b[1].payload, outs_a[2].payload);
    }

    #[test]
    fn restore_without_any_checkpoint_replays_from_zero() {
        let (mut a, _out) = single_core();
        let replica = a.replica.clone();
        a.restore(&replica.chain(), &[])
            .expect("restore verifies against recorded hashes");
        assert!(a.is_recovering());
        assert_eq!(a.metrics().replay_requests_sent, 4);
    }

    #[test]
    fn recalibration_is_logged_and_survives_restore() {
        let (mut a, _out) = single_core();
        let (w1, w2) = client_wires(&a);
        let s1 = a.spec.component_by_name("Sender1").unwrap().id();
        a.handle(data(w1, 50_000, 0, "a b c"));
        a.pump();
        a.handle(Envelope::Checkpoint);
        // Re-calibrate Sender1 from 61 000 to 62 000 ticks/iteration.
        a.handle(Envelope::Recalibrate {
            component: s1,
            spec: EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 62_000),
        });
        let replica = a.replica.clone();
        assert_eq!(replica.faults().len(), 1);
        a.handle(data(w1, 900_000, 50_000, "d e f"));
        a.handle(Envelope::Eos {
            wire: w1,
            last_data: vt(900_000),
        });
        a.handle(Envelope::Eos {
            wire: w2,
            last_data: VirtualTime::ZERO,
        });
        a.pump();
        let orig_watermark = a.sent_watermark.clone();

        // Restore: the fault log reinstalls the new coefficient, so the
        // re-executed message reproduces the same output time.
        let (mut b, _out_b) = single_core();
        b.restore(&replica.chain(), &replica.faults())
            .expect("restore verifies against recorded hashes");
        assert_eq!(b.metrics().determinism_faults, 1);
        for wire in [w1, w2] {
            let frames = if wire == w1 {
                b.handle(data(w1, 900_000, 50_000, "d e f"));
                1
            } else {
                0
            };
            b.handle(Envelope::ReplayDone {
                wire,
                through: VirtualTime::MAX,
                frames,
            });
        }
        b.pump();
        assert_eq!(b.sent_watermark, orig_watermark);
    }

    #[test]
    fn probe_answer_reports_truthful_bound() {
        // Two engines: senders on e0, merger on e1. We drive e0 directly and
        // capture what it sends to e1 through the router.
        let spec = fan_in_app(2).unwrap();
        let s1 = spec.component_by_name("Sender1").unwrap().id();
        let s2 = spec.component_by_name("Sender2").unwrap().id();
        let merger = spec.component_by_name("Merger").unwrap().id();
        let mut placement = Placement::new();
        placement
            .assign(s1, EngineId::new(0))
            .assign(s2, EngineId::new(0))
            .assign(merger, EngineId::new(1));
        let config = ClusterConfig::logical_time()
            .with_estimator(
                s1,
                EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000),
            )
            .with_estimator(
                s2,
                EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000),
            );
        let router = Router::new(FaultPlan::none());
        let (e1_tx, e1_rx) = unbounded();
        router.register(EngineId::new(1), e1_tx);
        let (out_tx, _out_rx) = unbounded();
        let mut e0 = EngineCore::new(
            EngineId::new(0),
            &spec,
            &placement,
            &config,
            router.clone(),
            ReplicaStore::new(),
            out_tx,
        );
        let sender_out_wire = spec.output_wires_of(s1)[0].id();
        let client1 = spec.external_inputs()[0].id();

        // With the client silent through 1 000 000, an idle Sender1 cannot
        // produce anything before 1 000 000 + min_work.
        e0.handle(Envelope::Silence {
            wire: client1,
            through: vt(1_000_000),
            last_data: VirtualTime::ZERO,
        });
        e0.handle(Envelope::Probe {
            wire: sender_out_wire,
            needed_through: vt(5_000_000),
        });
        let replies: Vec<Envelope> = e1_rx.try_iter().collect();
        assert_eq!(replies.len(), 1);
        match &replies[0] {
            Envelope::Silence { wire, through, .. } => {
                assert_eq!(*wire, sender_out_wire);
                assert_eq!(
                    *through,
                    vt(1_000_001),
                    "earliest input + 1 tick min work - 1"
                );
            }
            other => panic!("expected silence reply, got {other:?}"),
        }
    }

    #[test]
    fn trim_ack_shrinks_retention() {
        let (mut core, _out) = single_core();
        let (w1, w2) = client_wires(&core);
        core.handle(data(w1, 50_000, 0, "a b"));
        core.handle(data(w2, 60_000, 0, "c"));
        core.pump();
        let s1 = core.spec.component_by_name("Sender1").unwrap().id();
        let internal = core.spec.output_wires_of(s1)[0].id();
        assert_eq!(core.retention[&internal].len(), 1);
        let sent_vt = core.retention[&internal].last_sent().unwrap();
        core.handle(Envelope::TrimAck {
            wire: internal,
            through: sent_vt,
        });
        assert_eq!(core.retention[&internal].len(), 0);
    }

    #[test]
    fn drain_and_die_flows() {
        let (mut core, _out) = single_core();
        assert_eq!(core.handle(Envelope::Drain), Flow::Drain);
        assert_eq!(core.handle(Envelope::Die), Flow::Die);
    }

    #[test]
    fn same_engine_call_executes_inline() {
        use std::sync::Arc;
        use tart_model::{AppSpec, CheckpointMode, Ctx, RestoreError, Snapshot};

        /// Calls its port-1 neighbour and forwards the reply.
        #[derive(Default)]
        struct Caller;
        impl Component for Caller {
            fn on_message(&mut self, _p: PortId, msg: &Value, ctx: &mut dyn Ctx) {
                let reply = ctx.call(PortId::new(1), msg.clone());
                ctx.send(PortId::new(2), reply);
            }
            fn checkpoint(&mut self, _m: CheckpointMode, vt: VirtualTime) -> Snapshot {
                Snapshot::new(vt)
            }
            fn restore(&mut self, _s: &Snapshot) -> Result<(), RestoreError> {
                Ok(())
            }
        }
        /// Doubles what it is asked.
        #[derive(Default)]
        struct Doubler;
        impl Component for Doubler {
            fn on_message(&mut self, _p: PortId, _m: &Value, _c: &mut dyn Ctx) {}
            fn on_call(&mut self, _p: PortId, req: &Value, _c: &mut dyn Ctx) -> Value {
                Value::I64(req.as_i64().unwrap_or(0) * 2)
            }
            fn checkpoint(&mut self, _m: CheckpointMode, vt: VirtualTime) -> Snapshot {
                Snapshot::new(vt)
            }
            fn restore(&mut self, _s: &Snapshot) -> Result<(), RestoreError> {
                Ok(())
            }
        }

        let mut b = AppSpec::builder();
        let caller = b.component(
            "Caller",
            Arc::new(|| Box::new(Caller) as Box<dyn Component>),
        );
        let doubler = b.component(
            "Doubler",
            Arc::new(|| Box::new(Doubler) as Box<dyn Component>),
        );
        b.wire_in("in", caller, PortId::new(0));
        b.wire(caller, PortId::new(1), doubler, PortId::new(0));
        b.wire_out(caller, PortId::new(2), "out");
        let spec = b.build().unwrap();
        let placement = Placement::single_engine(&spec);
        let config = ClusterConfig::logical_time();
        let (tx, rx) = unbounded();
        let mut core = EngineCore::new(
            EngineId::new(0),
            &spec,
            &placement,
            &config,
            Router::new(FaultPlan::none()),
            ReplicaStore::new(),
            tx,
        );
        let in_wire = spec.external_inputs()[0].id();
        core.handle(Envelope::Data {
            wire: in_wire,
            vt: vt(1_000),
            prev_vt: VirtualTime::ZERO,
            payload: Value::I64(21),
        });
        core.pump();
        let outs: Vec<OutputRecord> = rx.try_iter().collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].payload, Value::I64(42));
    }

    #[test]
    fn auto_recalibration_logs_a_fault_and_survives_restore() {
        let spec = fan_in_app(2).unwrap();
        let placement = Placement::single_engine(&spec);
        let mut config = ClusterConfig::logical_time().with_auto_recalibrate_after(3);
        for name in ["Sender1", "Sender2"] {
            let cid = spec.component_by_name(name).unwrap().id();
            config = config.with_estimator(
                cid,
                EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000),
            );
        }
        let replica = ReplicaStore::new();
        let (tx, _rx) = unbounded();
        let mut core = EngineCore::new(
            EngineId::new(0),
            &spec,
            &placement,
            &config,
            Router::new(FaultPlan::none()),
            replica.clone(),
            tx,
        );
        let (w1, _) = client_wires(&core);
        // Three measured executions arm and fire the re-calibration.
        core.handle(data(w1, 50_000, 0, "a b c"));
        core.handle(data(w1, 150_000, 50_000, "d e"));
        core.handle(data(w1, 250_000, 150_000, "f g h i"));
        core.pump();
        let m = core.metrics();
        assert!(
            m.determinism_faults >= 1,
            "dynamic re-tuning should have fired, metrics: {m:?}"
        );
        assert!(!replica.faults().is_empty(), "fault logged synchronously");

        // A restored engine replays the fault and does not re-tune again.
        let (tx2, _rx2) = unbounded();
        let mut restored = EngineCore::new(
            EngineId::new(0),
            &spec,
            &placement,
            &config,
            Router::new(FaultPlan::none()),
            ReplicaStore::new(),
            tx2,
        );
        restored
            .restore(&replica.chain(), &replica.faults())
            .expect("restore verifies against recorded hashes");
        assert!(restored.metrics().determinism_faults >= 1);
    }
}
