//! Deployment configuration: placement and runtime tuning.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use tart_estimator::EstimatorSpec;
use tart_model::{AppSpec, BlockId};
use tart_silence::SilencePolicy;
use tart_vtime::{ComponentId, EngineId, VirtualDuration, WireId};

use crate::{DurabilityPolicy, FaultPlan, FsyncPolicy, LogicalClock, RealClock, TimeSource};

/// Assigns components to execution engines — the placement service of
/// §II.C ("a placement service assigns individual components to execution
/// engines within the distributed system").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Placement {
    assignments: BTreeMap<ComponentId, EngineId>,
}

impl Placement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        Placement::default()
    }

    /// Assigns `component` to `engine`.
    pub fn assign(&mut self, component: ComponentId, engine: EngineId) -> &mut Self {
        self.assignments.insert(component, engine);
        self
    }

    /// Places every component of `spec` on engine 0.
    pub fn single_engine(spec: &AppSpec) -> Self {
        let mut p = Placement::new();
        for c in spec.components() {
            p.assign(c.id(), EngineId::new(0));
        }
        p
    }

    /// Round-robins components across `n` engines in id order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn round_robin(spec: &AppSpec, n: u32) -> Self {
        assert!(n > 0, "need at least one engine");
        let mut p = Placement::new();
        for (i, c) in spec.components().iter().enumerate() {
            p.assign(c.id(), EngineId::new(i as u32 % n));
        }
        p
    }

    /// The engine hosting `component`.
    pub fn engine_of(&self, component: ComponentId) -> Option<EngineId> {
        self.assignments.get(&component).copied()
    }

    /// All engines used, deduplicated, ascending.
    pub fn engines(&self) -> Vec<EngineId> {
        let mut v: Vec<EngineId> = self.assignments.values().copied().collect();
        v.sort();
        v.dedup();
        v
    }

    /// The components hosted on `engine`, ascending.
    pub fn components_on(&self, engine: EngineId) -> Vec<ComponentId> {
        self.assignments
            .iter()
            .filter(|(_, e)| **e == engine)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Returns `true` if every component of `spec` is assigned.
    pub fn covers(&self, spec: &AppSpec) -> bool {
        spec.components()
            .iter()
            .all(|c| self.assignments.contains_key(&c.id()))
    }
}

/// Failure-detector tuning for the self-healing supervisor.
///
/// Engines emit [`crate::Envelope::Heartbeat`] beacons every
/// `heartbeat_interval`; the supervisor suspects an engine when either its
/// phi-accrual score crosses `phi_threshold` or no beacon has arrived for
/// `suspicion_timeout` (the hard bound). A suspected engine is fail-stopped
/// and its replica promoted automatically — the same kill → promote →
/// replay path as a manual failover, so a false positive costs a recovery,
/// never correctness.
#[derive(Clone, Debug)]
pub struct SupervisionConfig {
    /// How often each engine emits a liveness heartbeat.
    pub heartbeat_interval: Duration,
    /// Hard bound: an engine unheard-from for this long is declared failed
    /// regardless of the phi score.
    pub suspicion_timeout: Duration,
    /// Phi-accrual suspicion threshold (à la Hayashibara et al.); `None`
    /// falls back to the plain `suspicion_timeout` detector.
    pub phi_threshold: Option<f64>,
    /// How often the supervisor re-evaluates liveness between beacons.
    pub poll_interval: Duration,
}

impl Default for SupervisionConfig {
    /// Production-flavoured: 250 ms beacons, 2 s hard timeout, phi 8.
    fn default() -> Self {
        SupervisionConfig {
            heartbeat_interval: Duration::from_millis(250),
            suspicion_timeout: Duration::from_secs(2),
            phi_threshold: Some(8.0),
            poll_interval: Duration::from_millis(50),
        }
    }
}

impl SupervisionConfig {
    /// Test-flavoured: tight intervals so failover completes in tens of
    /// milliseconds. The suspicion timeout still leaves generous headroom
    /// over the beacon period to ride out scheduler hiccups on loaded CI
    /// machines.
    pub fn fast() -> Self {
        SupervisionConfig {
            heartbeat_interval: Duration::from_millis(10),
            suspicion_timeout: Duration::from_millis(400),
            phi_threshold: Some(8.0),
            poll_interval: Duration::from_millis(5),
        }
    }
}

/// Warm-standby (hot-failover) tuning.
///
/// Enabled via [`ClusterConfig::with_warm_standby`]. Each supervised engine
/// streams its soft checkpoints and external-input head to a passive
/// standby plane (LLFT-style leader-follower replication); the standby
/// pre-applies checkpoints in the background once they trail the primary's
/// virtual-time head by `trailing_horizon_ticks`, verifying every applied
/// checkpoint against its recorded state hash. Promotion then replays only
/// the unapplied tail, so recovery latency is bounded by the horizon
/// instead of growing with log depth — the availability guarantee: *the
/// replay starting point is never older than the trailing horizon*.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// How far (in virtual-time ticks ≈ ns) the standby trails the
    /// primary's head before pre-applying a streamed checkpoint. The
    /// margin keeps the standby from racing ahead of retention trims while
    /// bounding the replay tail a promotion must cover.
    pub trailing_horizon_ticks: u64,
    /// How often the standby plane drains its inbox and applies eligible
    /// checkpoints.
    pub apply_interval: Duration,
}

impl Default for StandbyConfig {
    /// ~100 ms of virtual time (the documented availability bound), 5 ms
    /// apply cadence.
    fn default() -> Self {
        StandbyConfig {
            trailing_horizon_ticks: 100_000_000,
            apply_interval: Duration::from_millis(5),
        }
    }
}

/// Where and how a cluster persists its crash-safe state.
///
/// Enabled via [`ClusterConfig::with_durability`]. Inside `dir` the cluster
/// keeps `wal/` (the segmented external-input log) and `ckpt/` (the
/// generation-managed checkpoint store + determinism-fault logs). With
/// durability on, checkpoints persist as delta generations against the last
/// full one (a full every `full_checkpoint_every` checkpoints anchors each
/// chain), retention `TrimAck`s wait for a *full* generation to be durable
/// and lag one full generation (recovery may fall back a whole chain), and
/// [`crate::Cluster::recover_from_disk`] can cold-restart the whole cluster
/// from `dir`.
///
/// The tier table (`component_tiers` / `engine_tiers` / `default_tier`)
/// refines the single cluster-wide `policy` into per-component
/// [`DurabilityPolicy`] contracts (see `DURABILITY.md`): a component's tier
/// decides how its external inputs ride the shared WAL (Strict closes the
/// group-commit window, Buffered rides it, InMemory skips the log) and how
/// its engine's checkpoints persist. Components with no resolved tier keep
/// the legacy behaviour: WAL appends follow `policy` and checkpoint
/// persists fsync.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory for all persistent state.
    pub dir: std::path::PathBuf,
    /// When WAL appends are forced to disk (legacy cluster-wide lane, used
    /// by wires whose destination component resolves to no tier).
    pub policy: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub wal_segment_bytes: u64,
    /// Persist a full (self-contained) checkpoint every this many durable
    /// checkpoints; the ones between are deltas against it. `1` restores
    /// the original always-full behaviour; higher values trade restore
    /// replay length (at most one full + `full_checkpoint_every - 1`
    /// deltas) for much smaller steady-state checkpoint writes.
    pub full_checkpoint_every: u32,
    /// Cluster-wide default durability tier for components without a more
    /// specific entry. `None` keeps the legacy (untiered) contract.
    pub default_tier: Option<DurabilityPolicy>,
    /// Per-engine tier overrides: apply to every component placed on the
    /// engine unless the component has its own entry.
    pub engine_tiers: BTreeMap<EngineId, DurabilityPolicy>,
    /// Per-component tier overrides — the most specific level, wins over
    /// engine and cluster defaults.
    pub component_tiers: BTreeMap<ComponentId, DurabilityPolicy>,
}

impl DurabilityConfig {
    /// A durability config rooted at `dir` with the given legacy fsync
    /// policy, default segment threshold (1 MiB), full-checkpoint cadence
    /// (4) and an empty tier table.
    pub fn new(dir: impl Into<std::path::PathBuf>, policy: FsyncPolicy) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            policy,
            wal_segment_bytes: 1 << 20,
            full_checkpoint_every: 4,
            default_tier: None,
            engine_tiers: BTreeMap::new(),
            component_tiers: BTreeMap::new(),
        }
    }

    /// Resolves `component`'s durability tier: component entry, else its
    /// engine's entry, else the cluster default, else `None` (legacy
    /// untiered contract).
    pub fn tier_for(
        &self,
        component: ComponentId,
        engine: Option<EngineId>,
    ) -> Option<DurabilityPolicy> {
        if let Some(t) = self.component_tiers.get(&component) {
            return Some(*t);
        }
        if let Some(e) = engine {
            if let Some(t) = self.engine_tiers.get(&e) {
                return Some(*t);
            }
        }
        self.default_tier
    }
}

/// Cluster-wide runtime tuning (§II.G's controls).
#[derive(Clone)]
pub struct ClusterConfig {
    /// Deterministic (virtual-time-ordered) scheduling. Disabling it gives
    /// the paper's measurement baseline: a conventional runtime processing
    /// messages in real-time arrival order — overhead-free but
    /// unrecoverable (§III's "non-deterministic" mode).
    pub deterministic: bool,
    /// Silence propagation strategy.
    ///
    /// Note: in the live engine, [`SilencePolicy::HyperAggressive`] behaves
    /// like curiosity without the bias floor. Sound bias promises require
    /// logging each pre-promise like a determinism fault (a promise made
    /// from volatile idle state constrains which ticks may carry data after
    /// a replay); the paper leaves this dynamic machinery as future work
    /// (§IV), and so does this engine — the simulator implements the full
    /// bias algorithm for the §III studies.
    pub silence: SilencePolicy,
    /// Take a soft checkpoint after this many processed messages per
    /// engine ("the checkpoint frequency is a tuning parameter", §II.F.2).
    pub checkpoint_every: u64,
    /// Per-component estimators; components without an entry default to
    /// 1 tick per execution of block 0.
    pub estimators: BTreeMap<ComponentId, EstimatorSpec>,
    /// Per-component minimum handler cost, used in silence oracles
    /// ("the computation time of the shortest possible processing", §II.H).
    pub min_work: BTreeMap<ComponentId, VirtualDuration>,
    /// Per-wire transmission-delay estimate added to output virtual times
    /// (constant, per §II.G.1's "crude estimate … based upon expected
    /// communication delay").
    pub link_delay: BTreeMap<WireId, VirtualDuration>,
    /// Timestamp source for external input.
    pub clock: Arc<dyn TimeSource>,
    /// Link-fault injection plan.
    pub faults: FaultPlan,
    /// How long an engine blocks on an empty inbox before re-evaluating
    /// (also the re-probe period after lost probes), in microseconds.
    pub idle_poll_micros: u64,
    /// Persist the external-input log to this CRC-protected append-only
    /// file (the paper's "stable storage" flavour, §II.E); `None` keeps the
    /// log in memory only (the "backup machine" flavour).
    pub log_path: Option<std::path::PathBuf>,
    /// Dynamic re-tuning (§II.G.4): after this many measured handler
    /// executions, a component's estimator is re-fitted by linear
    /// regression on block 0 and installed as a determinism fault.
    /// `None` disables measurement entirely (no timing overhead).
    pub auto_recalibrate_after: Option<u64>,
    /// Heartbeat-driven automatic failover. `None` (the default) keeps the
    /// original manual drill — [`crate::Cluster::kill`] then
    /// [`crate::Cluster::promote`] — as the only recovery path.
    pub supervision: Option<SupervisionConfig>,
    /// Crash-safe durability: segmented WAL + on-disk checkpoint store.
    /// `None` (the default) keeps all recovery state in memory, where a
    /// whole-process crash is unrecoverable. Supersedes `log_path` when
    /// both are set.
    pub durability: Option<DurabilityConfig>,
    /// Warm-standby failover: stream checkpoints to a passive replica that
    /// pre-applies them up to a trailing horizon, so promotion replays only
    /// the unapplied tail. `None` (the default) keeps promotion on the cold
    /// path (full chain replay through `restore_verified`).
    pub standby: Option<StandbyConfig>,
    /// Verified-replay hash cadence: additionally digest the engine's
    /// deterministic bookkeeping (consumed and sent watermarks, component
    /// clocks) every this many deliveries. Component *state* digests are
    /// always computed at checkpoint time — `Component::checkpoint` is
    /// journal-draining, so mid-interval component hashing would corrupt
    /// the incremental chain — but the bookkeeping digest is pure and can
    /// run between checkpoints. `None` (the default) keeps the delivery
    /// hot path hash-free.
    pub hash_state_every: Option<u64>,
}

impl ClusterConfig {
    /// Production-flavoured defaults: real clock, curiosity silence,
    /// checkpoint every 100 messages, no faults.
    pub fn real_time() -> Self {
        ClusterConfig {
            deterministic: true,
            silence: SilencePolicy::Curiosity,
            checkpoint_every: 100,
            estimators: BTreeMap::new(),
            min_work: BTreeMap::new(),
            link_delay: BTreeMap::new(),
            clock: Arc::new(RealClock::new()),
            faults: FaultPlan::none(),
            idle_poll_micros: 200,
            log_path: None,
            auto_recalibrate_after: None,
            supervision: None,
            durability: None,
            standby: None,
            hash_state_every: None,
        }
    }

    /// Test-flavoured defaults: logical clock stepping 1 ms per event so
    /// whole-cluster runs are reproducible.
    pub fn logical_time() -> Self {
        ClusterConfig {
            clock: Arc::new(LogicalClock::new(1_000_000)),
            ..ClusterConfig::real_time()
        }
    }

    /// Sets the estimator for a component (builder style).
    pub fn with_estimator(mut self, component: ComponentId, spec: EstimatorSpec) -> Self {
        self.estimators.insert(component, spec);
        self
    }

    /// Sets the silence policy (builder style).
    pub fn with_silence(mut self, policy: SilencePolicy) -> Self {
        self.silence = policy;
        self
    }

    /// Selects the non-deterministic (arrival-order) baseline mode
    /// (builder style).
    pub fn non_deterministic(mut self) -> Self {
        self.deterministic = false;
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Persists the external-input log to `path` (builder style).
    pub fn with_log_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.log_path = Some(path.into());
        self
    }

    /// Enables the crash-safe durability layer rooted at `dir` (builder
    /// style): external inputs go through a fsync-policied segmented WAL,
    /// checkpoints are persisted to a generation-managed on-disk store, and
    /// the cluster becomes cold-restartable via
    /// [`crate::Cluster::recover_from_disk`]. Uses a 1 MiB WAL segment
    /// threshold and a full checkpoint every 4 durable generations; set
    /// [`ClusterConfig::durability`] directly to tune them.
    pub fn with_durability(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        policy: FsyncPolicy,
    ) -> Self {
        self.durability = Some(DurabilityConfig::new(dir, policy));
        self
    }

    /// Sets the cluster-wide default durability tier (builder style): every
    /// component without a more specific engine or component entry resolves
    /// to `tier`. See `DURABILITY.md` for the contract each tier carries.
    ///
    /// # Panics
    ///
    /// Panics if durability is not enabled.
    pub fn with_default_tier(mut self, tier: DurabilityPolicy) -> Self {
        self.durability
            .as_mut()
            .expect("enable durability before assigning tiers")
            .default_tier = Some(tier);
        self
    }

    /// Assigns a durability tier to every component placed on `engine`
    /// (builder style); per-component entries still win.
    ///
    /// # Panics
    ///
    /// Panics if durability is not enabled.
    pub fn with_engine_tier(mut self, engine: EngineId, tier: DurabilityPolicy) -> Self {
        self.durability
            .as_mut()
            .expect("enable durability before assigning tiers")
            .engine_tiers
            .insert(engine, tier);
        self
    }

    /// Assigns a durability tier to one component (builder style) — the
    /// most specific level of the tier table.
    ///
    /// # Panics
    ///
    /// Panics if durability is not enabled.
    pub fn with_component_tier(mut self, component: ComponentId, tier: DurabilityPolicy) -> Self {
        self.durability
            .as_mut()
            .expect("enable durability before assigning tiers")
            .component_tiers
            .insert(component, tier);
        self
    }

    /// Sets the durable full-checkpoint cadence (builder style); `1` makes
    /// every durable checkpoint full.
    ///
    /// # Panics
    ///
    /// Panics if durability is not enabled or `every` is zero.
    pub fn with_full_checkpoint_every(mut self, every: u32) -> Self {
        assert!(every > 0, "full-checkpoint cadence must be positive");
        self.durability
            .as_mut()
            .expect("enable durability before tuning its cadence")
            .full_checkpoint_every = every;
        self
    }

    /// Enables dynamic estimator re-tuning after `samples` measured handler
    /// executions per component (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn with_auto_recalibrate_after(mut self, samples: u64) -> Self {
        assert!(samples > 0, "need at least one sample to calibrate");
        self.auto_recalibrate_after = Some(samples);
        self
    }

    /// Enables heartbeat-driven automatic failover (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the suspicion timeout does not exceed the heartbeat
    /// interval — such a detector would suspect healthy engines between
    /// beacons.
    pub fn with_supervision(mut self, supervision: SupervisionConfig) -> Self {
        assert!(
            supervision.suspicion_timeout > supervision.heartbeat_interval,
            "suspicion timeout must exceed the heartbeat interval"
        );
        self.supervision = Some(supervision);
        self
    }

    /// Enables warm-standby failover (builder style): checkpoints stream
    /// to a passive standby plane that pre-applies them up to the
    /// configured trailing horizon, bounding promotion latency (see
    /// [`StandbyConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if the trailing horizon is zero — a zero-horizon standby
    /// would race the primary's retention trims.
    pub fn with_warm_standby(mut self, standby: StandbyConfig) -> Self {
        assert!(
            standby.trailing_horizon_ticks > 0,
            "standby trailing horizon must be positive"
        );
        self.standby = Some(standby);
        self
    }

    /// Enables the between-checkpoint verified-replay hash cadence
    /// (builder style): digest the engine's deterministic bookkeeping every
    /// `every` deliveries (see [`ClusterConfig::hash_state_every`]).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_hash_state_every(mut self, every: u64) -> Self {
        assert!(every > 0, "hash cadence must be positive");
        self.hash_state_every = Some(every);
        self
    }

    /// Sets the checkpoint interval (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_every = every;
        self
    }

    /// The estimator for `component` (falling back to the default).
    pub fn estimator_for(&self, component: ComponentId) -> EstimatorSpec {
        self.estimators
            .get(&component)
            .cloned()
            .unwrap_or_else(|| EstimatorSpec::per_iteration(BlockId(0), 1))
    }

    /// The minimum-work bound for `component`.
    pub fn min_work_for(&self, component: ComponentId) -> VirtualDuration {
        self.min_work
            .get(&component)
            .copied()
            .unwrap_or(VirtualDuration::TICK)
    }

    /// The link-delay estimate for `wire`.
    pub fn link_delay_for(&self, wire: WireId) -> VirtualDuration {
        self.link_delay
            .get(&wire)
            .copied()
            .unwrap_or(VirtualDuration::ZERO)
    }
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("silence", &self.silence)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("estimators", &self.estimators.len())
            .field("supervision", &self.supervision)
            .field("durability", &self.durability)
            .field("standby", &self.standby)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_model::reference::fan_in_app;

    #[test]
    fn single_engine_placement_covers_everything() {
        let spec = fan_in_app(2).unwrap();
        let p = Placement::single_engine(&spec);
        assert!(p.covers(&spec));
        assert_eq!(p.engines(), vec![EngineId::new(0)]);
        assert_eq!(p.components_on(EngineId::new(0)).len(), 3);
        assert_eq!(p.engine_of(ComponentId::new(0)), Some(EngineId::new(0)));
        assert_eq!(p.engine_of(ComponentId::new(99)), None);
    }

    #[test]
    fn round_robin_spreads_components() {
        let spec = fan_in_app(3).unwrap(); // 4 components
        let p = Placement::round_robin(&spec, 2);
        assert!(p.covers(&spec));
        assert_eq!(p.engines(), vec![EngineId::new(0), EngineId::new(1)]);
        assert_eq!(p.components_on(EngineId::new(0)).len(), 2);
        assert_eq!(p.components_on(EngineId::new(1)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn round_robin_rejects_zero() {
        let spec = fan_in_app(1).unwrap();
        let _ = Placement::round_robin(&spec, 0);
    }

    #[test]
    fn manual_placement() {
        let spec = fan_in_app(2).unwrap();
        let merger = spec.component_by_name("Merger").unwrap().id();
        let s1 = spec.component_by_name("Sender1").unwrap().id();
        let s2 = spec.component_by_name("Sender2").unwrap().id();
        let mut p = Placement::new();
        p.assign(s1, EngineId::new(0))
            .assign(s2, EngineId::new(0))
            .assign(merger, EngineId::new(1));
        assert!(p.covers(&spec));
        assert_eq!(p.components_on(EngineId::new(1)), vec![merger]);
    }

    #[test]
    fn config_defaults_and_builders() {
        let cfg = ClusterConfig::logical_time()
            .with_checkpoint_every(10)
            .with_silence(SilencePolicy::Lazy)
            .with_estimator(
                ComponentId::new(0),
                EstimatorSpec::per_iteration(BlockId(0), 61_000),
            )
            .with_faults(FaultPlan::none());
        assert_eq!(cfg.checkpoint_every, 10);
        assert_eq!(cfg.silence, SilencePolicy::Lazy);
        assert_eq!(
            cfg.estimator_for(ComponentId::new(0)),
            EstimatorSpec::per_iteration(BlockId(0), 61_000)
        );
        // Fallbacks.
        assert_eq!(
            cfg.estimator_for(ComponentId::new(5)),
            EstimatorSpec::per_iteration(BlockId(0), 1)
        );
        assert_eq!(cfg.min_work_for(ComponentId::new(5)), VirtualDuration::TICK);
        assert_eq!(cfg.link_delay_for(WireId::new(3)), VirtualDuration::ZERO);
        assert!(format!("{cfg:?}").contains("ClusterConfig"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_checkpoint_interval_rejected() {
        let _ = ClusterConfig::logical_time().with_checkpoint_every(0);
    }

    #[test]
    fn supervision_is_off_by_default_and_opt_in() {
        let cfg = ClusterConfig::logical_time();
        assert!(cfg.supervision.is_none(), "manual failover is the default");
        let cfg = cfg.with_supervision(SupervisionConfig::fast());
        let s = cfg.supervision.expect("enabled");
        assert!(s.suspicion_timeout > s.heartbeat_interval);
    }

    #[test]
    fn warm_standby_is_off_by_default_and_opt_in() {
        let cfg = ClusterConfig::logical_time();
        assert!(cfg.standby.is_none(), "cold promotion is the default");
        let cfg = cfg.with_warm_standby(StandbyConfig::default());
        let s = cfg.standby.expect("enabled");
        assert_eq!(s.trailing_horizon_ticks, 100_000_000, "~100ms of vt");
    }

    #[test]
    #[should_panic(expected = "trailing horizon must be positive")]
    fn zero_standby_horizon_rejected() {
        let _ = ClusterConfig::logical_time().with_warm_standby(StandbyConfig {
            trailing_horizon_ticks: 0,
            apply_interval: Duration::from_millis(1),
        });
    }

    #[test]
    #[should_panic(expected = "suspicion timeout must exceed")]
    fn degenerate_supervision_rejected() {
        let _ = ClusterConfig::logical_time().with_supervision(SupervisionConfig {
            heartbeat_interval: Duration::from_millis(50),
            suspicion_timeout: Duration::from_millis(50),
            phi_threshold: None,
            poll_interval: Duration::from_millis(5),
        });
    }

    #[test]
    fn tier_resolution_is_component_then_engine_then_default() {
        let c0 = ComponentId::new(0);
        let c1 = ComponentId::new(1);
        let c2 = ComponentId::new(2);
        let e0 = EngineId::new(0);
        let e1 = EngineId::new(1);
        let buffered = DurabilityPolicy::Buffered {
            flush_window: Duration::from_millis(5),
        };
        let cfg = ClusterConfig::logical_time()
            .with_durability("/tmp/unused", FsyncPolicy::Always)
            .with_default_tier(buffered)
            .with_engine_tier(e1, DurabilityPolicy::InMemory)
            .with_component_tier(c0, DurabilityPolicy::Strict);
        let d = cfg.durability.expect("enabled");
        // Component entry wins over everything, even its engine's.
        assert_eq!(d.tier_for(c0, Some(e1)), Some(DurabilityPolicy::Strict));
        // Engine entry wins over the cluster default.
        assert_eq!(d.tier_for(c1, Some(e1)), Some(DurabilityPolicy::InMemory));
        // Default covers the rest, with or without a known engine.
        assert_eq!(d.tier_for(c1, Some(e0)), Some(buffered));
        assert_eq!(d.tier_for(c2, None), Some(buffered));
        // No default → legacy untiered contract.
        let bare = DurabilityConfig::new("/tmp/unused", FsyncPolicy::Always);
        assert_eq!(bare.tier_for(c2, Some(e0)), None);
    }

    #[test]
    fn tier_ordering_tracks_strictness() {
        let buffered = DurabilityPolicy::Buffered {
            flush_window: Duration::from_millis(5),
        };
        assert!(DurabilityPolicy::InMemory < buffered);
        assert!(buffered < DurabilityPolicy::Strict);
        // Engine tier = max over hosted components relies on this order.
        assert_eq!(
            DurabilityPolicy::InMemory.max(DurabilityPolicy::Strict),
            DurabilityPolicy::Strict
        );
    }

    #[test]
    #[should_panic(expected = "enable durability before assigning tiers")]
    fn tiers_without_durability_rejected() {
        let _ = ClusterConfig::logical_time().with_default_tier(DurabilityPolicy::Strict);
    }
}
