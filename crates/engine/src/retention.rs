//! Per-wire output retention for replay.

use std::collections::VecDeque;

use tart_model::Value;
use tart_vtime::{VirtualTime, WireId};

/// Keeps the messages a sender has transmitted on one wire until the
/// receiver's checkpoints make them unnecessary.
///
/// "If an engine fails … the sending engine will be asked to replay
/// messages" (§II.F.3). Inter-component messages are never logged; the
/// retention buffer is the volatile store replay draws from. Buffers trim
/// on [`TrimAck`](crate::Envelope::TrimAck): once the receiver checkpoints
/// state covering tick `t`, ticks `<= t` can never be requested again
/// (under the single-failure assumption of the paper's footnote 1).
///
/// # Example
///
/// ```
/// use tart_engine::RetentionBuffer;
/// use tart_model::Value;
/// use tart_vtime::{VirtualTime, WireId};
///
/// let vt = VirtualTime::from_ticks;
/// let mut buf = RetentionBuffer::new(WireId::new(0));
/// buf.record(vt(10), Value::I64(1));
/// buf.record(vt(20), Value::I64(2));
/// buf.trim_through(vt(10));
/// assert_eq!(buf.replay_from(vt(0)).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RetentionBuffer {
    wire: WireId,
    /// `(vt, payload)` in strictly increasing vt order.
    entries: VecDeque<(VirtualTime, Value)>,
    /// Last transmitted data tick (for the `prev_vt` chain), even if
    /// trimmed.
    last_sent: Option<VirtualTime>,
}

impl RetentionBuffer {
    /// Creates an empty buffer for `wire`.
    pub fn new(wire: WireId) -> Self {
        RetentionBuffer {
            wire,
            entries: VecDeque::new(),
            last_sent: None,
        }
    }

    /// The wire this buffer retains.
    pub fn wire(&self) -> WireId {
        self.wire
    }

    /// Records a transmitted message. Re-executions after a restore may
    /// legally re-record old virtual times; they are kept only if not
    /// already present.
    pub fn record(&mut self, vt: VirtualTime, payload: Value) {
        match self.entries.back() {
            Some((last, _)) if *last >= vt => {
                // Replay re-send of something still retained: ignore.
            }
            _ => self.entries.push_back((vt, payload)),
        }
        if self.last_sent.is_none_or(|l| vt > l) {
            self.last_sent = Some(vt);
        }
    }

    /// The previous data tick to chain into the next message's `prev_vt`.
    pub fn last_sent(&self) -> Option<VirtualTime> {
        self.last_sent
    }

    /// Restores the `prev_vt` chain head after a promote (the restored
    /// engine re-sends from its checkpoint; receivers key duplicates off
    /// timestamps, so the chain restarts from the checkpoint's watermark).
    pub fn reset_chain(&mut self, last_sent: Option<VirtualTime>) {
        self.entries.clear();
        self.last_sent = last_sent;
    }

    /// Everything retained with `vt >= from`, in order.
    pub fn replay_from(&self, from: VirtualTime) -> Vec<(VirtualTime, Value)> {
        self.entries
            .iter()
            .filter(|(vt, _)| *vt >= from)
            .cloned()
            .collect()
    }

    /// Drops entries with `vt <= through`.
    pub fn trim_through(&mut self, through: VirtualTime) {
        while let Some((vt, _)) = self.entries.front() {
            if *vt <= through {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of retained messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn records_and_replays_in_order() {
        let mut buf = RetentionBuffer::new(WireId::new(1));
        assert_eq!(buf.wire(), WireId::new(1));
        assert!(buf.is_empty());
        buf.record(vt(10), Value::I64(1));
        buf.record(vt(20), Value::I64(2));
        buf.record(vt(30), Value::I64(3));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.last_sent(), Some(vt(30)));
        assert_eq!(
            buf.replay_from(vt(15)),
            vec![(vt(20), Value::I64(2)), (vt(30), Value::I64(3))]
        );
        assert_eq!(buf.replay_from(vt(31)), vec![]);
        assert_eq!(buf.replay_from(VirtualTime::ZERO).len(), 3);
    }

    #[test]
    fn trim_drops_covered_prefix() {
        let mut buf = RetentionBuffer::new(WireId::new(0));
        for t in [10, 20, 30] {
            buf.record(vt(t), Value::Unit);
        }
        buf.trim_through(vt(20));
        assert_eq!(buf.len(), 1);
        assert_eq!(
            buf.replay_from(VirtualTime::ZERO),
            vec![(vt(30), Value::Unit)]
        );
        // Trim is idempotent and tolerant of over-trim.
        buf.trim_through(vt(100));
        assert!(buf.is_empty());
        // last_sent survives trimming (prev_vt chain must not regress).
        assert_eq!(buf.last_sent(), Some(vt(30)));
    }

    #[test]
    fn re_recording_old_vts_is_ignored() {
        let mut buf = RetentionBuffer::new(WireId::new(0));
        buf.record(vt(10), Value::I64(1));
        buf.record(vt(20), Value::I64(2));
        // A replay re-send of vt 10 while it is still retained: no dup.
        buf.record(vt(10), Value::I64(1));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.last_sent(), Some(vt(20)));
    }

    #[test]
    fn reset_chain_for_promoted_replica() {
        let mut buf = RetentionBuffer::new(WireId::new(0));
        buf.record(vt(10), Value::I64(1));
        buf.reset_chain(Some(vt(5)));
        assert!(buf.is_empty());
        assert_eq!(buf.last_sent(), Some(vt(5)));
        // Re-execution from the checkpoint refills.
        buf.record(vt(8), Value::I64(8));
        assert_eq!(buf.last_sent(), Some(vt(8)));
        assert_eq!(buf.len(), 1);
    }
}
