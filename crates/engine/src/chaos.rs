//! Seeded chaos schedules for soak-testing the self-healing cluster.
//!
//! A [`ChaosPlan`] is a deterministic, seed-reproducible timeline of
//! disturbances: unannounced engine crashes (fail-stops the supervisor
//! must detect and recover on its own), one-directional link partitions,
//! and sender-side latency spikes. [`crate::Cluster::launch_chaos`] runs
//! the plan on a background driver thread; the soak test then asserts
//! that the deduplicated outputs of the tormented run are byte-identical
//! to a failure-free run — the paper's transparency claim, exercised
//! end-to-end with zero manual `kill`/`promote` calls.
//!
//! The driver enforces the paper's single-failure assumption (§II.A): after
//! injecting a crash it waits for the supervisor to complete the failover
//! before firing the next event.

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use std::sync::Arc;
use tart_stats::DetRng;
use tart_vtime::EngineId;

use crate::supervise::SupervisionMetrics;
use crate::{Envelope, Router};

/// How long the driver waits for the supervisor to recover a crash before
/// recording it as unrecovered and moving on.
const RECOVERY_TIMEOUT: Duration = Duration::from_secs(10);

/// One scheduled disturbance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Unannounced fail-stop: the engine's thread exits instantly, nobody
    /// is told. Detection and recovery are entirely the supervisor's job.
    Crash(EngineId),
    /// Start dropping payload traffic toward an engine (control plane
    /// still flows, so this loses data — not liveness).
    PartitionStart(EngineId),
    /// Heal the partition toward an engine.
    PartitionEnd(EngineId),
    /// Start delaying payload traffic toward an engine by the given amount.
    LatencyStart(EngineId, Duration),
    /// End the latency spike toward an engine.
    LatencyEnd(EngineId),
}

/// A post-mortem disk fault: damage dealt to a durability directory
/// *between* a whole-cluster crash and the subsequent
/// [`crate::Cluster::recover_from_disk`], simulating what real disks do to
/// processes that die mid-write (or to files that sit idle too long).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Shear bytes off the end of the newest WAL segment — the classic torn
    /// final write. Recovery truncates the tail and the producer re-sends
    /// its unacknowledged message.
    TornWalTail,
    /// Flip one bit inside a **sealed** (fsynced, non-final) WAL segment —
    /// stable storage decaying at rest. Unrecoverable by design: recovery
    /// must refuse loudly rather than replay garbage.
    BitFlipSealedSegment,
    /// Corrupt the checkpoint store's manifest. Recoverable: the store
    /// rebuilds the manifest from the directory listing (rename atomicity
    /// makes the listing trustworthy).
    StaleManifest,
    /// Flip one bit in the newest checkpoint generation. Recoverable: the
    /// store falls back one generation and replay covers the difference.
    CorruptNewestCheckpoint,
}

impl DiskFault {
    /// Whether [`crate::Cluster::recover_from_disk`] is expected to succeed
    /// after this fault (`false` means recovery must *refuse*, which is
    /// also a form of correctness).
    pub fn recoverable(&self) -> bool {
        !matches!(self, DiskFault::BitFlipSealedSegment)
    }

    /// Applies the fault to the durability directory `dir` (the one passed
    /// to [`crate::ClusterConfig::with_durability`]). Returns `false` if
    /// the directory holds no applicable target (e.g. no sealed segment
    /// exists yet) — the fault is then a no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading or rewriting the target files.
    pub fn apply(&self, dir: &Path) -> io::Result<bool> {
        match self {
            DiskFault::TornWalTail => {
                let Some(seg) = newest_segment(&dir.join("wal"))? else {
                    return Ok(false);
                };
                let len = std::fs::metadata(&seg)?.len();
                if len < 4 {
                    return Ok(false);
                }
                let f = std::fs::OpenOptions::new().write(true).open(&seg)?;
                f.set_len(len - 3)?;
                f.sync_all()?;
                Ok(true)
            }
            DiskFault::BitFlipSealedSegment => {
                let wal = dir.join("wal");
                let mut segs = segments(&wal)?;
                if segs.len() < 2 {
                    return Ok(false); // no sealed segment yet
                }
                segs.sort();
                flip_bit_mid_file(&segs[0])?;
                Ok(true)
            }
            DiskFault::StaleManifest => {
                let manifest = dir.join("ckpt").join("MANIFEST");
                if !manifest.exists() {
                    return Ok(false);
                }
                std::fs::write(&manifest, b"stale garbage from a past life")?;
                Ok(true)
            }
            DiskFault::CorruptNewestCheckpoint => {
                let ckpt = dir.join("ckpt");
                let mut newest: Option<(u64, std::path::PathBuf)> = None;
                for entry in std::fs::read_dir(&ckpt)? {
                    let path = entry?.path();
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    let Some(gen) = name
                        .strip_prefix("ckpt-")
                        .and_then(|r| r.split_once("-g"))
                        .and_then(|(_, g)| g.strip_suffix(".bin"))
                        .and_then(|g| g.parse::<u64>().ok())
                    else {
                        continue;
                    };
                    if newest.as_ref().is_none_or(|(g, _)| gen > *g) {
                        newest = Some((gen, path));
                    }
                }
                let Some((_, path)) = newest else {
                    return Ok(false);
                };
                flip_bit_mid_file(&path)?;
                Ok(true)
            }
        }
    }
}

fn segments(wal: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    Ok(std::fs::read_dir(wal)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect())
}

fn newest_segment(wal: &Path) -> io::Result<Option<std::path::PathBuf>> {
    Ok(segments(wal)?.into_iter().max())
}

fn flip_bit_mid_file(path: &Path) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(path, &bytes)
}

/// Shape parameters for [`ChaosPlan::generate`].
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Span of the schedule; all events land inside it.
    pub duration: Duration,
    /// Number of unannounced crashes.
    pub crashes: u32,
    /// Number of partition windows.
    pub partitions: u32,
    /// Number of latency-spike windows.
    pub latency_spikes: u32,
    /// Upper bound on injected latency.
    pub max_latency: Duration,
    /// Length of each partition/latency window.
    pub disturbance_len: Duration,
    /// Number of *recoverable* post-mortem disk faults to seed into
    /// [`ChaosPlan::disk_faults`] — applied by the harness between a
    /// whole-cluster crash and the cold restart, not by the live driver.
    pub disk_faults: u32,
}

impl Default for ChaosOptions {
    /// A multi-second soak: several crashes, partitions and spikes.
    fn default() -> Self {
        ChaosOptions {
            duration: Duration::from_secs(6),
            crashes: 3,
            partitions: 2,
            latency_spikes: 2,
            max_latency: Duration::from_millis(30),
            disturbance_len: Duration::from_millis(200),
            disk_faults: 2,
        }
    }
}

impl ChaosOptions {
    /// A sub-second smoke preset for CI: one crash, one partition, one
    /// latency spike.
    pub fn fast() -> Self {
        ChaosOptions {
            duration: Duration::from_millis(900),
            crashes: 1,
            partitions: 1,
            latency_spikes: 1,
            max_latency: Duration::from_millis(10),
            disturbance_len: Duration::from_millis(80),
            disk_faults: 1,
        }
    }
}

/// A deterministic disturbance timeline: `(offset from start, event)` in
/// ascending offset order. Same seed + same engines + same options ⇒ same
/// plan, so chaos failures reproduce.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// The seed the plan was generated from (kept for reporting).
    pub seed: u64,
    /// The schedule, ascending by offset.
    pub events: Vec<(Duration, ChaosEvent)>,
    /// Seeded post-mortem disk faults (all [`DiskFault::recoverable`]),
    /// for harnesses that crash the whole cluster and restart it from
    /// disk. The live driver never touches these — apply them via
    /// [`ChaosPlan::apply_disk_faults`] while the cluster is down.
    pub disk_faults: Vec<DiskFault>,
}

impl ChaosPlan {
    /// Generates a plan from `seed` over the given engines.
    ///
    /// Crashes are spread across the span (each in its own slot, so
    /// recoveries don't overlap — the single-failure assumption);
    /// partitions and latency spikes start anywhere that lets their window
    /// finish inside the span.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or the options ask for a disturbance
    /// window longer than the span.
    pub fn generate(seed: u64, engines: &[EngineId], opts: &ChaosOptions) -> ChaosPlan {
        assert!(!engines.is_empty(), "chaos needs at least one engine");
        assert!(
            opts.disturbance_len <= opts.duration,
            "disturbance window exceeds the plan span"
        );
        let mut rng = DetRng::seed_from(seed);
        let span_ms = opts.duration.as_millis() as u64;
        let mut events: Vec<(Duration, ChaosEvent)> = Vec::new();
        let pick =
            |rng: &mut DetRng| engines[rng.gen_range_u64(0, engines.len() as u64 - 1) as usize];

        // One crash per slot, jittered within the slot's middle half.
        let slot = span_ms / (u64::from(opts.crashes) + 1).max(1);
        for i in 0..u64::from(opts.crashes) {
            let base = slot * (i + 1);
            let jitter = rng.gen_range_u64(0, (slot / 2).max(1)) as i64 - (slot / 4) as i64;
            let at = base.saturating_add_signed(jitter).min(span_ms);
            events.push((Duration::from_millis(at), ChaosEvent::Crash(pick(&mut rng))));
        }

        let window_ms = opts.disturbance_len.as_millis() as u64;
        let latest_start = span_ms.saturating_sub(window_ms);
        for _ in 0..opts.partitions {
            let at = rng.gen_range_u64(0, latest_start.max(1));
            let engine = pick(&mut rng);
            events.push((
                Duration::from_millis(at),
                ChaosEvent::PartitionStart(engine),
            ));
            events.push((
                Duration::from_millis(at + window_ms),
                ChaosEvent::PartitionEnd(engine),
            ));
        }
        for _ in 0..opts.latency_spikes {
            let at = rng.gen_range_u64(0, latest_start.max(1));
            let engine = pick(&mut rng);
            let delay = Duration::from_millis(
                rng.gen_range_u64(1, opts.max_latency.as_millis().max(1) as u64),
            );
            events.push((
                Duration::from_millis(at),
                ChaosEvent::LatencyStart(engine, delay),
            ));
            events.push((
                Duration::from_millis(at + window_ms),
                ChaosEvent::LatencyEnd(engine),
            ));
        }

        events.sort_by_key(|(at, _)| *at);

        // Post-mortem disk faults: drawn from the recoverable kinds only —
        // a seeded soak must be able to restart; the must-refuse kind
        // (sealed-segment rot) is exercised by dedicated tests.
        const RECOVERABLE: [DiskFault; 3] = [
            DiskFault::TornWalTail,
            DiskFault::StaleManifest,
            DiskFault::CorruptNewestCheckpoint,
        ];
        let disk_faults = (0..opts.disk_faults)
            .map(|_| RECOVERABLE[rng.gen_range_u64(0, RECOVERABLE.len() as u64 - 1) as usize])
            .collect();

        ChaosPlan {
            seed,
            events,
            disk_faults,
        }
    }

    /// Applies this plan's seeded disk faults to the durability directory
    /// `dir`. Call between [`crate::Cluster::crash`] and
    /// [`crate::Cluster::recover_from_disk`]. Returns the faults that found
    /// a target (the rest were no-ops on this particular on-disk state).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying file surgery.
    pub fn apply_disk_faults(&self, dir: &Path) -> io::Result<Vec<DiskFault>> {
        let mut applied = Vec::new();
        for fault in &self.disk_faults {
            if fault.apply(dir)? {
                applied.push(*fault);
            }
        }
        Ok(applied)
    }
}

/// What the chaos driver actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Crashes injected.
    pub crashes: u64,
    /// Partition windows opened.
    pub partitions: u64,
    /// Latency windows opened.
    pub latency_spikes: u64,
    /// Crashes the supervisor failed to recover within the driver's
    /// timeout — nonzero means the soak must fail.
    pub unrecovered: u64,
}

/// Handle on a running chaos driver; [`ChaosHandle::wait`] blocks until
/// the whole plan has executed (and every crash recovered).
pub struct ChaosHandle {
    thread: JoinHandle<ChaosReport>,
}

impl ChaosHandle {
    /// Blocks until the plan is done, returning the report.
    pub fn wait(self) -> ChaosReport {
        self.thread.join().expect("chaos driver panicked")
    }
}

/// Spawns the driver thread (crate-internal; reached via
/// [`crate::Cluster::launch_chaos`]).
pub(crate) fn launch(
    router: Router,
    supervision: Arc<Mutex<SupervisionMetrics>>,
    plan: ChaosPlan,
) -> ChaosHandle {
    let thread = std::thread::Builder::new()
        .name("tart-chaos".into())
        .spawn(move || {
            let start = Instant::now();
            let mut report = ChaosReport::default();
            let mut disturbed: BTreeSet<EngineId> = BTreeSet::new();
            for (offset, event) in plan.events {
                if let Some(wait) = (start + offset).checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                match event {
                    ChaosEvent::Crash(id) => {
                        let before = supervision.lock().failovers;
                        // Die travels the control plane: a crash lands even
                        // on a partitioned engine.
                        router.send(id, Envelope::Die);
                        report.crashes += 1;
                        // Single-failure assumption: hold further events
                        // until the supervisor finished this recovery.
                        let deadline = Instant::now() + RECOVERY_TIMEOUT;
                        while supervision.lock().failovers <= before && Instant::now() < deadline {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        if supervision.lock().failovers <= before {
                            report.unrecovered += 1;
                        }
                    }
                    ChaosEvent::PartitionStart(id) => {
                        router.set_partition(id, true);
                        disturbed.insert(id);
                        report.partitions += 1;
                    }
                    ChaosEvent::PartitionEnd(id) => router.set_partition(id, false),
                    ChaosEvent::LatencyStart(id, delay) => {
                        router.set_latency(id, delay);
                        disturbed.insert(id);
                        report.latency_spikes += 1;
                    }
                    ChaosEvent::LatencyEnd(id) => router.set_latency(id, Duration::ZERO),
                }
            }
            // Leave the cluster clean whatever the plan contained.
            for id in disturbed {
                router.set_partition(id, false);
                router.set_latency(id, Duration::ZERO);
            }
            report
        })
        .expect("spawn chaos driver");
    ChaosHandle { thread }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines(n: u32) -> Vec<EngineId> {
        (0..n).map(EngineId::new).collect()
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let opts = ChaosOptions::default();
        let a = ChaosPlan::generate(7, &engines(3), &opts);
        let b = ChaosPlan::generate(7, &engines(3), &opts);
        assert_eq!(a.events, b.events);
        let c = ChaosPlan::generate(8, &engines(3), &opts);
        assert_ne!(a.events, c.events, "different seed, different schedule");
    }

    #[test]
    fn plans_have_the_requested_shape() {
        let opts = ChaosOptions {
            crashes: 4,
            partitions: 3,
            latency_spikes: 2,
            ..ChaosOptions::default()
        };
        let plan = ChaosPlan::generate(42, &engines(2), &opts);
        let count = |f: fn(&ChaosEvent) -> bool| plan.events.iter().filter(|(_, e)| f(e)).count();
        assert_eq!(count(|e| matches!(e, ChaosEvent::Crash(_))), 4);
        assert_eq!(count(|e| matches!(e, ChaosEvent::PartitionStart(_))), 3);
        assert_eq!(count(|e| matches!(e, ChaosEvent::PartitionEnd(_))), 3);
        assert_eq!(count(|e| matches!(e, ChaosEvent::LatencyStart(..))), 2);
        assert_eq!(count(|e| matches!(e, ChaosEvent::LatencyEnd(_))), 2);
        // Ascending offsets, all inside the span (window ends included).
        let max = opts.duration + opts.disturbance_len;
        let mut prev = Duration::ZERO;
        for (at, _) in &plan.events {
            assert!(*at >= prev && *at <= max);
            prev = *at;
        }
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn empty_engine_set_rejected() {
        let _ = ChaosPlan::generate(1, &[], &ChaosOptions::default());
    }
}
