//! Time sources for stamping external input, plus the engine's only other
//! sanctioned wall-clock access: handler-duration measurement.
//!
//! Everything in the replayable core observes time through this module.
//! tart-lint enforces that (`WALLCLOCK` rule, DESIGN.md §11): the two
//! `Instant::now` reads below carry the only `allow` fences in the
//! deterministic engine tier, so any new wall-clock read elsewhere in the
//! scheduler fails the audit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tart_vtime::VirtualTime;

/// Produces the timestamps given to external messages as they enter the
/// system.
///
/// "Because the message is logged, it is safe to use the actual real time as
/// the virtual time of this message" (§II.E). Production deployments use
/// [`RealClock`]; tests use [`LogicalClock`] so whole-cluster runs are
/// reproducible.
pub trait TimeSource: Send + Sync {
    /// The current time in ticks (nanoseconds).
    fn now(&self) -> VirtualTime;

    /// Ensures subsequent [`TimeSource::now`] calls return strictly more
    /// than `vt`. Cold restart uses this to move a deterministic clock past
    /// the last timestamp recovered from the log, so re-driven external
    /// sends reproduce the timestamps of an uncrashed run. Clocks that
    /// cannot regress (like [`RealClock`]) need not do anything.
    fn advance_to(&self, vt: VirtualTime) {
        let _ = vt;
    }
}

/// Monotonic wall-clock time, measured from the moment the clock was
/// created.
#[derive(Clone, Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Creates a clock whose tick zero is now.
    #[allow(clippy::disallowed_methods)] // sanctioned wall-clock boundary
    pub fn new() -> Self {
        RealClock {
            // tart-lint: allow(WALLCLOCK) -- RealClock *is* the sanctioned boundary: §II.E logs the stamp, so replay reads the log, not the clock
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl TimeSource for RealClock {
    fn now(&self) -> VirtualTime {
        VirtualTime::from_ticks(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A deterministic clock that advances by a fixed step on every query.
///
/// Two cluster runs that make the same sequence of `now()` calls observe the
/// same timestamps, making end-to-end runs replayable in tests.
#[derive(Clone, Debug)]
pub struct LogicalClock {
    counter: Arc<AtomicU64>,
    step: u64,
}

impl LogicalClock {
    /// Creates a clock advancing `step` ticks per query.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero (timestamps must be strictly increasing).
    pub fn new(step: u64) -> Self {
        assert!(step > 0, "logical clock step must be positive");
        LogicalClock {
            counter: Arc::new(AtomicU64::new(0)),
            step,
        }
    }
}

impl TimeSource for LogicalClock {
    fn now(&self) -> VirtualTime {
        let prev = self.counter.fetch_add(self.step, Ordering::SeqCst);
        VirtualTime::from_ticks(prev + self.step)
    }

    fn advance_to(&self, vt: VirtualTime) {
        self.counter.fetch_max(vt.as_ticks(), Ordering::SeqCst);
    }
}

/// A running measurement of one handler execution, used to feed the
/// estimator calibrator (§III: estimates are fitted to *measured* service
/// times).
///
/// The measurement itself is wall-clock — it has to be; it is measuring the
/// hardware — but the value never flows into virtual time directly: it goes
/// through [`tart_estimator::Calibrator`], and a re-fit is logged as a
/// `DeterminismFault` so replay reproduces the estimator switch instead of
/// the measurement. The same measurement also feeds the estimator-residual
/// histogram in `tart-obs` (estimate vs. measured, per delivery) — again a
/// one-way flow out of the core. Keeping the read here (rather than in the
/// scheduler) gives the audit a single choke point.
#[derive(Clone, Copy, Debug)]
pub struct HandlerTimer {
    started: Instant,
}

impl HandlerTimer {
    /// Starts measuring.
    #[allow(clippy::disallowed_methods)] // sanctioned wall-clock boundary
    pub fn start() -> Self {
        HandlerTimer {
            // tart-lint: allow(WALLCLOCK) -- measures real handler duration for calibration; consumed via the logged DeterminismFault path, never by replayed code
            started: Instant::now(),
        }
    }

    /// Nanoseconds since [`HandlerTimer::start`], saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn logical_clock_steps_deterministically() {
        let c = LogicalClock::new(1_000);
        assert_eq!(c.now(), VirtualTime::from_ticks(1_000));
        assert_eq!(c.now(), VirtualTime::from_ticks(2_000));
        // Clones share the counter (one logical timeline per cluster).
        let c2 = c.clone();
        assert_eq!(c2.now(), VirtualTime::from_ticks(3_000));
        assert_eq!(c.now(), VirtualTime::from_ticks(4_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let _ = LogicalClock::new(0);
    }

    #[test]
    fn advance_to_restores_a_logical_timeline() {
        let c = LogicalClock::new(1_000);
        // A cold restart replaying three logged sends lands the clock here.
        c.advance_to(VirtualTime::from_ticks(3_000));
        assert_eq!(
            c.now(),
            VirtualTime::from_ticks(4_000),
            "resumes past the log"
        );
        // advance_to never regresses.
        c.advance_to(VirtualTime::from_ticks(100));
        assert_eq!(c.now(), VirtualTime::from_ticks(5_000));
        // RealClock accepts (and ignores) the hint.
        let r = RealClock::new();
        r.advance_to(VirtualTime::from_ticks(1));
        let _ = r.now();
    }

    #[test]
    fn usable_as_trait_objects() {
        let clocks: Vec<Arc<dyn TimeSource>> =
            vec![Arc::new(RealClock::new()), Arc::new(LogicalClock::new(1))];
        for c in clocks {
            let _ = c.now();
        }
    }
}
