//! A segmented, CRC-framed write-ahead log.
//!
//! The paper requires external messages to be logged "either to external
//! stable storage, or to the backup machine" (§II.E). This module is the
//! stable-storage half done properly: an append-only log split into
//! fixed-threshold **segments**, each record framed as
//! `u32 length (BE) | u32 crc32 (BE) | body`, with a pluggable
//! [`FsyncPolicy`] governing when appends are forced to disk.
//!
//! Recovery ([`Wal::open`]) scans every segment in order. Sealed segments
//! (every segment but the last) were fsynced at rotation and must parse
//! completely — any corruption there is a hard [`WalError::Corrupt`]. The
//! *final* segment may legitimately end in a torn record (the crash the log
//! exists to survive): the scan stops at the first invalid record, truncates
//! the file back to the last valid one, and reports how many bytes were
//! discarded in the [`WalRecovery`] report.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tart_codec::crc32;

/// Per-record frame overhead: u32 length + u32 crc.
pub(crate) const FRAME_HEADER: usize = 8;

/// When appended records are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: nothing acknowledged is ever lost, at the
    /// cost of one disk round-trip per record.
    Always,
    /// Fsync after every `n` appends: bounds loss to at most `n - 1`
    /// acknowledged records.
    Interval(u32),
    /// Group commit: one fsync amortized across a commit window. The log
    /// syncs when `max_records` appends have accumulated, or at the first
    /// append after `max_delay` has elapsed since the window opened —
    /// whichever comes first. Loss is bounded to the open window (at most
    /// `max_records - 1` records, and in a steadily appending system at
    /// most ~`max_delay` of them); rotation and [`Wal::sync`] still force
    /// everything down regardless.
    GroupCommit {
        /// Appends that force a sync (clamped to at least 1).
        max_records: u32,
        /// Age of the oldest unsynced append that forces a sync at the
        /// next append.
        max_delay: Duration,
    },
    /// Never fsync explicitly; the OS flushes when it pleases. Fastest, and
    /// a whole-machine crash may lose everything since the last rotation
    /// (rotation always seals with an fsync).
    Never,
}

/// Errors from the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A sealed (non-final) segment failed verification — stable storage
    /// itself has decayed, which truncation must not paper over.
    Corrupt {
        /// File name of the offending segment.
        segment: String,
        /// Byte offset of the first bad record within it.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o failed: {e}"),
            WalError::Corrupt { segment, offset } => {
                write!(f, "sealed wal segment {segment} corrupt at offset {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Records recovered, oldest first, with frames already verified.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded from the torn/corrupt tail of the final segment
    /// (zero on a clean shutdown).
    pub truncated_bytes: u64,
    /// Number of segment files scanned.
    pub segments: usize,
}

/// One scanned segment: the valid records and where validity ended.
pub(crate) struct SegmentScan {
    pub(crate) records: Vec<Vec<u8>>,
    /// Offset just past the last valid record.
    pub(crate) valid_len: u64,
    /// Total bytes in the file.
    pub(crate) file_len: u64,
}

pub(crate) fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + FRAME_HEADER > bytes.len() {
            break; // torn header
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let end = pos + FRAME_HEADER + len;
        if end > bytes.len() {
            break; // torn body
        }
        let body = &bytes[pos + FRAME_HEADER..end];
        if crc32(body) != crc {
            break; // corrupt record — caller decides whether that is fatal
        }
        records.push(body.to_vec());
        pos = end;
    }
    SegmentScan {
        records,
        valid_len: pos as u64,
        file_len: bytes.len() as u64,
    }
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

/// Appends one `u32 length | u32 crc32 | body` frame to `buf`.
fn frame_into(buf: &mut Vec<u8>, body: &[u8]) {
    buf.reserve(body.len() + FRAME_HEADER);
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(body).to_be_bytes());
    buf.extend_from_slice(body);
}

/// A segmented, CRC-framed append-only log of opaque byte records.
///
/// # Example
///
/// ```
/// use tart_engine::{FsyncPolicy, Wal};
///
/// let dir = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
/// let mut wal = Wal::create(&dir, 1024, FsyncPolicy::Always)?;
/// wal.append(b"hello")?;
/// drop(wal);
/// let (wal, recovery) = Wal::open(&dir, 1024, FsyncPolicy::Always)?;
/// assert_eq!(recovery.records, vec![b"hello".to_vec()]);
/// assert_eq!(recovery.truncated_bytes, 0);
/// drop(wal);
/// std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), tart_engine::WalError>(())
/// ```
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    policy: FsyncPolicy,
    active: File,
    active_index: u64,
    active_len: u64,
    appends_since_sync: u32,
    /// When the current group-commit window opened (first unsynced
    /// append); `None` when everything is synced.
    group_opened: Option<Instant>,
    /// Reusable frame-encoding buffer for [`Wal::append_all`].
    scratch: Vec<u8>,
    /// Telemetry: group-commit window occupancy at each fsync.
    obs: Option<Arc<tart_obs::ObsHub>>,
}

impl Wal {
    /// Creates a fresh WAL in `dir` (which must be empty of segments),
    /// rotating segments once they exceed `segment_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the directory cannot be created or
    /// already contains segment files.
    pub fn create(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if !list_segments(&dir)?.is_empty() {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "wal directory already contains segments; use Wal::open to recover",
            )));
        }
        let active = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(dir.join(segment_name(0)))?;
        Ok(Wal {
            dir,
            segment_bytes: segment_bytes.max(FRAME_HEADER as u64 + 1),
            policy,
            active,
            active_index: 0,
            active_len: 0,
            appends_since_sync: 0,
            group_opened: None,
            scratch: Vec::new(),
            obs: None,
        })
    }

    /// Opens an existing WAL, verifying every record. Sealed segments must
    /// be fully valid; a torn or corrupt tail of the final segment is
    /// truncated away and reported.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Corrupt`] for sealed-segment corruption or
    /// [`WalError::Io`] on read failure.
    pub fn open(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
        policy: FsyncPolicy,
    ) -> Result<(Self, WalRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        if segments.is_empty() {
            let wal = Wal::create(&dir, segment_bytes, policy)?;
            return Ok((wal, WalRecovery::default()));
        }
        let mut recovery = WalRecovery {
            segments: segments.len(),
            ..WalRecovery::default()
        };
        let last = segments.len() - 1;
        let mut last_valid_len = 0u64;
        for (i, (index, path)) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let scan = scan_segment(&bytes);
            if scan.valid_len < scan.file_len {
                if i < last {
                    return Err(WalError::Corrupt {
                        segment: segment_name(*index),
                        offset: scan.valid_len,
                    });
                }
                // Torn or corrupt tail of the active segment: truncate back
                // to the last valid record so appends continue cleanly.
                recovery.truncated_bytes = scan.file_len - scan.valid_len;
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.valid_len)?;
                f.sync_all()?;
            }
            if i == last {
                last_valid_len = scan.valid_len;
            }
            recovery.records.extend(scan.records);
        }
        let (active_index, last_path) = segments[last].clone();
        let active = OpenOptions::new().append(true).open(last_path)?;
        let mut wal = Wal {
            dir,
            segment_bytes: segment_bytes.max(FRAME_HEADER as u64 + 1),
            policy,
            active,
            active_index,
            active_len: last_valid_len,
            appends_since_sync: 0,
            group_opened: None,
            scratch: Vec::new(),
            obs: None,
        };
        // A recovered active segment past the threshold seals immediately.
        if wal.active_len >= wal.segment_bytes {
            wal.rotate()?;
        }
        Ok((wal, recovery))
    }

    /// Appends one record, framing it with length and CRC, honouring the
    /// fsync policy, and rotating the segment past the byte threshold.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the write (or a policy-mandated fsync)
    /// fails.
    pub fn append(&mut self, body: &[u8]) -> Result<(), WalError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        frame_into(&mut scratch, body);
        self.active.write_all(&scratch)?;
        self.active_len += scratch.len() as u64;
        self.scratch = scratch;
        self.commit(1)?;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Appends a whole batch of records with **one** `write_all`, applying
    /// the fsync policy once for the batch and checking the rotation
    /// threshold once at the end (never mid-batch): a batch that straddles
    /// the threshold seals exactly one segment. Returns the number of
    /// records appended.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the write (or a policy-mandated fsync)
    /// fails.
    pub fn append_all<'a, I>(&mut self, bodies: I) -> Result<u32, WalError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut count: u32 = 0;
        for body in bodies {
            frame_into(&mut scratch, body);
            count += 1;
        }
        if count == 0 {
            self.scratch = scratch;
            return Ok(0);
        }
        self.active.write_all(&scratch)?;
        self.active_len += scratch.len() as u64;
        self.scratch = scratch;
        self.commit(count)?;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(count)
    }

    /// Applies the fsync policy after `n` records landed in the active
    /// segment.
    // Ops-plane clock read: legal in place (tart-lint fences the boundary
    // via TAINT-FLOW); the scoped clippy allow covers the disallowed-method
    // lint for `Instant::now`.
    #[allow(clippy::disallowed_methods)]
    fn commit(&mut self, n: u32) -> Result<(), WalError> {
        self.appends_since_sync = self.appends_since_sync.saturating_add(n);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::GroupCommit {
                max_records,
                max_delay,
            } => {
                if self.appends_since_sync >= max_records.max(1) {
                    self.sync()?;
                } else {
                    let now = Instant::now();
                    match self.group_opened {
                        Some(opened) if now.duration_since(opened) >= max_delay => self.sync()?,
                        Some(_) => {}
                        None => self.group_opened = Some(now),
                    }
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage and closes any
    /// open group-commit window.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let (Some(obs), n) = (&self.obs, self.appends_since_sync) {
            if n > 0 {
                obs.wal_group_commit(u64::from(n));
            }
        }
        self.active.sync_all()?;
        self.appends_since_sync = 0;
        self.group_opened = None;
        Ok(())
    }

    /// Attaches the observability hub: every subsequent fsync records how
    /// many appends the closed window accumulated.
    pub fn set_obs(&mut self, hub: Arc<tart_obs::ObsHub>) {
        self.obs = Some(hub);
    }

    /// Seals the active segment (always fsynced — sealed segments are the
    /// durability floor whatever the policy) and starts the next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.active.sync_all()?;
        self.active_index += 1;
        self.active = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(self.dir.join(segment_name(self.active_index)))?;
        self.active_len = 0;
        self.appends_since_sync = 0;
        self.group_opened = None;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> u64 {
        self.active_index + 1
    }
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("segments", &(self.active_index + 1))
            .field("active_len", &self.active_len)
            .field("policy", &self.policy)
            .finish()
    }
}

/// All segment files in `dir`, ascending by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Fsyncs a directory so renames/creations within it are durable (no-op on
/// platforms where directories cannot be opened).
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tart-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_reopen() {
        let dir = tmp("roundtrip");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(b"three").unwrap();
        }
        let (mut wal, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(
            rec.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.segments, 1);
        // Appends continue after recovery.
        wal.append(b"four").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records.len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_at_threshold() {
        let dir = tmp("rotate");
        let mut wal = Wal::create(&dir, 32, FsyncPolicy::Never).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 16]).unwrap();
        }
        assert!(wal.segment_count() > 1, "threshold forces rotation");
        drop(wal);
        let (_, rec) = Wal::open(&dir, 32, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records.len(), 10);
        assert!(rec.segments > 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp("torn");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
            wal.append(b"keep-me").unwrap();
            wal.append(b"torn-away").unwrap();
        }
        let seg = dir.join(segment_name(0));
        let full = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(full - 4).unwrap();
        drop(f);
        let (mut wal, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records, vec![b"keep-me".to_vec()]);
        assert_eq!(
            rec.truncated_bytes,
            b"torn-away".len() as u64 + FRAME_HEADER as u64 - 4
        );
        // The file was physically truncated: a fresh append lands cleanly.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records, vec![b"keep-me".to_vec(), b"after".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_tail_of_final_segment_is_truncated() {
        let dir = tmp("crc-tail");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
            wal.append(b"solid").unwrap();
            wal.append(b"rotten").unwrap();
        }
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records, vec![b"solid".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_segment_corruption_is_fatal() {
        let dir = tmp("sealed");
        {
            let mut wal = Wal::create(&dir, 24, FsyncPolicy::Always).unwrap();
            for i in 0..6u8 {
                wal.append(&[i; 16]).unwrap();
            }
            assert!(wal.segment_count() > 1);
        }
        // Flip a byte in the FIRST (sealed) segment's first record body.
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        bytes[FRAME_HEADER + 2] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        match Wal::open(&dir, 24, FsyncPolicy::Always) {
            Err(WalError::Corrupt { segment, offset }) => {
                assert_eq!(segment, segment_name(0));
                assert_eq!(offset, 0);
            }
            other => panic!("expected sealed corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interval_policy_counts_appends() {
        let dir = tmp("interval");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Interval(3)).unwrap();
        for _ in 0..7 {
            wal.append(b"x").unwrap();
        }
        // 7 appends, syncs at 3 and 6: one pending.
        assert_eq!(wal.appends_since_sync, 1);
        wal.sync().unwrap();
        assert_eq!(wal.appends_since_sync, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_syncs_at_max_records() {
        let dir = tmp("group-records");
        let policy = FsyncPolicy::GroupCommit {
            max_records: 4,
            max_delay: Duration::from_secs(3600),
        };
        let mut wal = Wal::create(&dir, 4096, policy).unwrap();
        for _ in 0..3 {
            wal.append(b"x").unwrap();
        }
        assert_eq!(wal.appends_since_sync, 3, "window still open");
        assert!(wal.group_opened.is_some());
        wal.append(b"x").unwrap();
        assert_eq!(wal.appends_since_sync, 0, "fourth append forced the sync");
        assert!(wal.group_opened.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_syncs_after_max_delay() {
        let dir = tmp("group-delay");
        let policy = FsyncPolicy::GroupCommit {
            max_records: 1_000_000,
            max_delay: Duration::from_millis(10),
        };
        let mut wal = Wal::create(&dir, 4096, policy).unwrap();
        wal.append(b"opens-the-window").unwrap();
        assert_eq!(wal.appends_since_sync, 1);
        std::thread::sleep(Duration::from_millis(20));
        wal.append(b"lands-past-the-deadline").unwrap();
        assert_eq!(wal.appends_since_sync, 0, "stale window forced the sync");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_all_writes_once_and_recovers() {
        let dir = tmp("append-all");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
        let bodies: Vec<&[u8]> = vec![b"one", b"two", b"three"];
        assert_eq!(wal.append_all(bodies).unwrap(), 3);
        assert_eq!(
            wal.append_all(std::iter::empty()).unwrap(),
            0,
            "empty batch"
        );
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(
            rec.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_straddling_rotation_threshold_seals_exactly_one_segment() {
        let dir = tmp("straddle");
        // Threshold 64 bytes; the batch carries 10 × (16 + 8) = 240 bytes —
        // several thresholds' worth — yet rotation is checked once, after
        // the batch, so exactly one segment seals.
        let mut wal = Wal::create(&dir, 64, FsyncPolicy::Never).unwrap();
        let body = [7u8; 16];
        let bodies: Vec<&[u8]> = (0..10).map(|_| &body[..]).collect();
        assert_eq!(wal.append_all(bodies).unwrap(), 10);
        assert_eq!(
            wal.segment_count(),
            2,
            "one sealed segment + the fresh active one"
        );
        drop(wal);
        let (_, rec) = Wal::open(&dir, 64, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records.len(), 10, "every record of the batch survives");
        assert_eq!(rec.segments, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_populated_directory() {
        let dir = tmp("refuse");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
            wal.append(b"existing").unwrap();
        }
        assert!(matches!(
            Wal::create(&dir, 4096, FsyncPolicy::Never),
            Err(WalError::Io(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display() {
        let e = WalError::Corrupt {
            segment: "wal-00000000.seg".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("offset 12"));
        let e = WalError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
